"""Coverage estimation via successive-response overlap.

The paper validates completeness by checking whether successive recent-bundle
responses share any bundles: "we found that, on average, 95% of successive
pairs of requests to the Jito API indeed had overlap" (Section 3.1). This
module computes exactly that statistic, plus gap bookkeeping for the shaded
regions of Figures 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PollPairObservation:
    """The overlap verdict for one pair of successive successful polls."""

    poll_time: float
    overlapped: bool
    new_bundles: int


@dataclass(frozen=True)
class CollectionGap:
    """A maximal run of consecutive failed polls (a hole in the record)."""

    start: float
    end: float
    failed_polls: int

    @property
    def duration(self) -> float:
        """Seconds between the first and last failure in the run."""
        return self.end - self.start


@dataclass
class CoverageEstimator:
    """Accumulates overlap observations and poll failures."""

    pairs: list[PollPairObservation] = field(default_factory=list)
    failed_polls: int = 0
    successful_polls: int = 0
    failure_times: list[float] = field(default_factory=list)
    _previous_ids: frozenset[str] | None = None

    def observe_success(
        self, poll_time: float, returned_ids: list[str], new_bundles: int
    ) -> bool | None:
        """Record a successful poll; returns overlap verdict (None if first).

        Overlap means at least one bundle id appears in both this response
        and the previous successful one. An *empty* response trivially
        overlaps only when the previous was also empty-at-same-tip — we score
        "no new data" as overlap, since nothing can have been missed.
        """
        self.successful_polls += 1
        current = frozenset(returned_ids)
        verdict: bool | None = None
        if self._previous_ids is not None:
            if not current or not self._previous_ids:
                verdict = True  # nothing landed; nothing missed
            else:
                verdict = bool(current & self._previous_ids)
            self.pairs.append(
                PollPairObservation(
                    poll_time=poll_time,
                    overlapped=verdict,
                    new_bundles=new_bundles,
                )
            )
        self._previous_ids = current
        return verdict

    def observe_failure(self, poll_time: float) -> None:
        """Record a poll that failed after retries (a collection gap)."""
        self.failed_polls += 1
        self.failure_times.append(poll_time)
        # A failed poll breaks the chain: the next success has no usable
        # predecessor window, so do not score the pair that straddles it.
        self._previous_ids = None

    def state(self) -> dict:
        """JSON-safe snapshot of the estimator (for campaign checkpoints)."""
        return {
            "pairs": [
                {
                    "poll_time": pair.poll_time,
                    "overlapped": pair.overlapped,
                    "new_bundles": pair.new_bundles,
                }
                for pair in self.pairs
            ],
            "failed_polls": self.failed_polls,
            "successful_polls": self.successful_polls,
            "failure_times": list(self.failure_times),
            "previous_ids": (
                sorted(self._previous_ids)
                if self._previous_ids is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        self.pairs = [
            PollPairObservation(
                poll_time=pair["poll_time"],
                overlapped=pair["overlapped"],
                new_bundles=pair["new_bundles"],
            )
            for pair in state["pairs"]
        ]
        self.failed_polls = int(state["failed_polls"])
        self.successful_polls = int(state["successful_polls"])
        self.failure_times = list(state["failure_times"])
        previous = state["previous_ids"]
        self._previous_ids = (
            frozenset(previous) if previous is not None else None
        )

    @property
    def pair_count(self) -> int:
        """Number of scored successive pairs."""
        return len(self.pairs)

    def overlap_fraction(self) -> float:
        """Fraction of successive successful pairs that overlapped."""
        if not self.pairs:
            return 1.0
        return sum(1 for p in self.pairs if p.overlapped) / len(self.pairs)

    def missed_pair_times(self) -> list[float]:
        """Poll times where overlap failed (bundles likely missed)."""
        return [p.poll_time for p in self.pairs if not p.overlapped]

    def collection_gaps(self, max_gap_seconds: float) -> list[CollectionGap]:
        """Group poll failures into maximal gap intervals.

        Failures separated by at most ``max_gap_seconds`` (typically the
        poll interval, plus slack) belong to the same gap — one outage that
        spans several poll slots is one hole in the record, not several.
        """
        gaps: list[list] = []
        for failure_time in sorted(self.failure_times):
            if gaps and failure_time - gaps[-1][1] <= max_gap_seconds:
                gaps[-1][1] = failure_time
                gaps[-1][2] += 1
            else:
                gaps.append([failure_time, failure_time, 1])
        return [
            CollectionGap(start=start, end=end, failed_polls=count)
            for start, end, count in gaps
        ]
