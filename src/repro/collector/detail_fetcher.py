"""Transaction-detail fetching for length-three bundles.

The paper limits detail pulls to bundles of length three (2.77% of bundles,
the canonical sandwich shape), requesting at most 10,000 transactions at a
time, spaced at least two minutes apart (Section 3.1). This fetcher applies
the same policy against the simulated endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import DETAIL_BATCH_LIMIT, DETAIL_BATCH_SPACING_SECONDS
from repro.collector.client import ExplorerClient
from repro.collector.store import BundleStore
from repro.errors import (
    ConfigError,
    RateLimitedError,
    ServiceUnavailableError,
    TransportError,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.utils.simtime import SimClock


@dataclass(frozen=True)
class DetailFetcherConfig:
    """Which bundles to detail, and how politely."""

    target_length: int = 3
    batch_limit: int = DETAIL_BATCH_LIMIT
    spacing_seconds: float = DETAIL_BATCH_SPACING_SECONDS

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical settings."""
        if self.target_length < 1 or self.target_length > 5:
            raise ConfigError("target_length must be a valid bundle length")
        if self.batch_limit < 1:
            raise ConfigError("batch_limit must be positive")
        if self.spacing_seconds < 0:
            raise ConfigError("spacing_seconds must be >= 0")


@dataclass
class FetchResult:
    """Outcome of one fetch cycle."""

    requested: int = 0
    stored: int = 0
    failed: bool = False
    error: str | None = None


class TxDetailFetcher:
    """Fetches contents for not-yet-detailed bundles of the target length."""

    def __init__(
        self,
        client: ExplorerClient,
        store: BundleStore,
        clock: SimClock,
        config: DetailFetcherConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or DetailFetcherConfig()
        self.config.validate()
        self._client = client
        self._store = store
        self._clock = clock
        self._next_due = clock.now()
        self.batches_fetched = 0
        self.batches_failed = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._batches_metric = self.metrics.counter(
            "collector_detail_batches_total",
            "Detail-fetch batches, by outcome.",
        )
        self._batch_size_metric = self.metrics.histogram(
            "collector_detail_batch_size",
            "Transaction ids requested per detail batch.",
            buckets=(1, 10, 100, 1_000, 10_000),
        )
        self._stored_metric = self.metrics.counter(
            "collector_details_stored_total",
            "Transaction details newly stored by fetches.",
        )
        # Incremental scan state: bundles already seen but not yet fully
        # detailed, plus the offset into the store's per-length index.
        self._scan_offset = 0
        self._incomplete: list = []

    def due(self) -> bool:
        """Whether the two-minute spacing allows another batch now."""
        return self._clock.now() >= self._next_due

    def state(self) -> dict:
        """JSON-safe snapshot of the fetch cursor (for checkpoints)."""
        return {
            "next_due": self._next_due,
            "batches_fetched": self.batches_fetched,
            "batches_failed": self.batches_failed,
            "scan_offset": self._scan_offset,
            "incomplete_ids": [
                bundle.bundle_id for bundle in self._incomplete
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`.

        The incomplete-bundle worklist is rebuilt from ids against the
        (already restored) store, preserving its order — batch composition
        after a resume must match the uninterrupted run's.
        """
        self._next_due = float(state["next_due"])
        self.batches_fetched = int(state["batches_fetched"])
        self.batches_failed = int(state["batches_failed"])
        self._scan_offset = int(state["scan_offset"])
        self._incomplete = [
            bundle
            for bundle in (
                self._store.get_bundle(bundle_id)
                for bundle_id in state["incomplete_ids"]
            )
            if bundle is not None
        ]

    def _refresh_incomplete(self) -> None:
        new_records = self._store.bundles_of_length_since(
            self.config.target_length, self._scan_offset
        )
        self._scan_offset += len(new_records)
        self._incomplete.extend(new_records)
        self._incomplete = [
            bundle
            for bundle in self._incomplete
            if self._store.missing_details(bundle)
        ]

    def pending_transaction_ids(self) -> list[str]:
        """Transaction ids of target-length bundles still lacking details.

        Scans incrementally: only bundles collected since the last call,
        plus any that previously failed to detail, are re-examined.
        """
        self._refresh_incomplete()
        pending: list[str] = []
        for bundle in self._incomplete:
            pending.extend(self._store.missing_details(bundle))
        return pending

    def fetch_once(self) -> FetchResult:
        """Fetch one batch (up to the 10,000-transaction cap)."""
        self._next_due = self._clock.now() + self.config.spacing_seconds
        pending = self.pending_transaction_ids()
        if not pending:
            self._batches_metric.inc(outcome="empty")
            return FetchResult()
        batch = pending[: self.config.batch_limit]
        self._batch_size_metric.observe(len(batch))
        with self.metrics.span("detail.fetch") as fetch_span:
            try:
                records = self._client.transactions(batch)
            except (
                RateLimitedError,
                ServiceUnavailableError,
                TransportError,
            ) as exc:
                self.batches_failed += 1
                self._batches_metric.inc(outcome="failed")
                fetch_span.fail("failed")
                return FetchResult(
                    requested=len(batch), failed=True, error=str(exc)
                )
            stored = self._store.add_details(records)
        self.batches_fetched += 1
        self._batches_metric.inc(outcome="ok")
        self._stored_metric.inc(stored)
        return FetchResult(requested=len(batch), stored=stored)

    def maybe_fetch(self) -> FetchResult | None:
        """Fetch one batch if spacing allows and work is pending."""
        if not self.due():
            return None
        if not self.pending_transaction_ids():
            return None
        return self.fetch_once()

    def drain(self, max_batches: int = 1_000) -> int:
        """Fetch batches back-to-back until nothing is pending.

        Each batch advances the simulated clock by the configured spacing,
        honoring the paper's pacing. Returns the number of details stored.
        """
        stored = 0
        for _ in range(max_batches):
            if not self.pending_transaction_ids():
                break
            result = self.fetch_once()
            stored += result.stored
            if result.failed:
                break
            if self.config.spacing_seconds:
                self._clock.advance(self.config.spacing_seconds)
        return stored
