"""Transaction-detail fetching for length-three bundles.

The paper limits detail pulls to bundles of length three (2.77% of bundles,
the canonical sandwich shape), requesting at most 10,000 transactions at a
time, spaced at least two minutes apart (Section 3.1). This fetcher applies
the same policy against the simulated endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import DETAIL_BATCH_LIMIT, DETAIL_BATCH_SPACING_SECONDS
from repro.collector.client import ExplorerClient
from repro.collector.store import BundleStore
from repro.errors import (
    ConfigError,
    RateLimitedError,
    ServiceUnavailableError,
    TransportError,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.utils.backoff import ExponentialBackoff
from repro.utils.rng import DeterministicRNG
from repro.utils.simtime import SimClock


@dataclass(frozen=True)
class DetailFetcherConfig:
    """Which bundles to detail, and how politely.

    ``max_retries`` defaults to zero — a failed batch is simply retried at
    the next two-minute slot, which is the paper's polite behavior. Chaos
    campaigns raise it so a batch survives transient 429/503 storms, with
    ``retry_budget_seconds`` capping the cumulative backoff per cycle.
    """

    target_length: int = 3
    batch_limit: int = DETAIL_BATCH_LIMIT
    spacing_seconds: float = DETAIL_BATCH_SPACING_SECONDS
    max_retries: int = 0
    retry_budget_seconds: float | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical settings."""
        if self.target_length < 1 or self.target_length > 5:
            raise ConfigError("target_length must be a valid bundle length")
        if self.batch_limit < 1:
            raise ConfigError("batch_limit must be positive")
        if self.spacing_seconds < 0:
            raise ConfigError("spacing_seconds must be >= 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if (
            self.retry_budget_seconds is not None
            and self.retry_budget_seconds <= 0
        ):
            raise ConfigError("retry_budget_seconds must be positive")


@dataclass
class FetchResult:
    """Outcome of one fetch cycle."""

    requested: int = 0
    stored: int = 0
    failed: bool = False
    error: str | None = None


class TxDetailFetcher:
    """Fetches contents for not-yet-detailed bundles of the target length."""

    def __init__(
        self,
        client: ExplorerClient,
        store: BundleStore,
        clock: SimClock,
        config: DetailFetcherConfig | None = None,
        metrics: MetricsRegistry | None = None,
        rng: DeterministicRNG | None = None,
    ) -> None:
        self.config = config or DetailFetcherConfig()
        self.config.validate()
        self._client = client
        self._store = store
        self._clock = clock
        self._rng = rng or DeterministicRNG(0).child("fetcher")
        self._next_due = clock.now()
        self.batches_fetched = 0
        self.batches_failed = 0
        self.fetch_cycles = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._batches_metric = self.metrics.counter(
            "collector_detail_batches_total",
            "Detail-fetch batches, by outcome.",
        )
        self._retries_metric = self.metrics.counter(
            "collector_detail_retries_total",
            "Request attempts beyond the first within a detail-fetch cycle.",
        )
        self._batch_size_metric = self.metrics.histogram(
            "collector_detail_batch_size",
            "Transaction ids requested per detail batch.",
            buckets=(1, 10, 100, 1_000, 10_000),
        )
        self._stored_metric = self.metrics.counter(
            "collector_details_stored_total",
            "Transaction details newly stored by fetches.",
        )
        # Incremental scan state: bundles already seen but not yet fully
        # detailed, plus the offset into the store's per-length index.
        self._scan_offset = 0
        self._incomplete: list = []

    def due(self) -> bool:
        """Whether the two-minute spacing allows another batch now."""
        return self._clock.now() >= self._next_due

    def state(self) -> dict:
        """JSON-safe snapshot of the fetch cursor (for checkpoints)."""
        return {
            "next_due": self._next_due,
            "batches_fetched": self.batches_fetched,
            "batches_failed": self.batches_failed,
            "fetch_cycles": self.fetch_cycles,
            "scan_offset": self._scan_offset,
            "incomplete_ids": [
                bundle.bundle_id for bundle in self._incomplete
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`.

        The incomplete-bundle worklist is rebuilt from ids against the
        (already restored) store, preserving its order — batch composition
        after a resume must match the uninterrupted run's.
        """
        self._next_due = float(state["next_due"])
        self.batches_fetched = int(state["batches_fetched"])
        self.batches_failed = int(state["batches_failed"])
        self.fetch_cycles = int(state.get("fetch_cycles", 0))
        self._scan_offset = int(state["scan_offset"])
        self._incomplete = [
            bundle
            for bundle in (
                self._store.get_bundle(bundle_id)
                for bundle_id in state["incomplete_ids"]
            )
            if bundle is not None
        ]

    def _refresh_incomplete(self) -> None:
        new_records = self._store.bundles_of_length_since(
            self.config.target_length, self._scan_offset
        )
        self._scan_offset += len(new_records)
        self._incomplete.extend(new_records)
        self._incomplete = [
            bundle
            for bundle in self._incomplete
            if self._store.missing_details(bundle)
        ]

    def pending_transaction_ids(self) -> list[str]:
        """Transaction ids of target-length bundles still lacking details.

        Scans incrementally: only bundles collected since the last call,
        plus any that previously failed to detail, are re-examined.
        """
        self._refresh_incomplete()
        pending: list[str] = []
        for bundle in self._incomplete:
            pending.extend(self._store.missing_details(bundle))
        return pending

    def fetch_once(self) -> FetchResult:
        """Fetch one batch (up to the 10,000-transaction cap).

        Transient errors are retried up to ``max_retries`` times within the
        cycle, honoring any Retry-After hint and the cycle's time budget.
        Jitter is drawn from a per-cycle substream named after the cycle
        number, so checkpointed runs replay the same randomness.
        """
        self.fetch_cycles += 1
        pending = self.pending_transaction_ids()
        if not pending:
            # No request went out, so the polite inter-batch spacing does
            # not apply: stay due now instead of sleeping a full interval
            # while freshly collected bundles queue up.
            self._next_due = self._clock.now()
            self._batches_metric.inc(outcome="empty")
            return FetchResult()
        self._next_due = self._clock.now() + self.config.spacing_seconds
        batch = pending[: self.config.batch_limit]
        self._batch_size_metric.observe(len(batch))
        backoff = ExponentialBackoff(
            base=2.0,
            max_delay=60.0,
            max_attempts=self.config.max_retries + 1,
            rng=self._rng.child(f"retry:{self.fetch_cycles}"),
        )
        last_error: str | None = None
        retry_after_hint: float | None = None
        delay_spent = 0.0
        with self.metrics.span("detail.fetch") as fetch_span:
            while not backoff.exhausted():
                retrying = backoff.attempts_made > 0
                delay = backoff.next_delay()  # budget; sim time doesn't sleep
                if retrying:
                    if retry_after_hint is not None:
                        delay = max(delay, retry_after_hint)
                    budget = self.config.retry_budget_seconds
                    if budget is not None and delay_spent + delay > budget:
                        last_error = (
                            f"retry budget of {budget}s exhausted: "
                            f"{last_error}"
                        )
                        break
                    delay_spent += delay
                    self._retries_metric.inc()
                try:
                    records = self._client.transactions(batch)
                except (
                    RateLimitedError,
                    ServiceUnavailableError,
                    TransportError,
                ) as exc:
                    last_error = str(exc)
                    retry_after_hint = getattr(exc, "retry_after", None)
                    continue
                stored = self._store.add_details(records)
                self.batches_fetched += 1
                self._batches_metric.inc(outcome="ok")
                self._stored_metric.inc(stored)
                return FetchResult(requested=len(batch), stored=stored)
            fetch_span.fail("failed")
        self.batches_failed += 1
        self._batches_metric.inc(outcome="failed")
        return FetchResult(requested=len(batch), failed=True, error=last_error)

    def maybe_fetch(self) -> FetchResult | None:
        """Fetch one batch if spacing allows and work is pending."""
        if not self.due():
            return None
        if not self.pending_transaction_ids():
            return None
        return self.fetch_once()

    def drain(self, max_batches: int = 1_000) -> int:
        """Fetch batches back-to-back until nothing is pending.

        Each batch advances the simulated clock by the configured spacing,
        honoring the paper's pacing. Returns the number of details stored.
        """
        stored = 0
        for _ in range(max_batches):
            if not self.pending_transaction_ids():
                break
            result = self.fetch_once()
            stored += result.stored
            if result.failed:
                break
            if self.config.spacing_seconds:
                self._clock.advance(self.config.spacing_seconds)
        return stored
