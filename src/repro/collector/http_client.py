"""A blocking HTTP/1.1 client for the explorer, built on raw sockets.

Mirrors the scraper side of the paper's methodology: plain HTTP requests to
the reverse-engineered endpoints, with connection timeouts and HTTP status
codes mapped back to the same typed errors the in-process client raises, so
the rest of the pipeline cannot tell the transports apart.

Hardening (the four-month campaign's survival kit):

- **Per-request deadline** — each request has a total time budget, enforced
  across connect and every receive; a stalled server raises
  :class:`~repro.errors.DeadlineExceededError` instead of hanging the poll
  loop.
- **Transport retry budget** — connection-level failures (refused, reset,
  timeout, torn framing) are retried up to ``max_retries`` times with
  jittered exponential backoff. Semantic statuses (400/429/503) are never
  retried here; the poller and detail fetcher own that policy.
- **Backoff resets on success** — the retry budget is per-request: one
  transient error early in a campaign must not permanently shorten the
  budget for every later request, so the shared backoff is ``reset()`` on
  every success path.
- **Retry-After awareness** — a 429's hint (header or ``retryAfter`` body
  field) is attached to the raised :class:`~repro.errors.RateLimitedError`
  for upstream backoff policies to honor.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Callable

from repro.errors import (
    BadRequestError,
    DeadlineExceededError,
    RateLimitedError,
    ServiceUnavailableError,
    TransportError,
)
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.explorer.wire import (
    bundle_record_from_json,
    transaction_record_from_json,
)
from repro.utils.backoff import ExponentialBackoff
from repro.utils.rng import DeterministicRNG

_RECV_CHUNK = 65_536


class HttpExplorerClient:
    """Talks to :class:`~repro.explorer.http_server.ExplorerHttpServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        client_id: str = "collector",
        deadline: float | None = None,
        max_retries: int = 2,
        sleep_fn: Callable[[float], None] = time.sleep,
        monotonic_fn: Callable[[], float] = time.monotonic,
        rng: DeterministicRNG | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._client_id = client_id
        self._deadline = deadline if deadline is not None else timeout * 3
        self._max_retries = max_retries
        self._sleep = sleep_fn
        self._monotonic = monotonic_fn
        # One backoff shared across requests: attempts accumulate through a
        # request's transport retries and MUST be handed back on success —
        # otherwise a transient blip early in a campaign would permanently
        # shorten the budget of every later request.
        self._backoff = ExponentialBackoff(
            base=0.25,
            max_delay=5.0,
            max_attempts=max(1, max_retries + 1),
            rng=rng or DeterministicRNG(0).child("http-client"),
        )
        self.requests_sent = 0
        self.transport_retries = 0

    # --- transport -------------------------------------------------------------

    def _send_once(self, payload: bytes, deadline_at: float) -> bytes:
        """One socket round trip, honoring the request's total deadline."""

        def remaining() -> float:
            budget = deadline_at - self._monotonic()
            if budget <= 0:
                raise DeadlineExceededError(
                    f"request deadline of {self._deadline}s exceeded"
                )
            return min(budget, self._timeout)

        try:
            with socket.create_connection(
                (self._host, self._port), timeout=remaining()
            ) as conn:
                conn.sendall(payload)
                raw = bytearray()
                while True:
                    conn.settimeout(remaining())
                    chunk = conn.recv(_RECV_CHUNK)
                    if not chunk:
                        break
                    raw.extend(chunk)
        except socket.timeout as exc:
            raise DeadlineExceededError(f"request timed out: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"HTTP request failed: {exc}") from exc
        return bytes(raw)

    def _request(self, method: str, path: str, body: bytes = b"") -> dict:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"X-Client-Id: {self._client_id}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        payload = head + body
        self.requests_sent += 1
        last_error: TransportError | None = None
        while True:
            deadline_at = self._monotonic() + self._deadline
            try:
                raw = self._send_once(payload, deadline_at)
                parsed = self._parse_response(raw)
            except (BadRequestError, RateLimitedError, ServiceUnavailableError):
                # Semantic statuses parsed fine: the transport worked, so
                # hand back the retry budget before propagating.
                self._backoff.reset()
                raise
            except TransportError as exc:
                last_error = exc
                if self._backoff.exhausted():
                    self._backoff.reset()  # next request gets a full budget
                    raise TransportError(
                        f"transport retry budget exhausted after "
                        f"{self._max_retries} retries: {last_error}"
                    ) from last_error
                self.transport_retries += 1
                self._sleep(self._backoff.next_delay())
                continue
            self._backoff.reset()
            return parsed

    def _parse_response(self, raw: bytes) -> dict:
        separator = raw.find(b"\r\n\r\n")
        if separator < 0:
            raise TransportError("malformed HTTP response: no header terminator")
        head = raw[:separator].decode("latin-1")
        body = raw[separator + 4 :]
        head_lines = head.split("\r\n")
        status_line = head_lines[0].split(" ", 2)
        if len(status_line) < 2:
            raise TransportError(f"malformed status line: {head[:80]!r}")
        try:
            status = int(status_line[1])
        except ValueError as exc:
            raise TransportError(f"bad status code {status_line[1]!r}") from exc
        headers: dict[str, str] = {}
        for line in head_lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TransportError(f"non-JSON response body: {exc}") from exc

        if status == 200:
            return payload
        message = (
            payload.get("error", "") if isinstance(payload, dict) else str(payload)
        )
        if status == 400:
            raise BadRequestError(message or "bad request")
        if status == 429:
            raise RateLimitedError(
                message or "rate limited",
                retry_after=_retry_after_hint(headers, payload),
            )
        if status == 503:
            raise ServiceUnavailableError(message or "service unavailable")
        raise TransportError(f"unexpected HTTP status {status}: {message}")

    # --- ExplorerClient interface ---------------------------------------------------

    def recent_bundles(self, limit: int | None = None) -> list[BundleRecord]:
        """GET the recent-bundles listing."""
        path = "/api/v1/bundles/recent"
        if limit is not None:
            path += f"?limit={int(limit)}"
        payload = self._request("GET", path)
        bundles = payload.get("bundles")
        if not isinstance(bundles, list):
            raise TransportError("response missing 'bundles' list")
        return [bundle_record_from_json(item) for item in bundles]

    def transactions(self, transaction_ids: list[str]) -> list[TransactionRecord]:
        """POST a bulk transaction-detail query."""
        body = json.dumps({"ids": list(transaction_ids)}).encode("utf-8")
        payload = self._request("POST", "/api/v1/transactions", body)
        records = payload.get("transactions")
        if not isinstance(records, list):
            raise TransportError("response missing 'transactions' list")
        return [transaction_record_from_json(item) for item in records]

    def bundle(self, bundle_id: str) -> BundleRecord | None:
        """GET one bundle's detail page (None on 404)."""
        try:
            payload = self._request("GET", f"/api/v1/bundles/{bundle_id}")
        except TransportError as exc:
            if "404" in str(exc):
                return None
            raise
        record = payload.get("bundle")
        if not isinstance(record, dict):
            raise TransportError("response missing 'bundle' object")
        return bundle_record_from_json(record)

    def health(self) -> bool:
        """Probe the /healthz endpoint."""
        try:
            payload = self._request("GET", "/healthz")
        except TransportError:
            return False
        return payload.get("status") == "ok"


def _retry_after_hint(headers: dict[str, str], payload) -> float | None:
    """Extract a Retry-After hint from a 429's header or JSON body."""
    if isinstance(payload, dict) and payload.get("retryAfter") is not None:
        try:
            return float(payload["retryAfter"])
        except (TypeError, ValueError):
            pass
    header = headers.get("retry-after")
    if header:
        try:
            return float(header)
        except ValueError:
            pass
    return None
