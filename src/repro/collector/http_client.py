"""A blocking HTTP/1.1 client for the explorer, built on raw sockets.

Mirrors the scraper side of the paper's methodology: plain HTTP requests to
the reverse-engineered endpoints, with connection timeouts and HTTP status
codes mapped back to the same typed errors the in-process client raises, so
the rest of the pipeline cannot tell the transports apart.
"""

from __future__ import annotations

import json
import socket

from repro.errors import (
    BadRequestError,
    RateLimitedError,
    ServiceUnavailableError,
    TransportError,
)
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.explorer.wire import (
    bundle_record_from_json,
    transaction_record_from_json,
)

_RECV_CHUNK = 65_536


class HttpExplorerClient:
    """Talks to :class:`~repro.explorer.http_server.ExplorerHttpServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        client_id: str = "collector",
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._client_id = client_id

    # --- transport -------------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes = b"") -> dict:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"X-Client-Id: {self._client_id}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            with socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            ) as conn:
                conn.sendall(head + body)
                raw = bytearray()
                while True:
                    chunk = conn.recv(_RECV_CHUNK)
                    if not chunk:
                        break
                    raw.extend(chunk)
        except OSError as exc:
            raise TransportError(f"HTTP request failed: {exc}") from exc

        return self._parse_response(bytes(raw))

    def _parse_response(self, raw: bytes) -> dict:
        separator = raw.find(b"\r\n\r\n")
        if separator < 0:
            raise TransportError("malformed HTTP response: no header terminator")
        head = raw[:separator].decode("latin-1")
        body = raw[separator + 4 :]
        status_line = head.split("\r\n")[0].split(" ", 2)
        if len(status_line) < 2:
            raise TransportError(f"malformed status line: {head[:80]!r}")
        try:
            status = int(status_line[1])
        except ValueError as exc:
            raise TransportError(f"bad status code {status_line[1]!r}") from exc
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TransportError(f"non-JSON response body: {exc}") from exc

        if status == 200:
            return payload
        message = (
            payload.get("error", "") if isinstance(payload, dict) else str(payload)
        )
        if status == 400:
            raise BadRequestError(message or "bad request")
        if status == 429:
            raise RateLimitedError(message or "rate limited")
        if status == 503:
            raise ServiceUnavailableError(message or "service unavailable")
        raise TransportError(f"unexpected HTTP status {status}: {message}")

    # --- ExplorerClient interface ---------------------------------------------------

    def recent_bundles(self, limit: int | None = None) -> list[BundleRecord]:
        """GET the recent-bundles listing."""
        path = "/api/v1/bundles/recent"
        if limit is not None:
            path += f"?limit={int(limit)}"
        payload = self._request("GET", path)
        bundles = payload.get("bundles")
        if not isinstance(bundles, list):
            raise TransportError("response missing 'bundles' list")
        return [bundle_record_from_json(item) for item in bundles]

    def transactions(self, transaction_ids: list[str]) -> list[TransactionRecord]:
        """POST a bulk transaction-detail query."""
        body = json.dumps({"ids": list(transaction_ids)}).encode("utf-8")
        payload = self._request("POST", "/api/v1/transactions", body)
        records = payload.get("transactions")
        if not isinstance(records, list):
            raise TransportError("response missing 'transactions' list")
        return [transaction_record_from_json(item) for item in records]

    def bundle(self, bundle_id: str) -> BundleRecord | None:
        """GET one bundle's detail page (None on 404)."""
        try:
            payload = self._request("GET", f"/api/v1/bundles/{bundle_id}")
        except TransportError as exc:
            if "404" in str(exc):
                return None
            raise
        record = payload.get("bundle")
        if not isinstance(record, dict):
            raise TransportError("response missing 'bundle' object")
        return bundle_record_from_json(record)

    def health(self) -> bool:
        """Probe the /healthz endpoint."""
        try:
            payload = self._request("GET", "/healthz")
        except TransportError:
            return False
        return payload.get("status") == "ok"
