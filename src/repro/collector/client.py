"""Explorer client interfaces.

The collection pipeline is transport-agnostic: it programs against
:class:`ExplorerClient`, satisfied both by the in-process adapter (fast,
used inside campaigns) and by :class:`~repro.collector.http_client.
HttpExplorerClient` (the full socket path).
"""

from __future__ import annotations

from typing import Protocol

from repro.explorer.models import BundleRecord, TransactionRecord
from repro.explorer.service import ExplorerService


class ExplorerClient(Protocol):
    """What the poller and detail fetcher need from a transport."""

    def recent_bundles(self, limit: int | None = None) -> list[BundleRecord]:
        """Fetch the most recent ``limit`` bundles (newest last)."""

    def transactions(self, transaction_ids: list[str]) -> list[TransactionRecord]:
        """Fetch execution details for explicit transaction ids."""


class InProcessExplorerClient:
    """Direct adapter onto an :class:`ExplorerService` instance."""

    def __init__(self, service: ExplorerService, client_id: str = "collector") -> None:
        self._service = service
        self._client_id = client_id

    def recent_bundles(self, limit: int | None = None) -> list[BundleRecord]:
        """Fetch recent bundles through the service's guards."""
        return self._service.recent_bundles(limit=limit, client_id=self._client_id)

    def transactions(self, transaction_ids: list[str]) -> list[TransactionRecord]:
        """Fetch transaction details through the service's guards."""
        return self._service.transactions(
            transaction_ids, client_id=self._client_id
        )
