"""Campaign orchestration: simulation and collection on one clock.

Runs a scenario while polling the simulated explorer exactly as the paper's
scraper polled the real one — on a fixed cadence, through the endpoint's
rate limits and instability windows — then drains transaction details for
every collected length-three bundle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collector.client import InProcessExplorerClient
from repro.collector.coverage import CoverageEstimator
from repro.collector.detail_fetcher import DetailFetcherConfig, TxDetailFetcher
from repro.collector.poller import BundlePoller, PollerConfig
from repro.collector.store import BundleStore
from repro.explorer.service import ExplorerConfig, ExplorerService
from repro.faults.client import FaultInjectingClient
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.registry import MetricsRegistry
from repro.simulation.config import ScenarioConfig
from repro.simulation.downtime import DowntimeSchedule
from repro.simulation.engine import SimulationEngine
from repro.simulation.results import SimulationWorld
from repro.utils.rng import DeterministicRNG


def _public_feed_filter(ground_truth):
    """Visibility predicate hiding privately-channelled bundles.

    Consulted live at poll time: a bundle is public unless its generation
    record says it was submitted through a private channel.
    """

    def visible(bundle_id: str) -> bool:
        generated = ground_truth.get(bundle_id)
        return (
            generated is None
            or generated.metadata.get("channel") != "private"
        )

    return visible


def recommended_window_limit(scenario: ScenarioConfig) -> int:
    """Scale the paper's widened 50,000-bundle window to simulation volume.

    The paper's window covered roughly 2.4 poll intervals of typical volume
    (50,000 bundles against ~20,500 landing per two minutes). The campaign
    polls once per block, so the equivalent window is 2.4 block-intervals of
    expected bundle flow — enough that ordinary polls overlap, while spike
    bursts overflow it, reproducing the ~95% successive-overlap statistic.
    """
    per_block = scenario.expected_bundles_per_day() / scenario.blocks_per_day
    return max(10, int(per_block * 2.4))


@dataclass
class CampaignResult:
    """Everything a finished campaign hands to analysis."""

    world: SimulationWorld
    service: ExplorerService
    store: BundleStore
    coverage: CoverageEstimator
    poller: BundlePoller
    fetcher: TxDetailFetcher
    metrics: MetricsRegistry
    faults: FaultInjector | None = None

    @property
    def downtime(self) -> DowntimeSchedule:
        """The injected collection-downtime schedule."""
        return self.world.downtime

    def summary(self) -> dict:
        """Compact collection statistics."""
        return {
            "bundles_collected": len(self.store),
            "bundles_landed": self.world.bundles_landed,
            "collection_completeness": (
                len(self.store) / self.world.bundles_landed
                if self.world.bundles_landed
                else 1.0
            ),
            "details_stored": self.store.detail_count(),
            "polls_ok": self.coverage.successful_polls,
            "polls_failed": self.coverage.failed_polls,
            "overlap_fraction": self.coverage.overlap_fraction(),
            "length_histogram": self.store.length_histogram(),
        }


class MeasurementCampaign:
    """Wires a scenario, an explorer, and the collection pipeline together."""

    def __init__(
        self,
        scenario: ScenarioConfig,
        downtime: DowntimeSchedule | None = None,
        poller_config: PollerConfig | None = None,
        fetcher_config: DetailFetcherConfig | None = None,
        explorer_config: ExplorerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        store: BundleStore | None = None,
        fault_plan: FaultPlan | None = None,
        feed_filter=None,
    ) -> None:
        # Observability is on by default: recording is passive and every
        # value derives from the shared sim clock, so instrumented and
        # uninstrumented runs produce identical analysis output. Pass
        # ``repro.obs.NULL_REGISTRY`` to disable entirely.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scenario = scenario
        # Collection can be switched off so checkpoint resume can replay
        # the (deterministic, collection-independent) simulation without
        # re-polling data the archive already holds.
        self.collect_enabled = True
        self.engine = SimulationEngine(scenario, downtime, metrics=self.metrics)
        world = self.engine.world
        self.metrics.set_time_fn(world.clock.now)
        if explorer_config is None:
            # Scale both page sizes to simulation volume, preserving the
            # paper's widened-window-to-default ratio in spirit: the widened
            # window covers ~2.4 poll intervals of flow, the website default
            # an order of magnitude less.
            window = recommended_window_limit(scenario)
            explorer_config = ExplorerConfig(
                default_recent_limit=max(1, window // 10),
                max_recent_limit=window,
            )
        if (
            feed_filter is None
            and scenario.population.sandwich.private_channel_fraction > 0
        ):
            # Attackers route a fraction of bundles through a private
            # channel: the ground truth records the channel per bundle as
            # it lands, and the explorer consults it live, so the poller
            # only ever sees the public sample while the simulation — like
            # the chain itself — holds the full truth.
            feed_filter = _public_feed_filter(world.ground_truth)
        self.service = ExplorerService(
            world.block_engine,
            world.ledger,
            world.clock,
            feed_filter=feed_filter,
            config=explorer_config,
            downtime=world.downtime,
            metrics=self.metrics,
        )
        client = InProcessExplorerClient(self.service)
        # Fault injection sits between the pipeline and the transport, in
        # the exact seam the real network occupied. Its RNG is a named
        # child of the scenario seed, so chaos campaigns replay from the
        # seed alone and the simulation's own streams are unperturbed.
        self.faults: FaultInjector | None = None
        if fault_plan is not None:
            self.faults = FaultInjector(
                fault_plan,
                DeterministicRNG(scenario.seed).child("faults"),
                world.clock,
                metrics=self.metrics,
            )
            client = FaultInjectingClient(client, self.faults)
        # An injected store (e.g. a durable archive-backed one) is used
        # as-is; the default remains the plain in-memory store.
        self.store = (
            store if store is not None else BundleStore(metrics=self.metrics)
        )
        self.coverage = CoverageEstimator()
        if poller_config is None:
            poller_config = PollerConfig(
                window_limit=explorer_config.max_recent_limit
            )
        self.poller = BundlePoller(
            client,
            self.store,
            self.coverage,
            world.clock,
            config=poller_config,
            metrics=self.metrics,
        )
        self.fetcher = TxDetailFetcher(
            client,
            self.store,
            world.clock,
            config=fetcher_config,
            metrics=self.metrics,
        )
        self.engine.on_block(self._after_block)

    def _after_block(self, world: SimulationWorld, _block) -> None:
        if not self.collect_enabled:
            return
        self.poller.maybe_poll()
        self.fetcher.maybe_fetch()

    def finalize(self) -> CampaignResult:
        """Close out a campaign whose day loop has already run.

        Lands still-queued bundles, does the final sweep (one last poll
        for the closing block, then pull any details the in-campaign
        fetches did not reach), and assembles the result.
        """
        world = self.engine.finish()
        self.poller.poll_once()
        self.fetcher.drain()
        return CampaignResult(
            world=world,
            service=self.service,
            store=self.store,
            coverage=self.coverage,
            poller=self.poller,
            fetcher=self.fetcher,
            metrics=self.metrics,
            faults=self.faults,
        )

    def run(self) -> CampaignResult:
        """Run simulation + collection, then drain remaining details."""
        self.engine.run_days(0, self.scenario.days)
        return self.finalize()
