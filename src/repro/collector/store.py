"""The collector's bundle and transaction-detail store.

Deduplicating storage for everything the campaign collects, with JSONL
persistence so a finished collection can be re-analyzed without re-running
the simulation (as the paper re-analyzed its archived pulls).
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterator

from repro.explorer.models import BundleRecord, TransactionRecord
from repro.explorer.wire import (
    bundle_record_from_json,
    bundle_record_to_json,
    transaction_record_from_json,
    transaction_record_to_json,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.utils import serialization
from repro.utils.simtime import unix_to_date


class BundleStore:
    """All collected bundles and transaction details, deduplicated.

    When given a :class:`MetricsRegistry`, the store reports insertions and
    dedup hits (``store_bundles_added_total``, ``store_bundle_dedup_hits_
    total``, and the detail equivalents) — the overlap-driven dedup rate is
    a direct pipeline-health signal.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._bundles: dict[str, BundleRecord] = {}
        self._details: dict[str, TransactionRecord] = {}
        self._tx_to_bundle: dict[str, str] = {}
        self._by_length: dict[int, list[BundleRecord]] = {}
        self._taps: list = []
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._bundles_added = self.metrics.counter(
            "store_bundles_added_total", "New bundle records stored."
        )
        self._bundle_dedup = self.metrics.counter(
            "store_bundle_dedup_hits_total",
            "Bundle records skipped as already stored.",
        )
        self._details_added = self.metrics.counter(
            "store_details_added_total", "New transaction details stored."
        )
        self._detail_dedup = self.metrics.counter(
            "store_detail_dedup_hits_total",
            "Transaction details skipped as already stored.",
        )

    # --- publish taps -----------------------------------------------------------

    def attach_tap(self, tap) -> None:
        """Register an observer notified of genuinely-new records.

        A tap is any object with ``bundles_added(records)`` and
        ``details_added(records)`` methods; each is called synchronously
        from :meth:`add_bundles` / :meth:`add_details` with only the
        records that survived deduplication, in insertion order. This is
        the collector's publish hook: the streaming pipeline taps the
        store the poller and detail fetcher already write through, so
        collection code needs no changes to feed an online consumer.
        """
        self._taps.append(tap)

    def detach_tap(self, tap) -> None:
        """Unregister a previously attached tap (no-op when absent)."""
        if tap in self._taps:
            self._taps.remove(tap)

    # --- bundles ----------------------------------------------------------------

    def add_bundles(self, records: list[BundleRecord]) -> int:
        """Insert records, ignoring already-seen bundle ids; returns #new."""
        added = 0
        fresh: list[BundleRecord] = []
        for record in records:
            if record.bundle_id in self._bundles:
                continue
            self._bundles[record.bundle_id] = record
            for tx_id in record.transaction_ids:
                self._tx_to_bundle[tx_id] = record.bundle_id
            self._by_length.setdefault(record.num_transactions, []).append(
                record
            )
            fresh.append(record)
            added += 1
        if added:
            self._bundles_added.inc(added)
        duplicates = len(records) - added
        if duplicates:
            self._bundle_dedup.inc(duplicates)
        if fresh:
            for tap in self._taps:
                tap.bundles_added(fresh)
        return added

    def __len__(self) -> int:
        return len(self._bundles)

    def bundles(self) -> Iterator[BundleRecord]:
        """Iterate all collected bundles (landing order not guaranteed)."""
        return iter(self._bundles.values())

    def get_bundle(self, bundle_id: str) -> BundleRecord | None:
        """Look up one bundle by id."""
        return self._bundles.get(bundle_id)

    def bundle_of_transaction(self, tx_id: str) -> BundleRecord | None:
        """The bundle a transaction id was collected in, if any."""
        bundle_id = self._tx_to_bundle.get(tx_id)
        return self._bundles.get(bundle_id) if bundle_id else None

    def bundles_of_length(self, length: int) -> list[BundleRecord]:
        """All collected bundles with exactly ``length`` transactions."""
        return list(self._by_length.get(length, ()))

    def bundles_of_length_since(
        self, length: int, start: int
    ) -> list[BundleRecord]:
        """Records of one length class first seen at or after index ``start``.

        The per-length index is append-only and insertion-ordered, so hot
        callers (the detail fetcher's per-block scan) can consume it
        incrementally instead of rescanning the whole store.
        """
        records = self._by_length.get(length, [])
        return records[start:]

    def length_histogram(self) -> dict[int, int]:
        """Bundle count by length."""
        counts: Counter[int] = Counter(
            record.num_transactions for record in self._bundles.values()
        )
        return dict(sorted(counts.items()))

    def counts_by_day(self) -> dict[str, dict[int, int]]:
        """Per-UTC-date bundle counts, broken down by bundle length.

        This is the raw series behind Figure 1.
        """
        table: dict[str, Counter[int]] = {}
        for record in self._bundles.values():
            date = unix_to_date(record.landed_at)
            table.setdefault(date, Counter())[record.num_transactions] += 1
        return {date: dict(sorted(counts.items())) for date, counts in sorted(table.items())}

    # --- transaction details ------------------------------------------------------

    def add_details(self, records: list[TransactionRecord]) -> int:
        """Insert transaction details; returns the number newly stored."""
        added = 0
        fresh: list[TransactionRecord] = []
        for record in records:
            if record.transaction_id not in self._details:
                self._details[record.transaction_id] = record
                fresh.append(record)
                added += 1
        if added:
            self._details_added.inc(added)
        duplicates = len(records) - added
        if duplicates:
            self._detail_dedup.inc(duplicates)
        if fresh:
            for tap in self._taps:
                tap.details_added(fresh)
        return added

    def detail_count(self) -> int:
        """Number of transaction details stored."""
        return len(self._details)

    def get_detail(self, tx_id: str) -> TransactionRecord | None:
        """Look up the stored detail record for a transaction id."""
        return self._details.get(tx_id)

    def missing_details(self, bundle: BundleRecord) -> list[str]:
        """Member transaction ids of ``bundle`` not yet detailed."""
        return [
            tx_id
            for tx_id in bundle.transaction_ids
            if tx_id not in self._details
        ]

    def fully_detailed_bundles(self, length: int) -> list[BundleRecord]:
        """Bundles of ``length`` whose every member transaction is detailed."""
        return [
            record
            for record in self.bundles_of_length(length)
            if not self.missing_details(record)
        ]

    def details(self) -> Iterator[TransactionRecord]:
        """Iterate all stored transaction details."""
        return iter(self._details.values())

    def copy(self) -> "BundleStore":
        """An independent store with the same bundles and details.

        Records are immutable, so sharing them is safe; the indexes are
        rebuilt. Use this before augmenting a store (e.g. fetching extra
        detail lengths) without disturbing the original.
        """
        duplicate = BundleStore()
        duplicate.add_bundles(list(self._bundles.values()))
        duplicate.add_details(list(self._details.values()))
        return duplicate

    # --- persistence ----------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Write bundles.jsonl and transactions.jsonl under ``directory``."""
        directory = Path(directory)
        serialization.write_jsonl(
            directory / "bundles.jsonl",
            (bundle_record_to_json(r) for r in self._bundles.values()),
        )
        serialization.write_jsonl(
            directory / "transactions.jsonl",
            (transaction_record_to_json(r) for r in self._details.values()),
        )

    @classmethod
    def load(cls, directory: str | Path) -> "BundleStore":
        """Rebuild a store from :meth:`save` output."""
        directory = Path(directory)
        store = cls()
        store.add_bundles(
            serialization.read_jsonl_as(
                directory / "bundles.jsonl", bundle_record_from_json
            )
        )
        store.add_details(
            serialization.read_jsonl_as(
                directory / "transactions.jsonl", transaction_record_from_json
            )
        )
        return store
