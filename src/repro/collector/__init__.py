"""The measurement collector: the paper's Section 3.1 methodology.

- :class:`~repro.collector.poller.BundlePoller` requests the most recent
  bundles on a two-minute cadence and checks successive-response overlap;
- :class:`~repro.collector.coverage.CoverageEstimator` turns those overlap
  observations into the paper's 95%-of-pairs statistic;
- :class:`~repro.collector.store.BundleStore` deduplicates and persists
  everything collected;
- :class:`~repro.collector.detail_fetcher.TxDetailFetcher` pulls transaction
  contents for length-three bundles only, in rate-limited batches;
- :class:`~repro.collector.campaign.MeasurementCampaign` wires all of it to a
  live simulation.
"""

from repro.collector.campaign import CampaignResult, MeasurementCampaign
from repro.collector.client import ExplorerClient, InProcessExplorerClient
from repro.collector.coverage import CoverageEstimator
from repro.collector.detail_fetcher import DetailFetcherConfig, TxDetailFetcher
from repro.collector.http_client import HttpExplorerClient
from repro.collector.persistent import PersistentBundleStore
from repro.collector.poller import BundlePoller, PollerConfig, PollStatus
from repro.collector.store import BundleStore

__all__ = [
    "BundlePoller",
    "BundleStore",
    "CampaignResult",
    "CoverageEstimator",
    "DetailFetcherConfig",
    "ExplorerClient",
    "HttpExplorerClient",
    "InProcessExplorerClient",
    "MeasurementCampaign",
    "PersistentBundleStore",
    "PollStatus",
    "PollerConfig",
    "TxDetailFetcher",
]
