"""The recent-bundles poller.

Requests the widened recent-bundles window on a fixed cadence, retries
transient failures with jittered exponential backoff, deduplicates into the
store, and feeds every successful response to the coverage estimator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constants import EXPLORER_MAX_RECENT_LIMIT, POLL_INTERVAL_SECONDS
from repro.collector.client import ExplorerClient
from repro.collector.coverage import CoverageEstimator
from repro.collector.store import BundleStore
from repro.errors import (
    BadRequestError,
    ConfigError,
    RateLimitedError,
    ServiceUnavailableError,
    TransportError,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.utils.backoff import ExponentialBackoff
from repro.utils.rng import DeterministicRNG
from repro.utils.simtime import SimClock


def _error_kind(exc: Exception) -> str:
    if isinstance(exc, RateLimitedError):
        return "rate_limited"
    if isinstance(exc, ServiceUnavailableError):
        return "unavailable"
    return "transport"


class PollStatus(enum.Enum):
    """Outcome of one poll attempt cycle."""

    OK = "ok"
    NOT_DUE = "not_due"
    FAILED = "failed"


@dataclass(frozen=True)
class PollerConfig:
    """Cadence, window size, and retry policy.

    ``retry_budget_seconds`` caps the cumulative backoff delay a single
    poll cycle may accumulate before giving up, on top of the attempt
    count cap — a storm of Retry-After hints cannot stall a cycle past
    the budget. ``None`` (the default) disables the time cap.
    """

    poll_interval_seconds: float = POLL_INTERVAL_SECONDS
    window_limit: int = EXPLORER_MAX_RECENT_LIMIT
    max_retries: int = 3
    retry_budget_seconds: float | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical settings."""
        if self.poll_interval_seconds <= 0:
            raise ConfigError("poll interval must be positive")
        if self.window_limit <= 0:
            raise ConfigError("window limit must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if (
            self.retry_budget_seconds is not None
            and self.retry_budget_seconds <= 0
        ):
            raise ConfigError("retry_budget_seconds must be positive")


@dataclass
class PollResult:
    """What one :meth:`BundlePoller.poll_once` call did."""

    status: PollStatus
    returned: int = 0
    new_bundles: int = 0
    overlapped: bool | None = None
    error: str | None = None


class BundlePoller:
    """Drives the recent-bundles endpoint on the simulated clock."""

    def __init__(
        self,
        client: ExplorerClient,
        store: BundleStore,
        coverage: CoverageEstimator,
        clock: SimClock,
        config: PollerConfig | None = None,
        rng: DeterministicRNG | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or PollerConfig()
        self.config.validate()
        self._client = client
        self._store = store
        self._coverage = coverage
        self._clock = clock
        self._rng = rng or DeterministicRNG(0).child("poller")
        self._next_due = clock.now()
        self.polls_attempted = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._polls_metric = self.metrics.counter(
            "collector_polls_total", "Poll cycles, by final status."
        )
        self._retries_metric = self.metrics.counter(
            "collector_poll_retries_total",
            "Request attempts beyond the first within a poll cycle.",
        )
        self._errors_metric = self.metrics.counter(
            "collector_poll_errors_total",
            "Transient request errors during polling, by kind.",
        )
        self._backoff_metric = self.metrics.histogram(
            "collector_backoff_delay_seconds",
            "Jittered retry delays handed out by the backoff policy.",
        )
        self._returned_metric = self.metrics.counter(
            "collector_bundles_returned_total",
            "Bundle records returned by the recent-bundles endpoint.",
        )
        self._new_metric = self.metrics.counter(
            "collector_bundles_new_total",
            "Returned bundles not previously collected.",
        )
        self._overlap_metric = self.metrics.gauge(
            "collector_overlap_ratio",
            "Running successive-poll overlap fraction (coverage proxy).",
        )

    @property
    def store(self) -> BundleStore:
        """The store polls dedupe into."""
        return self._store

    @property
    def coverage(self) -> CoverageEstimator:
        """The overlap/coverage accumulator."""
        return self._coverage

    def due(self) -> bool:
        """Whether the next poll's scheduled time has arrived."""
        return self._clock.now() >= self._next_due

    def state(self) -> dict:
        """The poll cursor: everything a checkpoint needs to resume polling.

        ``polls_attempted`` doubles as the RNG cursor — retry jitter is
        drawn from a per-poll substream named after the attempt number, so
        restoring the count restores the randomness schedule exactly.
        """
        return {
            "next_due": self._next_due,
            "polls_attempted": self.polls_attempted,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a poll cursor produced by :meth:`state`."""
        self._next_due = float(state["next_due"])
        self.polls_attempted = int(state["polls_attempted"])

    def poll_once(self) -> PollResult:
        """Poll now (retrying transient errors), regardless of schedule."""
        self.polls_attempted += 1
        now = self._clock.now()
        self._next_due = now + self.config.poll_interval_seconds
        backoff = ExponentialBackoff(
            base=2.0,
            max_delay=30.0,
            max_attempts=self.config.max_retries + 1,
            rng=self._rng.child(f"retry:{self.polls_attempted}"),
        )
        last_error: str | None = None
        retry_after_hint: float | None = None
        delay_spent = 0.0
        with self.metrics.span("poll.fetch") as poll_span:
            while not backoff.exhausted():
                retrying = backoff.attempts_made > 0
                delay = backoff.next_delay()  # budget; sim time does not sleep
                if retrying:
                    # Honor the server's Retry-After hint: back off at least
                    # that long rather than hammering a limiter that already
                    # said when capacity returns.
                    if retry_after_hint is not None:
                        delay = max(delay, retry_after_hint)
                    budget = self.config.retry_budget_seconds
                    if budget is not None and delay_spent + delay > budget:
                        last_error = (
                            f"retry budget of {budget}s exhausted: "
                            f"{last_error}"
                        )
                        break
                    delay_spent += delay
                    self._retries_metric.inc()
                    # The first draw is the initial attempt's budget, not a
                    # retry delay; only actual retries belong in the series.
                    self._backoff_metric.observe(delay)
                try:
                    records = self._client.recent_bundles(
                        self.config.window_limit
                    )
                except BadRequestError:
                    raise  # a programming error, not a transient condition
                except (
                    RateLimitedError,
                    ServiceUnavailableError,
                    TransportError,
                ) as exc:
                    last_error = str(exc)
                    retry_after_hint = getattr(exc, "retry_after", None)
                    self._errors_metric.inc(kind=_error_kind(exc))
                    continue
                new_bundles = self._store.add_bundles(records)
                overlapped = self._coverage.observe_success(
                    poll_time=now,
                    returned_ids=[record.bundle_id for record in records],
                    new_bundles=new_bundles,
                )
                self._polls_metric.inc(status="ok")
                self._returned_metric.inc(len(records))
                self._new_metric.inc(new_bundles)
                self._overlap_metric.set(self._coverage.overlap_fraction())
                return PollResult(
                    status=PollStatus.OK,
                    returned=len(records),
                    new_bundles=new_bundles,
                    overlapped=overlapped,
                )
            poll_span.fail("exhausted")
        self._coverage.observe_failure(now)
        self._polls_metric.inc(status="failed")
        self._overlap_metric.set(self._coverage.overlap_fraction())
        return PollResult(status=PollStatus.FAILED, error=last_error)

    def maybe_poll(self) -> PollResult:
        """Poll only if the cadence says a poll is due."""
        if not self.due():
            return PollResult(status=PollStatus.NOT_DUE)
        return self.poll_once()
