"""A Solana RPC facade over the simulated ledger, with provider limits.

The paper's methodology exists because the obvious alternative is
infeasible: "existing RPC providers (Helius, QuickNode, Bitquery,
ChainStack, etc.) place restrictions on API calls and 'compute units' far
below what is necessary for pulling this type of bulk transaction data"
(Section 3.1). This facade exposes the ledger the way providers do —
per-block and per-transaction queries, metered in compute units and
rate-limited — so the cost of ledger-scanning approaches can be measured
against the Jito Explorer methodology instead of asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BadRequestError, RateLimitedError
from repro.explorer.models import TransactionRecord
from repro.explorer.service import record_from_receipt
from repro.solana.ledger import Ledger
from repro.utils.ratelimit import TokenBucket
from repro.utils.simtime import SimClock


@dataclass(frozen=True)
class RpcConfig:
    """Provider-style limits, modelled on public tier sheets.

    Compute-unit costs follow the shape providers use: block fetches cost
    much more than single-transaction lookups, and monthly plans cap total
    units.
    """

    requests_per_second: float = 10.0
    burst_capacity: float = 50.0
    block_cost_units: int = 100
    transaction_cost_units: int = 10
    slot_cost_units: int = 1


@dataclass
class RpcUsage:
    """Metering the facade accumulates per client."""

    requests: int = 0
    compute_units: int = 0


class SolanaRpc:
    """getBlock / getTransaction / getSlot against the simulated ledger."""

    def __init__(
        self,
        ledger: Ledger,
        clock: SimClock,
        config: RpcConfig | None = None,
    ) -> None:
        self._ledger = ledger
        self._clock = clock
        self._config = config or RpcConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self._usage: dict[str, RpcUsage] = {}

    @property
    def config(self) -> RpcConfig:
        """The provider limits in force."""
        return self._config

    def usage(self, client_id: str = "anon") -> RpcUsage:
        """Requests and compute units consumed by one client."""
        return self._usage.setdefault(client_id, RpcUsage())

    def _admit(self, client_id: str, cost_units: int) -> None:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(
                rate=self._config.requests_per_second,
                capacity=self._config.burst_capacity,
                time_fn=self._clock.now,
            )
            self._buckets[client_id] = bucket
        if not bucket.try_acquire():
            raise RateLimitedError(f"RPC rate limit hit for {client_id!r}")
        usage = self.usage(client_id)
        usage.requests += 1
        usage.compute_units += cost_units

    # --- RPC methods ------------------------------------------------------

    def get_slot(self, client_id: str = "anon") -> int:
        """The latest finalized slot."""
        self._admit(client_id, self._config.slot_cost_units)
        return self._ledger.tip_slot

    def get_block(
        self, slot: int, client_id: str = "anon"
    ) -> list[TransactionRecord] | None:
        """All transactions of a block (None for skipped slots)."""
        if slot < 0:
            raise BadRequestError(f"slot must be non-negative, got {slot}")
        self._admit(client_id, self._config.block_cost_units)
        block = self._ledger.block_at_slot(slot)
        if block is None:
            return None
        return [
            record_from_receipt(executed.receipt, block.unix_timestamp)
            for executed in block.transactions
        ]

    def get_transaction(
        self, tx_id: str, client_id: str = "anon"
    ) -> TransactionRecord | None:
        """One transaction by id (None if unknown)."""
        if not tx_id:
            raise BadRequestError("transaction id is empty")
        self._admit(client_id, self._config.transaction_cost_units)
        executed = self._ledger.get_transaction(tx_id)
        if executed is None:
            return None
        block = self._ledger.block_at_slot(executed.receipt.slot)
        block_time = block.unix_timestamp if block else 0.0
        return record_from_receipt(executed.receipt, block_time)

    def block_slots(self, client_id: str = "anon") -> list[int]:
        """All produced slots (a cheap index call, costed like getSlot)."""
        self._admit(client_id, self._config.slot_cost_units)
        return [block.slot for block in self._ledger.blocks()]
