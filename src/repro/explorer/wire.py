"""JSON encoding/decoding of explorer wire records."""

from __future__ import annotations

from typing import Any

from repro.errors import BadRequestError
from repro.explorer.models import BundleRecord, TransactionRecord


def bundle_record_to_json(record: BundleRecord) -> dict[str, Any]:
    """Encode a bundle record for the wire."""
    return {
        "bundleId": record.bundle_id,
        "slot": record.slot,
        "landedAt": record.landed_at,
        "tipLamports": record.tip_lamports,
        "transactionIds": list(record.transaction_ids),
    }


def bundle_record_from_json(payload: dict[str, Any]) -> BundleRecord:
    """Decode a bundle record; raises BadRequestError on malformed payloads."""
    try:
        return BundleRecord(
            bundle_id=str(payload["bundleId"]),
            slot=int(payload["slot"]),
            landed_at=float(payload["landedAt"]),
            tip_lamports=int(payload["tipLamports"]),
            transaction_ids=tuple(str(t) for t in payload["transactionIds"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequestError(f"malformed bundle record: {exc}") from exc


def transaction_record_to_json(record: TransactionRecord) -> dict[str, Any]:
    """Encode a transaction record for the wire."""
    return {
        "transactionId": record.transaction_id,
        "slot": record.slot,
        "blockTime": record.block_time,
        "signer": record.signer,
        "signers": list(record.signers),
        "feeLamports": record.fee_lamports,
        "tokenDeltas": record.token_deltas,
        "lamportDeltas": record.lamport_deltas,
        "events": list(record.events),
    }


def transaction_record_from_json(payload: dict[str, Any]) -> TransactionRecord:
    """Decode a transaction record; raises BadRequestError when malformed."""
    try:
        return TransactionRecord(
            transaction_id=str(payload["transactionId"]),
            slot=int(payload["slot"]),
            block_time=float(payload["blockTime"]),
            signer=str(payload["signer"]),
            signers=tuple(str(s) for s in payload["signers"]),
            fee_lamports=int(payload["feeLamports"]),
            token_deltas={
                str(owner): {str(mint): int(delta) for mint, delta in mints.items()}
                for owner, mints in payload["tokenDeltas"].items()
            },
            lamport_deltas={
                str(owner): int(delta)
                for owner, delta in payload["lamportDeltas"].items()
            },
            events=tuple(dict(event) for event in payload["events"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise BadRequestError(f"malformed transaction record: {exc}") from exc
