"""The simulated Jito Explorer: the undocumented API the paper scraped.

:class:`~repro.explorer.service.ExplorerService` reproduces the two endpoints
the paper reverse engineered: a recent-bundles listing (default page size 200,
widenable to 50,000) and a bulk transaction-detail endpoint. The service
enforces per-client rate limits and injected instability windows.
:mod:`repro.explorer.http_server` exposes the same service over real HTTP for
end-to-end collector tests.
"""

from repro.explorer.models import BundleRecord, TransactionRecord
from repro.explorer.service import ExplorerConfig, ExplorerService
from repro.explorer.wire import (
    bundle_record_from_json,
    bundle_record_to_json,
    transaction_record_from_json,
    transaction_record_to_json,
)

__all__ = [
    "BundleRecord",
    "ExplorerConfig",
    "ExplorerService",
    "TransactionRecord",
    "bundle_record_from_json",
    "bundle_record_to_json",
    "transaction_record_from_json",
    "transaction_record_to_json",
]
