"""Explorer service logic: the two endpoints the paper reverse engineered.

The recent-bundles endpoint returns the most recent ``limit`` landed bundles
(website default 200; the paper widened the call to 50,000). The transaction
endpoint returns execution details for explicit transaction ids, capped at
10,000 per request. Both enforce a per-client token-bucket rate limit, and
both go dark (503) inside injected instability windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.constants import (
    DETAIL_BATCH_LIMIT,
    EXPLORER_DEFAULT_RECENT_LIMIT,
    EXPLORER_MAX_RECENT_LIMIT,
)
from repro.errors import (
    BadRequestError,
    RateLimitedError,
    ServiceUnavailableError,
)
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.jito.block_engine import BlockEngine
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.simulation.downtime import DowntimeSchedule
from repro.solana.ledger import Ledger
from repro.utils.ratelimit import TokenBucket
from repro.utils.simtime import SECONDS_PER_DAY, SimClock


def record_from_receipt(receipt, block_time: float) -> TransactionRecord:
    """Convert a bank receipt into the wire-level transaction record."""
    return TransactionRecord(
        transaction_id=receipt.transaction_id,
        slot=receipt.slot,
        block_time=block_time,
        signer=receipt.fee_payer,
        signers=tuple(receipt.signers),
        fee_lamports=receipt.fee.total,
        token_deltas=receipt.token_deltas,
        lamport_deltas=receipt.lamport_deltas,
        events=tuple(receipt.events),
    )


@dataclass(frozen=True)
class ExplorerConfig:
    """Endpoint limits and rate-limit policy."""

    default_recent_limit: int = EXPLORER_DEFAULT_RECENT_LIMIT
    max_recent_limit: int = EXPLORER_MAX_RECENT_LIMIT
    max_detail_batch: int = DETAIL_BATCH_LIMIT
    # Token bucket per client: sustained rate and burst capacity. The
    # defaults allow roughly one request per 10 seconds with short bursts,
    # comfortably above the paper's deliberately polite 2-minute cadence.
    requests_per_second: float = 0.1
    burst_capacity: float = 6.0


class ExplorerService:
    """Serves bundle listings and transaction details from the engine/ledger."""

    def __init__(
        self,
        block_engine: BlockEngine,
        ledger: Ledger,
        clock: SimClock,
        config: ExplorerConfig | None = None,
        downtime: DowntimeSchedule | None = None,
        metrics: MetricsRegistry | None = None,
        feed_filter: Callable[[str], bool] | None = None,
    ) -> None:
        self._engine = block_engine
        self._ledger = ledger
        self._clock = clock
        self._config = config or ExplorerConfig()
        self._downtime = downtime or DowntimeSchedule([])
        # Visibility predicate over bundle ids: bundles it rejects landed
        # on chain but never surface on the public endpoints — the
        # private-submission-channel seam scenario packs exercise. None
        # means the historical fully-public feed.
        self._feed_filter = feed_filter
        self._buckets: dict[str, TokenBucket] = {}
        self.requests_served = 0
        self.requests_rejected = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._requests_metric = self.metrics.counter(
            "explorer_requests_total",
            "Requests served successfully, by endpoint.",
        )
        self._rejected_metric = self.metrics.counter(
            "explorer_requests_rejected_total",
            "Requests rejected, by endpoint and reason (429/503).",
        )
        self._tokens_rejected_metric = self.metrics.counter(
            "ratelimit_tokens_rejected_total",
            "Token-bucket admission rejections at the explorer.",
        )

    @property
    def config(self) -> ExplorerConfig:
        """The service's endpoint limits."""
        return self._config

    # --- guards ----------------------------------------------------------------

    def _check_available(self, endpoint: str) -> None:
        day_fraction = self._clock.elapsed() / SECONDS_PER_DAY
        if self._downtime.is_down(day_fraction):
            self.requests_rejected += 1
            self._rejected_metric.inc(
                endpoint=endpoint, reason="unavailable"
            )
            raise ServiceUnavailableError(
                "explorer unavailable (instability window)"
            )

    def _check_rate(self, client_id: str, endpoint: str) -> None:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(
                rate=self._config.requests_per_second,
                capacity=self._config.burst_capacity,
                time_fn=self._clock.now,
                on_reject=lambda tokens: self._tokens_rejected_metric.inc(),
            )
            self._buckets[client_id] = bucket
        if not bucket.try_acquire():
            self.requests_rejected += 1
            self._rejected_metric.inc(
                endpoint=endpoint, reason="rate_limited"
            )
            raise RateLimitedError(
                f"client {client_id!r} exceeded rate limit",
                retry_after=bucket.seconds_until_available(),
            )

    # --- checkpoint support ------------------------------------------------------

    def state(self) -> dict:
        """JSON-safe snapshot of per-client rate budgets and tallies."""
        return {
            "buckets": {
                client_id: bucket.state()
                for client_id, bucket in sorted(self._buckets.items())
            },
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`.

        Buckets are materialized eagerly so a resumed client faces the
        exact token budget the killed run had left, not a fresh burst.
        """
        for client_id, bucket_state in state["buckets"].items():
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(
                    rate=self._config.requests_per_second,
                    capacity=self._config.burst_capacity,
                    time_fn=self._clock.now,
                    on_reject=lambda tokens: (
                        self._tokens_rejected_metric.inc()
                    ),
                )
                self._buckets[client_id] = bucket
            bucket.restore_state(bucket_state)
        self.requests_served = int(state["requests_served"])
        self.requests_rejected = int(state["requests_rejected"])

    # --- endpoints ---------------------------------------------------------------

    def recent_bundles(
        self, limit: int | None = None, client_id: str = "anon"
    ) -> list[BundleRecord]:
        """The most recent ``limit`` landed bundles, newest last.

        Raises:
            BadRequestError: for non-positive limits or limits beyond the
                widened 50,000 maximum.
            RateLimitedError / ServiceUnavailableError: per policy.
        """
        self._check_available("recent_bundles")
        self._check_rate(client_id, "recent_bundles")
        if limit is None:
            limit = self._config.default_recent_limit
        if limit <= 0:
            raise BadRequestError(f"limit must be positive, got {limit}")
        if limit > self._config.max_recent_limit:
            raise BadRequestError(
                f"limit {limit} exceeds maximum {self._config.max_recent_limit}"
            )
        log = self._engine.bundle_log
        if self._feed_filter is not None:
            # Filter before windowing: the feed serves ``limit`` *visible*
            # bundles, exactly as a real endpoint unaware of the hidden
            # flow would paginate.
            log = [
                outcome
                for outcome in log
                if self._feed_filter(outcome.bundle_id)
            ]
        window = log[-limit:]
        self.requests_served += 1
        self._requests_metric.inc(endpoint="recent_bundles")
        return [
            BundleRecord(
                bundle_id=outcome.bundle_id,
                slot=outcome.slot,
                landed_at=outcome.landed_at,
                tip_lamports=outcome.tip_lamports,
                transaction_ids=tuple(outcome.transaction_ids),
            )
            for outcome in window
        ]

    def bundle(
        self, bundle_id: str, client_id: str = "anon"
    ) -> BundleRecord | None:
        """Look up one landed bundle by its id (the explorer's detail page).

        Returns None for ids the engine never landed.
        """
        self._check_available("bundle")
        self._check_rate(client_id, "bundle")
        if not bundle_id:
            raise BadRequestError("bundle id is empty")
        if self._feed_filter is not None and not self._feed_filter(bundle_id):
            # A privately-submitted bundle is indistinguishable from one
            # that never landed, from the public explorer's vantage point.
            self.requests_served += 1
            self._requests_metric.inc(endpoint="bundle")
            return None
        outcome = self._engine.get_landed_bundle(bundle_id)
        self.requests_served += 1
        self._requests_metric.inc(endpoint="bundle")
        if outcome is None:
            return None
        return BundleRecord(
            bundle_id=outcome.bundle_id,
            slot=outcome.slot,
            landed_at=outcome.landed_at,
            tip_lamports=outcome.tip_lamports,
            transaction_ids=tuple(outcome.transaction_ids),
        )

    def transactions(
        self, transaction_ids: list[str], client_id: str = "anon"
    ) -> list[TransactionRecord]:
        """Execution details for explicit transaction ids (max 10,000).

        Unknown ids are silently omitted, as a best-effort web endpoint would.
        """
        self._check_available("transactions")
        self._check_rate(client_id, "transactions")
        if not transaction_ids:
            raise BadRequestError("transaction id list is empty")
        if len(transaction_ids) > self._config.max_detail_batch:
            raise BadRequestError(
                f"requested {len(transaction_ids)} transactions, "
                f"maximum is {self._config.max_detail_batch}"
            )
        records: list[TransactionRecord] = []
        for tx_id in transaction_ids:
            executed = self._ledger.get_transaction(tx_id)
            if executed is None:
                continue
            receipt = executed.receipt
            block = self._ledger.block_at_slot(receipt.slot)
            block_time = block.unix_timestamp if block else 0.0
            records.append(record_from_receipt(receipt, block_time))
        self.requests_served += 1
        self._requests_metric.inc(endpoint="transactions")
        return records
