"""Wire-level records served by the explorer.

These deliberately mirror what the paper could actually obtain:

- the bundles endpoint exposes only ``bundleId``, the member
  ``transactionId``s, and the tip — *not* transaction contents;
- the transaction-detail endpoint exposes execution artifacts (balance
  deltas, program events) for specific transaction ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BundleRecord:
    """One landed bundle, as listed by the recent-bundles endpoint."""

    bundle_id: str
    slot: int
    landed_at: float
    tip_lamports: int
    transaction_ids: tuple[str, ...]

    @property
    def num_transactions(self) -> int:
        """Bundle length (1 to 5)."""
        return len(self.transaction_ids)


@dataclass(frozen=True)
class TransactionRecord:
    """One executed transaction, as served by the detail endpoint.

    ``signer`` is the fee payer (the paper's notion of the transaction's
    sender); ``token_deltas`` maps owner -> mint -> signed base-unit change;
    ``events`` carries structured swap/transfer events.
    """

    transaction_id: str
    slot: int
    block_time: float
    signer: str
    signers: tuple[str, ...]
    fee_lamports: int
    token_deltas: dict[str, dict[str, int]] = field(default_factory=dict)
    lamport_deltas: dict[str, int] = field(default_factory=dict)
    events: tuple[dict, ...] = ()
