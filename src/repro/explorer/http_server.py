"""An asyncio HTTP/1.1 front end for the explorer service.

This server simulates the *data source* the paper scraped — the Jito
Explorer feed of landed bundles — not the measurement results (those are
served by ``repro api``, the :mod:`repro.serve` tier). It exposes the
endpoints the paper's collector polled, over a real socket, plus two
operational endpoints:

- ``GET /api/v1/bundles/recent?limit=N`` — recent bundle listing
- ``GET /api/v1/bundles/<bundle_id>`` — a single bundle by id
- ``POST /api/v1/transactions`` with body ``{"ids": [...]}`` — bulk details
- ``GET /healthz`` — liveness probe
- ``GET /metrics`` — the service's metrics registry in Prometheus text
  format (never rate-limited: operators must be able to see a struggling
  server)

``HEAD`` is answered on every GET route with the headers (including
``Content-Length``) the GET would have carried and no body; request
parsing and response framing are shared with the archive-API server via
:mod:`repro.serve.httpcommon`.

Typed service errors map onto HTTP statuses (400 / 429 / 503), which the
collector's HTTP client maps back into the same typed errors — so the
collection pipeline behaves identically over the wire and in-process.

:class:`ThreadedExplorerServer` runs the event loop on a daemon thread so
synchronous tests and examples can exercise the full network path.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    BadRequestError,
    ExplorerError,
    RateLimitedError,
    ServiceUnavailableError,
)
from repro.explorer.service import ExplorerService
from repro.explorer.wire import bundle_record_to_json, transaction_record_to_json
from repro.obs.export import render_prometheus
from repro.serve.httpcommon import (
    PlainText as _PlainText,
    read_request,
    write_response,
)


def _status_for_error(error: ExplorerError) -> int:
    if isinstance(error, BadRequestError):
        return 400
    if isinstance(error, RateLimitedError):
        return 429
    if isinstance(error, ServiceUnavailableError):
        return 503
    return 500


class ExplorerHttpServer:
    """Async HTTP server bound to an :class:`ExplorerService`."""

    def __init__(
        self, service: ExplorerService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when requested as 0)."""
        return self._port

    async def start(self) -> None:
        """Bind and start serving."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sockets = self._server.sockets or []
        if sockets:
            self._port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop serving and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # --- request handling --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        head_only = False
        try:
            request = await read_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            head_only = method == "HEAD"
            peer = writer.get_extra_info("peername") or ("unknown",)
            client_id = headers.get("x-client-id", str(peer[0]))
            status, payload, headers = self._dispatch(
                method, target, body, client_id
            )
        except Exception as exc:  # noqa: BLE001 - server must not crash
            status, payload, headers = 500, {"error": f"internal error: {exc}"}, {}
        try:
            await write_response(
                writer, status, payload, headers, head_only=head_only
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _dispatch(
        self, method: str, target: str, body: bytes, client_id: str
    ) -> tuple[int, "dict | list | _PlainText", dict[str, str]]:
        """Route the request, mapping typed errors to statuses and headers.

        ``HEAD`` routes exactly like ``GET`` — the connection handler strips
        the body at write time, so the headers (Content-Length included)
        match what the GET would have sent.

        A rate-limit rejection carries the service's Retry-After hint both
        as a ``Retry-After`` header and a ``retryAfter`` body field, so
        polite clients on either parsing path can honor it.
        """
        try:
            status, payload = self._route(
                "GET" if method == "HEAD" else method, target, body, client_id
            )
        except ValueError as exc:
            return 400, {"error": str(exc)}, {}
        except ExplorerError as exc:
            payload = {"error": str(exc)}
            headers: dict[str, str] = {}
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                payload["retryAfter"] = retry_after
                headers["Retry-After"] = str(int(max(0.0, retry_after)) + 1)
            return _status_for_error(exc), payload, headers
        return status, payload, {}

    def _route(
        self, method: str, target: str, body: bytes, client_id: str
    ) -> tuple[int, "dict | list | _PlainText"]:
        parts = urlsplit(target)
        path = parts.path
        if path == "/healthz":
            return 200, {"status": "ok"}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            text = render_prometheus(self._service.metrics.snapshot())
            return 200, _PlainText(text)
        if path == "/api/v1/bundles/recent":
            if method != "GET":
                return 405, {"error": "use GET"}
            query = parse_qs(parts.query)
            limit_values = query.get("limit")
            limit = int(limit_values[0]) if limit_values else None
            records = self._service.recent_bundles(
                limit=limit, client_id=client_id
            )
            return 200, {
                "bundles": [bundle_record_to_json(r) for r in records]
            }
        if path.startswith("/api/v1/bundles/") and path != (
            "/api/v1/bundles/recent"
        ):
            if method != "GET":
                return 405, {"error": "use GET"}
            bundle_id = path.rsplit("/", 1)[-1]
            record = self._service.bundle(bundle_id, client_id=client_id)
            if record is None:
                return 404, {"error": f"no bundle {bundle_id[:16]}"}
            return 200, {"bundle": bundle_record_to_json(record)}
        if path == "/api/v1/transactions":
            if method != "POST":
                return 405, {"error": "use POST"}
            try:
                payload = json.loads(body.decode("utf-8") or "{}")
                ids = [str(i) for i in payload["ids"]]
            except (
                json.JSONDecodeError,
                KeyError,
                TypeError,
                UnicodeDecodeError,
            ) as exc:
                raise BadRequestError(f"malformed body: {exc}") from exc
            records = self._service.transactions(ids, client_id=client_id)
            return 200, {
                "transactions": [
                    transaction_record_to_json(r) for r in records
                ]
            }
        return 404, {"error": f"no route {path}"}

class ThreadedExplorerServer:
    """Runs an :class:`ExplorerHttpServer` on a daemon thread.

    Lets synchronous code (tests, examples, the blocking HTTP client) talk to
    the async server without managing an event loop. Use as a context
    manager::

        with ThreadedExplorerServer(service) as server:
            client = HttpExplorerClient("127.0.0.1", server.port)
    """

    def __init__(
        self, service: ExplorerService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._inner = ExplorerHttpServer(service, host, port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        """The bound port once the server has started."""
        return self._inner.port

    def start(self) -> None:
        """Start the event loop thread and wait for the socket to bind."""
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self._inner.start())
            self._started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="explorer-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("explorer HTTP server failed to start")

    def stop(self) -> None:
        """Stop the server and join the thread."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._inner.stop(), self._loop)
        future.result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ThreadedExplorerServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
