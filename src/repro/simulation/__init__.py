"""Scenario configuration and the day-loop simulation engine."""

from repro.simulation.config import ScenarioConfig, TrendSpec
from repro.simulation.downtime import DowntimeSchedule, DowntimeWindow
from repro.simulation.engine import SimulationEngine
from repro.simulation.results import SimulationWorld
from repro.simulation.scenario import paper_scenario, small_scenario

__all__ = [
    "DowntimeSchedule",
    "DowntimeWindow",
    "ScenarioConfig",
    "SimulationEngine",
    "SimulationWorld",
    "TrendSpec",
    "paper_scenario",
    "small_scenario",
]
