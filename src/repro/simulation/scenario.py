"""Canonical scenarios: the paper-calibrated campaign and a fast test one."""

from __future__ import annotations

from repro.constants import CAMPAIGN_DAYS
from repro.simulation.config import ScenarioConfig, TrendSpec


def paper_scenario(seed: int = 2025, days: int = CAMPAIGN_DAYS) -> ScenarioConfig:
    """The full reproduction scenario: 120 days at laptop scale.

    Scale notes (documented in DESIGN.md): the bulk bundle population is
    scaled roughly 1:10,000 versus the paper's 14.8M bundles/day, while the
    sandwich series is scaled roughly 1:100 so loss/tip *distributions* keep
    enough samples. Counts are extrapolated back to paper scale by
    :mod:`repro.analysis.extrapolate` using the recorded factors.
    """
    return ScenarioConfig(
        seed=seed,
        days=days,
        blocks_per_day=48,
        retail_per_day=TrendSpec(60.0),
        defensive_per_day=TrendSpec(850.0, 1_400.0, kind="linear"),
        priority_per_day=TrendSpec(180.0),
        arbitrage_per_day=TrendSpec(350.0),
        app_bundles_per_day=TrendSpec(70.0),
        sandwiches_per_day=TrendSpec(60.0, 4.0, kind="geometric"),
        disguised_per_day=TrendSpec(1.5),
    )


def small_scenario(seed: int = 7, days: int = 5) -> ScenarioConfig:
    """A minutes-scale scenario for tests and examples."""
    return ScenarioConfig(
        seed=seed,
        days=days,
        blocks_per_day=24,
        retail_per_day=TrendSpec(12.0),
        defensive_per_day=TrendSpec(80.0, 140.0, kind="linear"),
        priority_per_day=TrendSpec(18.0),
        arbitrage_per_day=TrendSpec(35.0),
        app_bundles_per_day=TrendSpec(8.0),
        sandwiches_per_day=TrendSpec(25.0, 6.0, kind="geometric"),
        disguised_per_day=TrendSpec(0.6),
    )
