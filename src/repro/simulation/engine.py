"""The day-loop simulation engine.

Builds the world (bank, market, Jito stack, agents), then advances simulated
time block by block, activating behaviours according to each class's daily
trend and letting the block engine land what they submit.
"""

from __future__ import annotations

import time

from repro.agents.base import AgentContext, GroundTruth
from repro.agents.population import Population
from repro.dex.market import Market
from repro.dex.oracle import PriceOracle
from repro.dex.router import Router
from repro.jito.block_engine import BlockEngine
from repro.jito.relayer import PrivateMempool, Relayer
from repro.jito.tip_distribution import TipDistributor
from repro.jito.searcher import SearcherClient
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.simulation.config import ScenarioConfig, TrendSpec
from repro.simulation.downtime import DowntimeSchedule
from repro.simulation.results import DayStats, SimulationWorld
from repro.solana.bank import Bank
from repro.solana.leader_schedule import LeaderSchedule, default_validator_set
from repro.solana.ledger import Ledger
from repro.solana.keys import Keypair
from repro.solana.transaction import Transaction, reset_nonce_counter
from repro.dex.swap import swap_instruction
from repro.utils.rng import DeterministicRNG
from repro.utils.simtime import SECONDS_PER_DAY, SimClock


class SimulationEngine:
    """Runs one campaign scenario end-to-end.

    ``block_callbacks`` registered via :meth:`on_block` fire after every
    produced block — the hook the measurement campaign uses to interleave
    explorer polling with chain activity on the shared simulated clock.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        downtime: DowntimeSchedule | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        config.validate()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._blocks_metric = self.metrics.counter(
            "sim_blocks_produced_total", "Blocks produced by the engine."
        )
        self._generated_metric = self.metrics.counter(
            "sim_bundles_generated_total",
            "Agent behaviours that produced a submission.",
        )
        self._days_metric = self.metrics.counter(
            "sim_days_total", "Simulated days completed, by spike status."
        )
        reset_nonce_counter()  # identical (seed, scenario) => identical tx ids
        self.config = config
        self.rng = DeterministicRNG(config.seed)
        self.clock = SimClock()
        bank = Bank()
        market = Market(bank, config.market, self.rng)
        router = Router(bank, market.program)
        oracle = PriceOracle()
        ledger = Ledger()
        mempool = PrivateMempool()
        relayer = Relayer(mempool)
        schedule = LeaderSchedule(
            default_validator_set(
                count=config.num_validators,
                jito_fraction=config.jito_validator_fraction,
                rng=self.rng,
            ),
            self.rng,
        )
        block_engine = BlockEngine(bank, ledger, relayer, schedule, self.clock)
        searcher = SearcherClient(relayer, self.clock, bank=bank)
        ground_truth = GroundTruth()
        ctx = AgentContext(
            bank=bank,
            market=market,
            router=router,
            searcher=searcher,
            relayer=relayer,
            oracle=oracle,
            clock=self.clock,
            ground_truth=ground_truth,
        )
        population = Population(ctx, self.rng, config.population)
        if downtime is None:
            downtime = DowntimeSchedule.sample(self.rng, config.days)
        self.world = SimulationWorld(
            config=config,
            clock=self.clock,
            bank=bank,
            market=market,
            router=router,
            oracle=oracle,
            ledger=ledger,
            mempool=mempool,
            relayer=relayer,
            schedule=schedule,
            block_engine=block_engine,
            searcher=searcher,
            ground_truth=ground_truth,
            population=population,
            ctx=ctx,
            downtime=downtime,
        )
        self._block_callbacks: list = []
        self._wall_started: float | None = None
        self._market_maker = Keypair("market-maker")
        bank.fund(self._market_maker, 10**12)
        self._tip_distributor = (
            TipDistributor(
                bank,
                schedule.validators,
                commission_bps=config.tip_commission_bps,
            )
            if config.tip_epoch_days > 0
            else None
        )

    @property
    def tip_distributor(self) -> TipDistributor | None:
        """The epochal tip sweeper (None when disabled)."""
        return self._tip_distributor

    def on_block(self, callback) -> None:
        """Register a callable invoked as ``callback(world, block)`` after
        every produced block."""
        self._block_callbacks.append(callback)

    # --- trend table -------------------------------------------------------

    def _class_trends(self) -> dict[str, TrendSpec]:
        config = self.config
        return {
            "retail": config.retail_per_day,
            "defensive": config.defensive_per_day,
            "priority": config.priority_per_day,
            "arbitrage": config.arbitrage_per_day,
            "app_bundle": config.app_bundles_per_day,
            "sandwich": config.sandwiches_per_day,
            "disguised": config.disguised_per_day,
            "opportunist": config.opportunist_scans_per_day,
        }

    _BEHAVIOR_BY_CLASS = {
        "retail": "retail",
        "defensive": "defensive",
        "priority": "priority",
        "arbitrage": "arbitrage",
        "app_bundle": "app_backend",
        "sandwich": "sandwich",
        "disguised": "disguised",
        "opportunist": "opportunist",
    }

    # --- market making -----------------------------------------------------

    def _rebalance_pools(self) -> None:
        """Revert drifted pools toward their anchor prices.

        Stands in for external arbitrage: real pools track the wider market
        because deviations get arbitraged away. The corrective swaps run
        directly on the bank (off-book flow), so they add no bundles or
        ledger noise to what the collector measures.
        """
        world = self.world
        maker = self._market_maker
        for pool in world.market.all_pools():
            order = world.market.rebalance_order(pool)
            if order is None:
                continue
            mint_in, amount = order
            world.bank.fund_tokens(maker.pubkey, mint_in, amount)
            tx = Transaction.build(
                maker,
                [swap_instruction(maker.pubkey, pool, mint_in, amount, 0)],
            )
            world.bank.execute_transaction(tx)

    # --- the run loop --------------------------------------------------------

    def iter_day_blocks(self, day: int):
        """Generator form of :meth:`run_day`: yield after every block.

        Each yielded value is the freshly produced block, *after* the block
        callbacks and pool rebalancing have run — the point where one
        block's collection side effects are complete and the next has not
        started. Cooperative consumers (the streaming campaign's asyncio
        producer) use this seam to hand control to the event loop between
        blocks; exhausting the generator performs the same end-of-day
        bookkeeping as :meth:`run_day`, which is a plain consuming wrapper
        around it.
        """
        if self._wall_started is None:
            self._wall_started = time.perf_counter()
        config = self.config
        world = self.world
        day_rng = self.rng.child(f"day:{day}")
        is_spike = day_rng.bernoulli(config.spike_probability)
        if is_spike:
            world.spike_days.add(day)

        events: list[str] = []
        counts: dict[str, int] = {}
        for event_class, trend in self._class_trends().items():
            count = trend.sample_count(day, config.days, day_rng.child(event_class))
            if is_spike and event_class != "retail":
                count = int(count * config.spike_multiplier)
            counts[event_class] = count
            events.extend([event_class] * count)
        day_rng.shuffle(events)

        stats = DayStats(
            day=day,
            date=self.clock.date_of_day(day),
            events_by_class=counts,
            is_spike=is_spike,
        )

        behaviors = world.population.behaviors()
        blocks = config.blocks_per_day
        day_start = self.clock.epoch + day * SECONDS_PER_DAY
        per_block = (len(events) + blocks - 1) // blocks if events else 0
        for block_index in range(blocks):
            moment = day_start + (block_index + 0.5) * SECONDS_PER_DAY / blocks
            self.clock.advance_to(moment)
            chunk = (
                events[block_index * per_block : (block_index + 1) * per_block]
                if per_block
                else []
            )
            for event_class in chunk:
                behavior = behaviors[self._BEHAVIOR_BY_CLASS[event_class]]
                generated = behavior.generate()
                if generated is not None:
                    stats.bundles_generated += 1
                    self._generated_metric.inc(event_class=event_class)
            block = world.block_engine.produce_block()
            self._blocks_metric.inc()
            for callback in self._block_callbacks:
                callback(world, block)
            self._rebalance_pools()
            yield block

        if (
            self._tip_distributor is not None
            and (day + 1) % config.tip_epoch_days == 0
        ):
            self._tip_distributor.distribute_epoch()

        world.day_stats.append(stats)
        self._days_metric.inc(spike="yes" if is_spike else "no")

    def run_day(self, day: int) -> DayStats:
        """Simulate one day: schedule events, produce blocks."""
        for _block in self.iter_day_blocks(day):
            pass
        return self.world.day_stats[-1]

    def run_days(self, start_day: int, stop_day: int) -> None:
        """Simulate days ``start_day`` (inclusive) to ``stop_day`` (exclusive).

        The checkpointed campaign drives the engine through this method so
        it can persist collector state between days; plain runs use
        :meth:`run`.
        """
        for day in range(start_day, stop_day):
            self.run_day(day)

    def finish(self) -> SimulationWorld:
        """Land queued bundles, record throughput, return the world.

        Wall-clock throughput lands in the ``sim_wall_seconds`` and
        ``sim_blocks_per_wall_second`` gauges. Those are the one deliberate
        exception to the sim-time rule — they exist to measure the
        *machine*, are nondeterministic by nature, and are excluded from
        report rendering (see :data:`repro.obs.export.WALL_CLOCK_METRICS`).
        """
        # Land anything still queued (bundles deferred past the last block).
        self.clock.advance(1.0)
        block = self.world.block_engine.produce_block()
        self._blocks_metric.inc()
        for callback in self._block_callbacks:
            callback(self.world, block)
        wall_elapsed = (
            time.perf_counter() - self._wall_started
            if self._wall_started is not None
            else 0.0
        )
        blocks = self.world.block_engine.stats.blocks_produced
        self.metrics.gauge(
            "sim_wall_seconds", "Wall-clock duration of the engine run."
        ).set(wall_elapsed)
        self.metrics.gauge(
            "sim_blocks_per_wall_second",
            "Engine throughput: blocks produced per wall-clock second.",
        ).set(blocks / wall_elapsed if wall_elapsed > 0 else 0.0)
        return self.world

    def run(self) -> SimulationWorld:
        """Run the whole campaign and return the finished world."""
        self.run_days(0, self.config.days)
        return self.finish()
