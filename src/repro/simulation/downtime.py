"""Collection-downtime schedule.

The paper's collection "was down due to instability or changes to the Jito
interface, bugs in our code, or other transient errors", visible as shaded
gaps in Figures 1 and 2. The simulation injects such windows: while a window
is active the explorer returns 503s, so the collector misses whatever lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class DowntimeWindow:
    """A half-open interval of days [start_day, end_day) with no collection."""

    start_day: float
    end_day: float
    reason: str = "transient error"

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise ConfigError(
                f"downtime window must have positive length: "
                f"[{self.start_day}, {self.end_day})"
            )

    def contains_day_fraction(self, day_fraction: float) -> bool:
        """Whether a fractional day offset falls inside the window."""
        return self.start_day <= day_fraction < self.end_day


class DowntimeSchedule:
    """All injected downtime windows for one campaign."""

    def __init__(self, windows: list[DowntimeWindow] | None = None) -> None:
        self._windows = sorted(windows or [], key=lambda w: w.start_day)

    @property
    def windows(self) -> list[DowntimeWindow]:
        """All windows, sorted by start (a copy)."""
        return list(self._windows)

    def is_down(self, day_fraction: float) -> bool:
        """Whether collection is down at this fractional day offset."""
        return any(w.contains_day_fraction(day_fraction) for w in self._windows)

    def affected_days(self) -> set[int]:
        """Integer day indexes touched by any window (for graph shading)."""
        days: set[int] = set()
        for window in self._windows:
            day = int(window.start_day)
            while day < window.end_day:
                days.add(day)
                day += 1
        return days

    @classmethod
    def sample(
        cls,
        rng: DeterministicRNG,
        total_days: int,
        num_windows: int = 3,
        min_length_days: float = 0.5,
        max_length_days: float = 3.0,
    ) -> "DowntimeSchedule":
        """Draw a plausible schedule: a few multi-day gaps, non-adjacent."""
        if total_days < 4 or num_windows == 0:
            return cls([])
        rng = rng.child("downtime")
        windows: list[DowntimeWindow] = []
        attempts = 0
        reasons = [
            "Jito interface change",
            "collector bug",
            "transient network error",
        ]
        while len(windows) < num_windows and attempts < 50:
            attempts += 1
            start = rng.uniform(1.0, max(total_days - max_length_days - 1, 1.5))
            length = rng.uniform(min_length_days, max_length_days)
            candidate = DowntimeWindow(
                start_day=start,
                end_day=min(start + length, total_days - 0.5),
                reason=reasons[len(windows) % len(reasons)],
            )
            overlaps = any(
                not (
                    candidate.end_day + 1 <= w.start_day
                    or w.end_day + 1 <= candidate.start_day
                )
                for w in windows
            )
            if not overlaps:
                windows.append(candidate)
        return cls(windows)
