"""Scenario configuration: intensities, trends, and scale factors."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.population import PopulationConfig
from repro.constants import CAMPAIGN_DAYS, PAPER_BUNDLES_PER_DAY
from repro.dex.market import MarketConfig
from repro.errors import ConfigError
from repro.utils.distributions import geometric_daily, interpolate_daily
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class TrendSpec:
    """A per-day intensity: endpoints, interpolation kind, and noise.

    ``kind`` is one of ``"flat"``, ``"linear"``, ``"geometric"``; noise is a
    multiplicative lognormal-ish jitter of ±``noise`` (relative).
    """

    start: float
    end: float | None = None
    kind: str = "flat"
    noise: float = 0.10

    def __post_init__(self) -> None:
        if self.kind not in {"flat", "linear", "geometric"}:
            raise ConfigError(f"unknown trend kind {self.kind!r}")
        if self.start < 0:
            raise ConfigError(f"trend start must be >= 0, got {self.start}")
        if not 0.0 <= self.noise < 1.0:
            raise ConfigError(f"trend noise must be in [0, 1), got {self.noise}")

    def mean_on_day(self, day: int, total_days: int) -> float:
        """Noise-free intensity on ``day``."""
        end = self.start if self.end is None else self.end
        if self.kind == "flat":
            return self.start
        if self.kind == "linear":
            return interpolate_daily(self.start, end, day, total_days)
        return geometric_daily(max(self.start, 1e-9), max(end, 1e-9), day, total_days)

    def sample_count(self, day: int, total_days: int, rng: DeterministicRNG) -> int:
        """Integer event count for ``day``, with multiplicative jitter."""
        mean = self.mean_on_day(day, total_days)
        if self.noise > 0:
            mean *= rng.uniform(1.0 - self.noise, 1.0 + self.noise)
        base = int(mean)
        if rng.random() < (mean - base):
            base += 1
        return max(base, 0)


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one simulated campaign.

    Default intensities are calibrated (at laptop scale) to the paper's
    proportions: a length-1-dominated bundle mix with ~86% of length-1
    bundles defensive, length-3 bundles near 2.77% of the total, sandwich
    attacks decaying ~15x over the period while defensive bundling rises.
    """

    seed: int = 2025
    days: int = 14
    blocks_per_day: int = 24
    # Per-day event intensities by class.
    retail_per_day: TrendSpec = field(default_factory=lambda: TrendSpec(120.0))
    defensive_per_day: TrendSpec = field(
        default_factory=lambda: TrendSpec(1_500.0, 2_200.0, kind="linear")
    )
    priority_per_day: TrendSpec = field(default_factory=lambda: TrendSpec(300.0))
    arbitrage_per_day: TrendSpec = field(default_factory=lambda: TrendSpec(620.0))
    app_bundles_per_day: TrendSpec = field(default_factory=lambda: TrendSpec(80.0))
    sandwiches_per_day: TrendSpec = field(
        default_factory=lambda: TrendSpec(150.0, 10.0, kind="geometric")
    )
    disguised_per_day: TrendSpec = field(default_factory=lambda: TrendSpec(2.0))
    # Opportunistic mempool scans per day (the public-mempool era; 0 = the
    # private-era world the paper measured).
    opportunist_scans_per_day: TrendSpec = field(
        default_factory=lambda: TrendSpec(0.0, noise=0.0)
    )
    # Spike days: short demand bursts that overflow the explorer's window
    # (the paper's "spikes in usage" that break successive-poll overlap).
    spike_probability: float = 0.05
    spike_multiplier: float = 3.0
    market: MarketConfig = field(default_factory=MarketConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    num_validators: int = 20
    jito_validator_fraction: float = 0.97
    # Epochal tip distribution (Jito MEV rewards): every N days, sweep the
    # tip accounts to validators and their stakers. 0 disables the sweep.
    tip_epoch_days: int = 0
    tip_commission_bps: int = 800

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.days < 1:
            raise ConfigError(f"need at least one day, got {self.days}")
        if self.blocks_per_day < 1:
            raise ConfigError(
                f"need at least one block per day, got {self.blocks_per_day}"
            )
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ConfigError("spike_probability must be in [0, 1]")
        if self.spike_multiplier < 1.0:
            raise ConfigError("spike_multiplier must be >= 1")
        if self.tip_epoch_days < 0:
            raise ConfigError("tip_epoch_days must be >= 0 (0 disables)")
        if not 0 <= self.tip_commission_bps <= 10_000:
            raise ConfigError("tip_commission_bps must be in [0, 10000]")
        self.market.validate()

    def expected_bundles_per_day(self) -> float:
        """Rough mean daily bundle count (for scale-factor reporting)."""
        total_days = self.days
        classes = [
            self.defensive_per_day,
            self.priority_per_day,
            self.arbitrage_per_day,
            self.app_bundles_per_day,
            self.sandwiches_per_day,
            self.disguised_per_day,
        ]
        per_day = [
            sum(spec.mean_on_day(day, total_days) for spec in classes)
            for day in range(total_days)
        ]
        return sum(per_day) / len(per_day)

    def bundle_scale_factor(self) -> float:
        """How many real bundles one simulated bundle stands for."""
        return PAPER_BUNDLES_PER_DAY / self.expected_bundles_per_day()

    def day_scale_factor(self) -> float:
        """How many campaign days one simulated day stands for."""
        return CAMPAIGN_DAYS / self.days
