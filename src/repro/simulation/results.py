"""The assembled simulation world and its run artifacts."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.base import AgentContext, GroundTruth
from repro.agents.population import Population
from repro.dex.market import Market
from repro.dex.oracle import PriceOracle
from repro.dex.router import Router
from repro.jito.block_engine import BlockEngine
from repro.jito.relayer import PrivateMempool, Relayer
from repro.jito.searcher import SearcherClient
from repro.simulation.config import ScenarioConfig
from repro.simulation.downtime import DowntimeSchedule
from repro.solana.bank import Bank
from repro.solana.leader_schedule import LeaderSchedule
from repro.solana.ledger import Ledger
from repro.utils.simtime import SimClock


@dataclass
class DayStats:
    """Per-day generation statistics recorded by the engine."""

    day: int
    date: str
    events_by_class: dict[str, int] = field(default_factory=dict)
    bundles_generated: int = 0
    is_spike: bool = False


@dataclass
class SimulationWorld:
    """Every live component of one simulated campaign, post-run.

    This is the "ground truth side" of the reproduction: the collector and
    detector never see this object — they see only what the explorer API
    serves — but analyses compare their outputs against it.
    """

    config: ScenarioConfig
    clock: SimClock
    bank: Bank
    market: Market
    router: Router
    oracle: PriceOracle
    ledger: Ledger
    mempool: PrivateMempool
    relayer: Relayer
    schedule: LeaderSchedule
    block_engine: BlockEngine
    searcher: SearcherClient
    ground_truth: GroundTruth
    population: Population
    ctx: AgentContext
    downtime: DowntimeSchedule
    day_stats: list[DayStats] = field(default_factory=list)
    spike_days: set[int] = field(default_factory=set)

    @property
    def bundles_landed(self) -> int:
        """Total bundles that made it into blocks."""
        return self.block_engine.stats.bundles_landed

    @property
    def transactions_landed(self) -> int:
        """Total transactions committed to the ledger."""
        return self.ledger.transaction_count()

    def summary(self) -> dict:
        """A compact run summary for logs and examples."""
        stats = self.block_engine.stats
        return {
            "days": self.config.days,
            "blocks": stats.blocks_produced,
            "bundles_landed": stats.bundles_landed,
            "bundles_dropped": stats.bundles_dropped,
            "native_landed": stats.native_landed,
            "native_dropped": stats.native_dropped,
            "transactions": self.transactions_landed,
            "landed_by_length": dict(sorted(stats.landed_by_length.items())),
            "spike_days": sorted(self.spike_days),
            "downtime_days": sorted(self.downtime.affected_days()),
        }
