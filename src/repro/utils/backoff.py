"""Exponential backoff with deterministic jitter.

The paper's collection script ran for four months against an undocumented
endpoint and had to survive "instability or changes to the Jito interface".
The collector retries transient failures using this policy.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.utils.rng import DeterministicRNG


class ExponentialBackoff:
    """Produces a capped, jittered exponential sequence of retry delays.

    Delay for attempt ``n`` (0-based) is ``base * multiplier**n``, capped at
    ``max_delay``, then multiplied by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``. Jitter is sourced from a deterministic RNG
    so campaigns replay identically.
    """

    def __init__(
        self,
        base: float = 1.0,
        multiplier: float = 2.0,
        max_delay: float = 300.0,
        max_attempts: int = 8,
        jitter: float = 0.1,
        rng: DeterministicRNG | None = None,
    ) -> None:
        if base <= 0:
            raise ConfigError(f"backoff base must be positive, got {base}")
        if multiplier < 1.0:
            raise ConfigError(f"backoff multiplier must be >= 1, got {multiplier}")
        if max_delay < base:
            raise ConfigError("max_delay must be at least the base delay")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {jitter}")
        self._base = base
        self._multiplier = multiplier
        self._max_delay = max_delay
        self._max_attempts = max_attempts
        self._jitter = jitter
        self._rng = rng or DeterministicRNG(0).child("backoff")
        self._attempt = 0

    @property
    def max_attempts(self) -> int:
        """Number of retries allowed before giving up."""
        return self._max_attempts

    @property
    def attempts_made(self) -> int:
        """How many delays have been handed out so far."""
        return self._attempt

    def exhausted(self) -> bool:
        """Whether the retry budget has been spent."""
        return self._attempt >= self._max_attempts

    def next_delay(self) -> float:
        """Return the next retry delay in seconds.

        Raises:
            ConfigError: if called after the retry budget is exhausted —
                callers are expected to check :meth:`exhausted` first.
        """
        if self.exhausted():
            raise ConfigError("backoff budget exhausted")
        raw = min(self._base * self._multiplier**self._attempt, self._max_delay)
        self._attempt += 1
        if self._jitter == 0.0:
            return raw
        factor = self._rng.uniform(1.0 - self._jitter, 1.0 + self._jitter)
        return raw * factor

    def reset(self) -> None:
        """Reset the attempt counter after a success."""
        self._attempt = 0
