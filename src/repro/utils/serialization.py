"""JSON/JSONL persistence helpers.

The collector persists bundle and transaction records as JSON-lines so a
four-month campaign can be checkpointed and re-analyzed offline, mirroring
how the paper's scraper archived its pulls.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, TypeVar

from repro.errors import StoreError

T = TypeVar("T")


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / tuples / sets into JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(item) for item in obj)
    if isinstance(obj, bytes):
        return obj.hex()
    return obj


def dumps(obj: Any) -> str:
    """Serialize any supported object to a compact JSON string."""
    return json.dumps(to_jsonable(obj), separators=(",", ":"), sort_keys=True)


def write_jsonl(path: str | Path, records: Iterable[Any]) -> int:
    """Write records to a JSON-lines file; returns the number written.

    Raises:
        StoreError: if the destination cannot be written.
    """
    target = Path(path)
    count = 0
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(dumps(record))
                handle.write("\n")
                count += 1
    except OSError as exc:
        raise StoreError(f"cannot write JSONL to {target}: {exc}") from exc
    return count


def read_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield parsed records from a JSON-lines file.

    Blank lines are skipped. Raises:
        StoreError: if the file is missing or a line is not valid JSON.
    """
    target = Path(path)
    if not target.exists():
        raise StoreError(f"JSONL file not found: {target}")
    with target.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise StoreError(
                    f"invalid JSON at {target}:{line_number}: {exc}"
                ) from exc


def read_jsonl_as(path: str | Path, factory: Callable[[dict[str, Any]], T]) -> list[T]:
    """Read a JSONL file and map each record through ``factory``."""
    return [factory(record) for record in read_jsonl(path)]
