"""Token-bucket rate limiting.

Used on both sides of the measurement pipeline: the simulated Jito Explorer
enforces per-client request limits (the paper notes RPC providers cap calls
and "compute units"), and the collector throttles itself to the paper's
two-minute cadence to keep "reasonable load on Jito's servers".
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError


class TokenBucket:
    """Classic token-bucket limiter driven by an injectable time source.

    The bucket holds at most ``capacity`` tokens and refills at ``rate``
    tokens per second. Each admitted request consumes tokens; a request that
    cannot be satisfied is rejected without consuming anything.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        time_fn: Callable[[], float],
        on_reject: Callable[[float], None] | None = None,
    ) -> None:
        if rate <= 0:
            raise ConfigError(f"token rate must be positive, got {rate}")
        if capacity <= 0:
            raise ConfigError(f"bucket capacity must be positive, got {capacity}")
        self._rate = rate
        self._capacity = capacity
        self._time_fn = time_fn
        self._on_reject = on_reject
        self._tokens = capacity
        self._last_refill = time_fn()
        self.admitted = 0
        self.rejected = 0

    @property
    def capacity(self) -> float:
        """Maximum number of tokens the bucket can hold."""
        return self._capacity

    def _refill(self) -> None:
        now = self._time_fn()
        elapsed = max(0.0, now - self._last_refill)
        self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
        self._last_refill = now

    def available(self) -> float:
        """Tokens currently available (after refill accounting)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; return whether admission succeeded.

        Admissions and rejections are tallied on :attr:`admitted` and
        :attr:`rejected`; a rejection also fires the ``on_reject`` callback
        (observability hook) with the requested token count.
        """
        if tokens <= 0:
            raise ConfigError(f"must acquire a positive token count, got {tokens}")
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            self.admitted += 1
            return True
        self.rejected += 1
        if self._on_reject is not None:
            self._on_reject(tokens)
        return False

    def state(self) -> dict:
        """JSON-safe snapshot of the bucket's fill level and tallies.

        Campaign checkpoints persist this so a resumed run faces exactly
        the rate-limit budget the killed run had earned.
        """
        return {
            "tokens": self._tokens,
            "last_refill": self._last_refill,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        self._tokens = min(self._capacity, float(state["tokens"]))
        self._last_refill = float(state["last_refill"])
        self.admitted = int(state["admitted"])
        self.rejected = int(state["rejected"])

    def seconds_until_available(self, tokens: float = 1.0) -> float:
        """How long a caller must wait before ``tokens`` would be admitted.

        Returns 0.0 if the request would be admitted right now. Requests
        larger than the bucket capacity can never be admitted; for those this
        raises :class:`ConfigError` rather than returning infinity silently.
        """
        if tokens > self._capacity:
            raise ConfigError(
                f"requested {tokens} tokens exceeds capacity {self._capacity}"
            )
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self._rate
