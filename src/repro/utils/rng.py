"""Deterministic random-number generation with named substreams.

Large simulations need independent randomness per subsystem (agents, market
drift, downtime schedule, ...) that stays stable when unrelated subsystems
change their draw counts. :class:`DeterministicRNG` derives child generators
from a name, so each subsystem owns an isolated, reproducible stream.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seeded random generator that can spawn independent named children.

    Child streams are derived by hashing ``(seed, name)``, so adding a new
    subsystem or changing how many numbers one stream draws never perturbs
    any sibling stream.
    """

    def __init__(self, seed: int | str, *, _path: str = "") -> None:
        self._seed = str(seed)
        self._path = _path
        digest = hashlib.sha256(f"{self._seed}/{_path}".encode()).digest()
        self._random = random.Random(int.from_bytes(digest[:8], "big"))

    @property
    def path(self) -> str:
        """Slash-separated stream name, useful for debugging."""
        return self._path or "<root>"

    def child(self, name: str) -> "DeterministicRNG":
        """Derive an independent substream identified by ``name``."""
        new_path = f"{self._path}/{name}" if self._path else name
        return DeterministicRNG(self._seed, _path=new_path)

    def state_fingerprint(self) -> str:
        """A short stable hash of this stream's exact generator state.

        Two streams with the same seed, path, and draw history fingerprint
        identically; any divergence (different code path, different draw
        count) changes it. Campaign checkpoints record fingerprints so a
        resume can verify its deterministic replay reproduced the killed
        run's randomness exactly before continuing.
        """
        state = json.dumps(self._random.getstate(), sort_keys=True)
        return hashlib.sha256(state.encode()).hexdigest()[:16]

    # --- thin wrappers over random.Random ---------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal deviate."""
        return self._random.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Lognormal deviate with underlying normal N(mu, sigma)."""
        return self._random.lognormvariate(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential deviate with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def paretovariate(self, alpha: float) -> float:
        """Pareto deviate with shape ``alpha`` (scale 1)."""
        return self._random.paretovariate(alpha)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int) -> list[T]:
        """Pick ``k`` elements with replacement using ``weights``."""
        return self._random.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Pick ``k`` distinct elements without replacement."""
        return self._random.sample(seq, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def bytes(self, n: int) -> bytes:
        """Return ``n`` deterministic pseudo-random bytes."""
        return self._random.randbytes(n)

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        return self._random.random() < p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRNG(seed={self._seed!r}, path={self.path!r})"
