"""Utility layer: encoding, deterministic time and randomness, statistics,
rate limiting, backoff, and serialization helpers."""

from repro.utils.base58 import b58decode, b58encode
from repro.utils.backoff import ExponentialBackoff
from repro.utils.distributions import (
    clipped_lognormal,
    lognormal_from_median,
    pareto_from_scale,
    weighted_choice,
)
from repro.utils.ratelimit import TokenBucket
from repro.utils.rng import DeterministicRNG
from repro.utils.simtime import SimClock, iso_to_unix, unix_to_iso
from repro.utils.stats import Cdf, Summary, percentile, summarize

__all__ = [
    "Cdf",
    "DeterministicRNG",
    "ExponentialBackoff",
    "SimClock",
    "Summary",
    "TokenBucket",
    "b58decode",
    "b58encode",
    "clipped_lognormal",
    "iso_to_unix",
    "lognormal_from_median",
    "pareto_from_scale",
    "percentile",
    "summarize",
    "unix_to_iso",
    "weighted_choice",
]
