"""Deterministic simulated time.

The paper's methodology is structured around wall-clock cadences (two-minute
polls, per-day aggregation, 400 ms slots). To make a four-month campaign
reproducible in seconds, every component in this library reads time from a
:class:`SimClock` rather than the ambient system clock.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

from repro.constants import CAMPAIGN_START_ISO
from repro.errors import ConfigError

SECONDS_PER_DAY = 86_400


def iso_to_unix(iso: str) -> float:
    """Convert an ISO-8601 timestamp to unix seconds."""
    return datetime.fromisoformat(iso).timestamp()


def unix_to_iso(unix: float) -> str:
    """Convert unix seconds to an ISO-8601 UTC timestamp."""
    return datetime.fromtimestamp(unix, tz=timezone.utc).isoformat()


def unix_to_date(unix: float) -> str:
    """Convert unix seconds to a UTC calendar date string (YYYY-MM-DD)."""
    return datetime.fromtimestamp(unix, tz=timezone.utc).date().isoformat()


class SimClock:
    """A monotonically advancing simulated clock.

    The clock is anchored at an epoch (default: the paper's campaign start,
    2025-02-09T00:00:00Z) and only moves when :meth:`advance` or
    :meth:`advance_to` is called, making every run deterministic.
    """

    def __init__(self, epoch_iso: str = CAMPAIGN_START_ISO) -> None:
        self._epoch = iso_to_unix(epoch_iso)
        self._now = self._epoch

    @property
    def epoch(self) -> float:
        """Unix timestamp of the clock's anchor point."""
        return self._epoch

    def now(self) -> float:
        """Current simulated time as unix seconds."""
        return self._now

    def now_iso(self) -> str:
        """Current simulated time as an ISO-8601 UTC string."""
        return unix_to_iso(self._now)

    def elapsed(self) -> float:
        """Seconds elapsed since the epoch."""
        return self._now - self._epoch

    def day_index(self) -> int:
        """Zero-based day number since the epoch."""
        return int(self.elapsed() // SECONDS_PER_DAY)

    def date(self) -> str:
        """Current simulated calendar date (YYYY-MM-DD, UTC)."""
        return unix_to_date(self._now)

    def date_of_day(self, day_index: int) -> str:
        """Calendar date of day ``day_index`` of the simulation."""
        moment = datetime.fromtimestamp(self._epoch, tz=timezone.utc)
        return (moment + timedelta(days=day_index)).date().isoformat()

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time.

        Raises:
            ConfigError: if ``seconds`` is negative (time never rewinds).
        """
        if seconds < 0:
            raise ConfigError(f"cannot advance clock by negative {seconds}s")
        self._now += seconds
        return self._now

    def advance_to(self, unix: float) -> float:
        """Jump the clock forward to an absolute unix timestamp.

        Raises:
            ConfigError: if ``unix`` is in the simulated past.
        """
        if unix < self._now:
            raise ConfigError(
                f"cannot rewind clock from {self._now} to {unix}"
            )
        self._now = unix
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now_iso()})"
