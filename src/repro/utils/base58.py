"""Base58 encoding and decoding (Bitcoin/Solana alphabet).

Solana public keys and transaction signatures are conventionally rendered in
base58. This is a from-scratch implementation with no dependencies.

Both directions are memoized behind bounded LRU caches: the analysis hot
path decodes the same 32-byte addresses (wallets, mints, pools) millions of
times per campaign, and the big-integer conversion dominates the cost.
:func:`b58_cache_stats` exposes the hit/miss tallies so the parallel engine
can publish cache hit-rate gauges.
"""

from __future__ import annotations

from functools import lru_cache

ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_INDEX = {char: i for i, char in enumerate(ALPHABET)}

#: Bound on each direction's memo. 64k entries of 32-to-64-byte payloads is
#: a few MB — enough to hold every address a paper-scale campaign touches.
CACHE_SIZE = 65_536


def _b58encode(data: bytes) -> str:
    leading_zeros = 0
    for byte in data:
        if byte != 0:
            break
        leading_zeros += 1

    value = int.from_bytes(data, "big")
    digits: list[str] = []
    while value > 0:
        value, remainder = divmod(value, 58)
        digits.append(ALPHABET[remainder])
    return "1" * leading_zeros + "".join(reversed(digits))


def _b58decode(encoded: str) -> bytes:
    leading_ones = 0
    for char in encoded:
        if char != "1":
            break
        leading_ones += 1

    value = 0
    for char in encoded:
        try:
            value = value * 58 + _INDEX[char]
        except KeyError:
            raise ValueError(f"invalid base58 character: {char!r}") from None

    body = value.to_bytes((value.bit_length() + 7) // 8, "big") if value else b""
    return b"\x00" * leading_ones + body


@lru_cache(maxsize=CACHE_SIZE)
def b58encode(data: bytes) -> str:
    """Encode ``data`` as a base58 string using the Bitcoin alphabet.

    Leading zero bytes are encoded as leading ``'1'`` characters, matching
    the standard used by Solana for public keys. Memoized (bounded LRU).
    """
    return _b58encode(data)


@lru_cache(maxsize=CACHE_SIZE)
def b58decode(encoded: str) -> bytes:
    """Decode a base58 string back to bytes. Memoized (bounded LRU).

    Raises:
        ValueError: if ``encoded`` contains characters outside the alphabet.
    """
    return _b58decode(encoded)


def b58_cache_stats() -> dict[str, int]:
    """Combined hit/miss/size tallies of both direction caches."""
    encode_info = b58encode.cache_info()
    decode_info = b58decode.cache_info()
    return {
        "hits": encode_info.hits + decode_info.hits,
        "misses": encode_info.misses + decode_info.misses,
        "entries": encode_info.currsize + decode_info.currsize,
    }


def b58_cache_clear() -> None:
    """Drop both memos (tests and long-lived processes)."""
    b58encode.cache_clear()
    b58decode.cache_clear()
