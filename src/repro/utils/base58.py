"""Base58 encoding and decoding (Bitcoin/Solana alphabet).

Solana public keys and transaction signatures are conventionally rendered in
base58. This is a from-scratch implementation with no dependencies.
"""

from __future__ import annotations

ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_INDEX = {char: i for i, char in enumerate(ALPHABET)}


def b58encode(data: bytes) -> str:
    """Encode ``data`` as a base58 string using the Bitcoin alphabet.

    Leading zero bytes are encoded as leading ``'1'`` characters, matching
    the standard used by Solana for public keys.
    """
    leading_zeros = 0
    for byte in data:
        if byte != 0:
            break
        leading_zeros += 1

    value = int.from_bytes(data, "big")
    digits: list[str] = []
    while value > 0:
        value, remainder = divmod(value, 58)
        digits.append(ALPHABET[remainder])
    return "1" * leading_zeros + "".join(reversed(digits))


def b58decode(encoded: str) -> bytes:
    """Decode a base58 string back to bytes.

    Raises:
        ValueError: if ``encoded`` contains characters outside the alphabet.
    """
    leading_ones = 0
    for char in encoded:
        if char != "1":
            break
        leading_ones += 1

    value = 0
    for char in encoded:
        try:
            value = value * 58 + _INDEX[char]
        except KeyError:
            raise ValueError(f"invalid base58 character: {char!r}") from None

    body = value.to_bytes((value.bit_length() + 7) // 8, "big") if value else b""
    return b"\x00" * leading_ones + body
