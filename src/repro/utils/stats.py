"""Empirical statistics: CDFs, percentiles, and summary descriptors.

The paper's Figures 3 and 4 are cumulative distributions; this module is the
single implementation both the analysis layer and the benchmarks use.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of pre-sorted values.

    Raises:
        ConfigError: on an empty input or out-of-range ``q``.
    """
    if not sorted_values:
        raise ConfigError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigError(f"percentile q must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_values[low])
    frac = rank - low
    low_value = float(sorted_values[low])
    high_value = float(sorted_values[high])
    # a + (b - a) * f is monotone in f under floating-point rounding,
    # unlike a * (1 - f) + b * f, which can wobble by an ulp.
    return low_value + (high_value - low_value) * frac


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one sample."""

    count: int
    total: float
    mean: float
    median: float
    p05: float
    p25: float
    p75: float
    p95: float
    minimum: float
    maximum: float


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises:
        ConfigError: if ``values`` is empty.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ConfigError("summarize of empty sequence")
    total = sum(data)
    return Summary(
        count=len(data),
        total=total,
        mean=total / len(data),
        median=percentile(data, 50),
        p05=percentile(data, 5),
        p25=percentile(data, 25),
        p75=percentile(data, 75),
        p95=percentile(data, 95),
        minimum=data[0],
        maximum=data[-1],
    )


class Cdf:
    """Empirical cumulative distribution function over a finite sample.

    Supports the two queries the paper's figures need: the fraction of the
    sample at or below a value (e.g. "86% of length-one bundles tip at most
    100,000 lamports") and the value at a quantile (e.g. the median victim
    loss).
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)
        if not self._values:
            raise ConfigError("Cdf requires a non-empty sample")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        """The sorted sample (a copy)."""
        return list(self._values)

    def fraction_at_or_below(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        return bisect.bisect_right(self._values, x) / len(self._values)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        return percentile(self._values, q * 100.0)

    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def points(self, n: int = 100) -> list[tuple[float, float]]:
        """Sample ``n`` (value, cumulative-fraction) points for plotting.

        Points are evenly spaced in quantile space, so heavy tails remain
        visible. The final point is always (max, 1.0).
        """
        if n < 2:
            raise ConfigError(f"need at least 2 CDF points, got {n}")
        out: list[tuple[float, float]] = []
        for i in range(n):
            q = i / (n - 1)
            out.append((self.quantile(q), q))
        return out

    def log_points(self, n: int = 100) -> list[tuple[float, float]]:
        """CDF points evenly spaced in *log value* space (for log-x plots).

        Only meaningful for strictly positive samples; zero/negative values
        are clamped to the smallest positive value present.
        """
        positives = [v for v in self._values if v > 0]
        if not positives:
            raise ConfigError("log_points requires at least one positive value")
        if n < 2:
            raise ConfigError(f"need at least 2 CDF points, got {n}")
        low = math.log10(positives[0])
        high = math.log10(positives[-1])
        if high <= low:
            return [(positives[0], self.fraction_at_or_below(positives[0]))]
        out = []
        for i in range(n):
            x = 10 ** (low + (high - low) * i / (n - 1))
            out.append((x, self.fraction_at_or_below(x)))
        # Pin the endpoint: float rounding of 10**log10(max) can land a hair
        # below the true maximum, leaving the final fraction short of 1.
        out[-1] = (positives[-1], self.fraction_at_or_below(positives[-1]))
        return out
