"""Parametric sampling helpers used to calibrate workloads to the paper.

The paper's reported distributions (victim losses with median ~$5 and a tail
above $100; Jito tips with medians spanning three orders of magnitude) are
heavy-tailed. These helpers express lognormal and Pareto families in the
units the calibration actually uses — medians and scales — rather than the
underlying normal's mu/sigma.
"""

from __future__ import annotations

import math
from typing import Sequence, TypeVar

from repro.errors import ConfigError
from repro.utils.rng import DeterministicRNG

T = TypeVar("T")


def lognormal_from_median(rng: DeterministicRNG, median: float, sigma: float) -> float:
    """Sample a lognormal specified by its *median* and log-space sigma.

    For a lognormal, ``median = exp(mu)``, so ``mu = ln(median)``. The mean is
    then ``median * exp(sigma^2 / 2)`` — handy for matching the paper's
    skewed median-vs-mean loss figures.
    """
    if median <= 0:
        raise ConfigError(f"lognormal median must be positive, got {median}")
    if sigma < 0:
        raise ConfigError(f"lognormal sigma must be non-negative, got {sigma}")
    return rng.lognormvariate(math.log(median), sigma)


def clipped_lognormal(
    rng: DeterministicRNG,
    median: float,
    sigma: float,
    low: float,
    high: float,
) -> float:
    """Sample ``lognormal_from_median`` and clip the result into [low, high]."""
    if low > high:
        raise ConfigError(f"clip bounds inverted: [{low}, {high}]")
    return min(max(lognormal_from_median(rng, median, sigma), low), high)


def pareto_from_scale(rng: DeterministicRNG, scale: float, alpha: float) -> float:
    """Sample a Pareto variate with minimum value ``scale`` and shape ``alpha``."""
    if scale <= 0:
        raise ConfigError(f"pareto scale must be positive, got {scale}")
    if alpha <= 0:
        raise ConfigError(f"pareto alpha must be positive, got {alpha}")
    return scale * rng.paretovariate(alpha)


def weighted_choice(
    rng: DeterministicRNG, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Pick one item with probability proportional to its weight.

    Raises:
        ConfigError: on empty input, mismatched lengths, or non-positive
            total weight.
    """
    if not items:
        raise ConfigError("weighted_choice requires at least one item")
    if len(items) != len(weights):
        raise ConfigError(
            f"{len(items)} items but {len(weights)} weights"
        )
    total = float(sum(weights))
    if total <= 0:
        raise ConfigError(f"total weight must be positive, got {total}")
    threshold = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        if weight < 0:
            raise ConfigError(f"negative weight {weight} for {item!r}")
        cumulative += weight
        if threshold < cumulative:
            return item
    return items[-1]


def interpolate_daily(start: float, end: float, day: int, total_days: int) -> float:
    """Linearly interpolate an intensity between day 0 and the final day.

    Used for the paper's time trends: sandwich attacks decrease from ~15K/day
    to ~1K/day while defensive bundles increase over the same period.
    """
    if total_days <= 1:
        return start
    frac = min(max(day / (total_days - 1), 0.0), 1.0)
    return start + (end - start) * frac


def geometric_daily(start: float, end: float, day: int, total_days: int) -> float:
    """Geometrically interpolate an intensity (smooth exponential trend).

    A multiplicative trend matches the paper's Figure 2 shape better than a
    linear one: the attack count falls by >10x over the period.
    """
    if start <= 0 or end <= 0:
        raise ConfigError("geometric interpolation requires positive endpoints")
    if total_days <= 1:
        return start
    frac = min(max(day / (total_days - 1), 0.0), 1.0)
    return start * (end / start) ** frac
