"""The scenario-pack model and registry.

A pack is a frozen, JSON-round-trippable recipe: a conformance base
scenario (the bundle mix the generator expands) plus the market-structure
axes the paper's measurement held fixed — what fraction of attacks bypass
the public feed, how flow concentrates across block engines, and which
measurement-era evasion the attackers escalate to. Packs fingerprint like
base scenarios do, so golden fixtures can refuse a recipe that drifted
from its frozen vectors.

The three built-in packs are calibrated against the live agent population:
their attacker mix mirrors :class:`repro.agents.attacker.SandwichConfig`
defaults (non-SOL pair share), and :meth:`ScenarioPack.scenario_config`
hands back a live-simulation :class:`~repro.simulation.config.ScenarioConfig`
with the same knobs applied to the real agents, so a pack describes one
market structure for both the synthetic and the agent-based worlds.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, replace

from repro.conformance.scenarios import SyntheticScenario
from repro.errors import ConfigError
from repro.utils.serialization import dumps

#: The market-structure families a pack can model.
PACK_KINDS = ("private-channel", "builder-concentration", "adaptive-attacker")

#: Measurement-era evasions the adaptive packs escalate through.
EVASIONS = ("none", "disguise4", "split")


@dataclass(frozen=True)
class ScenarioPack:
    """One market structure: a base campaign plus adversarial axes.

    ``private_fraction`` hides that share of attacks from the public feed
    (the archive still records them — ground truth); ``engine_weights``
    spreads flow across that many block engines; ``evasion`` +
    ``evasion_fraction`` rewrites that share of attacks into the chosen
    evading shape.
    """

    name: str
    kind: str
    base: SyntheticScenario
    #: Fraction of attacks submitted through a private channel (feed-invisible).
    private_fraction: float = 0.0
    #: Relative flow share per block engine; empty = single-engine world.
    engine_weights: tuple[float, ...] = ()
    #: Which evasion the attackers use, and on what fraction of attacks.
    evasion: str = "none"
    evasion_fraction: float = 0.0
    description: str = ""

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range parameters."""
        if not self.name:
            raise ConfigError("a scenario pack needs a name")
        if self.kind not in PACK_KINDS:
            raise ConfigError(
                f"pack kind must be one of {PACK_KINDS}, got {self.kind!r}"
            )
        self.base.validate()
        for label, fraction in (
            ("private_fraction", self.private_fraction),
            ("evasion_fraction", self.evasion_fraction),
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ConfigError(f"{label} must be in [0, 1], got {fraction}")
        if self.evasion not in EVASIONS:
            raise ConfigError(
                f"evasion must be one of {EVASIONS}, got {self.evasion!r}"
            )
        if self.evasion == "none" and self.evasion_fraction > 0:
            raise ConfigError(
                "evasion_fraction > 0 needs an evasion other than 'none'"
            )
        if self.engine_weights:
            if any(w < 0 for w in self.engine_weights):
                raise ConfigError("engine weights must be non-negative")
            if sum(self.engine_weights) <= 0:
                raise ConfigError("engine weights must not all be zero")

    def engine_names(self) -> tuple[str, ...]:
        """Stable block-engine names, one per weight."""
        return tuple(
            f"engine-{index:02d}" for index in range(len(self.engine_weights))
        )

    def to_json(self) -> dict:
        """JSON-safe recipe (embedded verbatim in pack golden fixtures)."""
        record = asdict(self)
        record["base"] = self.base.to_json()
        record["engine_weights"] = list(self.engine_weights)
        return record

    @classmethod
    def from_json(cls, record: dict) -> "ScenarioPack":
        """Rebuild a pack from :meth:`to_json` output."""
        try:
            known = dict(record)
            known["base"] = SyntheticScenario.from_json(known["base"])
            known["engine_weights"] = tuple(known.get("engine_weights", ()))
            pack = cls(**known)
        except (TypeError, KeyError) as exc:
            raise ConfigError(f"malformed pack record: {exc}") from exc
        pack.validate()
        return pack

    def fingerprint(self) -> str:
        """Short stable hash of the full recipe (base included)."""
        return hashlib.sha256(dumps(self.to_json()).encode()).hexdigest()[:16]

    def with_seed(self, seed: int) -> "ScenarioPack":
        """The same market structure over a reseeded base campaign."""
        return replace(self, base=replace(self.base, seed=seed))

    def scenario_config(self, days: int = 2, seed: int | None = None):
        """A live-simulation scenario with this pack's knobs applied.

        Returns a small :class:`~repro.simulation.config.ScenarioConfig`
        whose agent population uses the pack's private-channel fraction, so
        ``MeasurementCampaign`` collects through the same biased feed the
        synthetic expansion models. Imported lazily: the pack model itself
        stays importable without the simulation stack.
        """
        from repro.simulation.scenario import small_scenario

        scenario = small_scenario(
            seed=self.base.seed if seed is None else seed, days=days
        )
        sandwich = replace(
            scenario.population.sandwich,
            private_channel_fraction=self.private_fraction,
        )
        population = replace(scenario.population, sandwich=sandwich)
        return replace(scenario, population=population)


def _default_non_sol_fraction() -> float:
    """The live attacker population's non-SOL pair share (calibration)."""
    from repro.agents.attacker import SandwichConfig

    return SandwichConfig().non_sol_fraction


def _pack_base(name: str, seed: int, **overrides) -> SyntheticScenario:
    """A pack's base campaign, calibrated to the agent population.

    The attacker's non-SOL pair share comes straight from the live
    :class:`~repro.agents.attacker.SandwichConfig` default, so synthetic
    packs and agent-based campaigns price the same share of sandwiches.
    """
    params = {
        "name": name,
        "seed": seed,
        "bundles": 160,
        "attacker_density": 0.15,
        "non_sol_fraction": _default_non_sol_fraction(),
        "tie_every": 3,
    }
    params.update(overrides)
    return SyntheticScenario(**params)


#: The checked-in pack corpus (see ``tests/golden/``). Regenerate fixtures
#: with ``repro selftest --bless`` after any intentional pipeline change.
CORPUS_PACKS: tuple[ScenarioPack, ...] = (
    ScenarioPack(
        name="pack-private-channel",
        kind="private-channel",
        base=_pack_base("pack-private-base", seed=505),
        private_fraction=0.4,
        description=(
            "40% of attacks bypass the public feed via a private channel; "
            "the archive records ground truth, the collector sees the "
            "biased sample"
        ),
    ),
    ScenarioPack(
        name="pack-builder-concentration",
        kind="builder-concentration",
        base=_pack_base(
            "pack-builder-base", seed=606, attacker_density=0.12
        ),
        engine_weights=(0.45, 0.35, 0.08, 0.06, 0.04, 0.02),
        description=(
            "two block engines carry 80% of flow (45/35/8/6/4/2 split); "
            "per-engine sandwich incidence breaks the aggregate down"
        ),
    ),
    ScenarioPack(
        name="pack-adaptive-attacker",
        kind="adaptive-attacker",
        base=_pack_base("pack-adaptive-base", seed=707, bundles=150),
        evasion="disguise4",
        evasion_fraction=0.5,
        description=(
            "half the attacks repackage as four-transaction disguises — "
            "invisible to the paper's length-three detector, visible to "
            "the windowed extension"
        ),
    ),
)


_REGISTRY: dict[str, ScenarioPack] = {}


def register_pack(pack: ScenarioPack) -> ScenarioPack:
    """Validate and register a pack under its name (last write wins)."""
    pack.validate()
    _REGISTRY[pack.name] = pack
    return pack


def get_pack(name: str) -> ScenarioPack:
    """Look up a registered pack; raise :class:`ConfigError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigError(
            f"unknown scenario pack {name!r}; available: {available}"
        ) from None


def list_packs() -> tuple[ScenarioPack, ...]:
    """All registered packs, sorted by name."""
    return tuple(
        _REGISTRY[name] for name in sorted(_REGISTRY)
    )


for _pack in CORPUS_PACKS:
    register_pack(_pack)
