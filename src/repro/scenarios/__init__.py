"""Pluggable scenario packs: market structures beyond the paper's baseline.

The paper measured one market structure: every attack bundle lands on the
public Jito feed, flow spreads across block engines, and attackers use the
canonical three-transaction shape. Related work says each of those
assumptions bends in practice — private submission channels bias the feed
sample, flow concentrates onto a couple of builders, and attackers adapt
their bundle shapes to evade measurement-era detectors.

A :class:`~repro.scenarios.packs.ScenarioPack` parameterizes exactly those
axes on top of a :class:`~repro.conformance.scenarios.SyntheticScenario`
base, so every pack inherits the conformance tier for free: fingerprinted
golden fixtures, the differential-oracle matrix over its observed feed,
and ``repro campaign --scenario <pack>`` / ``repro scenarios list`` CLI.

Layout:

- :mod:`repro.scenarios.packs` — the pack model, registry, and the three
  calibrated built-in packs;
- :mod:`repro.scenarios.generate` — pack expansion into ground-truth and
  observed campaign rows (evasion transforms, engine assignment, coupled
  private-channel selection);
- :mod:`repro.scenarios.report` — pack evaluation: recall/precision vs
  ground truth, the "Measurement bias" section, per-engine breakdowns;
- :mod:`repro.scenarios.campaign` — the ``--scenario`` campaign driver
  writing truth/observed archives and deterministic summaries.
"""

from repro.scenarios.campaign import run_pack_campaign
from repro.scenarios.generate import (
    PackCampaign,
    TruthAttack,
    build_pack_campaign,
)
from repro.scenarios.packs import (
    CORPUS_PACKS,
    EVASIONS,
    PACK_KINDS,
    ScenarioPack,
    get_pack,
    list_packs,
    register_pack,
)
from repro.scenarios.report import PackEvaluation, evaluate_pack

__all__ = [
    "CORPUS_PACKS",
    "EVASIONS",
    "PACK_KINDS",
    "PackCampaign",
    "PackEvaluation",
    "ScenarioPack",
    "TruthAttack",
    "build_pack_campaign",
    "evaluate_pack",
    "get_pack",
    "list_packs",
    "register_pack",
    "run_pack_campaign",
]
