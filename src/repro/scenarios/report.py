"""Pack evaluation: score the detector against planted ground truth.

Runs the unchanged analysis pipeline twice per pack — once over the full
ground-truth campaign (what the archive holds) and once over the observed
feed sample — plus a windowed-detector pass for the arms-race contrast,
then assembles:

- the canonical observed payload (the byte-pinned golden figure),
- the "Measurement bias" section (recall/precision degradation),
- per-engine sandwich-incidence breakdowns for builder packs,
- the evasion mix for adaptive packs.

The payload is pure data derived from the pack recipe, so golden fixtures
pin the recall-degradation figure exactly: re-running a pack must
reproduce the fixture's digest bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.recall import (
    MeasurementBias,
    RecallStats,
    bias_from_counts,
    compute_recall,
)
from repro.conformance.oracle import comparable_payload
from repro.conformance.scenarios import build_store
from repro.core.detector import WindowedSandwichDetector
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.errors import ConformanceError
from repro.scenarios.generate import PackCampaign, build_pack_campaign
from repro.scenarios.packs import ScenarioPack


def _detected_ids(report: AnalysisReport) -> list[str]:
    """Bundle ids of every detection, in canonical order."""
    return sorted(item.event.bundle_id for item in report.quantified)


@dataclass
class EngineBreakdown:
    """Sandwich incidence on one block engine."""

    engine: str
    bundles: int
    flow_share: float
    attacks: int
    stats: RecallStats

    def to_json(self) -> dict:
        """JSON-safe form (part of the pack payload)."""
        return {
            "engine": self.engine,
            "bundles": self.bundles,
            "flow_share": self.flow_share,
            "attacks": self.attacks,
            "stats": self.stats.to_json(),
        }


@dataclass
class PackEvaluation:
    """Everything one pack evaluation produced."""

    pack: ScenarioPack
    campaign: PackCampaign
    truth_report: AnalysisReport
    observed_report: AnalysisReport
    bias: MeasurementBias
    #: The windowed-detector counterpart (the arms-race contrast).
    windowed_bias: MeasurementBias
    engines: list[EngineBreakdown]

    def payload(self) -> dict:
        """The fixture payload: observed bytes plus bias and breakdowns."""
        return {
            "pack": self.pack.to_json(),
            "observed": comparable_payload(self.observed_report),
            "bias": self.bias.to_json(),
            "windowed_bias": self.windowed_bias.to_json(),
            "engines": [engine.to_json() for engine in self.engines],
            "evasion_mix": self.evasion_mix(),
        }

    def evasion_mix(self) -> dict[str, int]:
        """Planted attacks by evasion shape."""
        mix: dict[str, int] = {}
        for attack in self.campaign.attacks:
            mix[attack.evasion] = mix.get(attack.evasion, 0) + 1
        return dict(sorted(mix.items()))

    def render(self) -> str:
        """The pack report: bias section, engine table, evasion mix."""
        lines = [
            f"Scenario pack: {self.pack.name} ({self.pack.kind})",
            f"  {self.pack.description}",
            "",
            self.bias.render(),
        ]
        windowed = self.windowed_bias.observed.recall
        standard = self.bias.observed.recall
        if windowed is not None and standard is not None:
            lines += [
                "",
                (
                    f"windowed-detector recall:  {windowed:.4f} "
                    f"(vs {standard:.4f} length-three) on the public feed"
                ),
            ]
        if self.engines:
            lines += ["", "Per-engine sandwich incidence", "-" * 29]
            header = (
                f"{'engine':<12} {'bundles':>8} {'share':>7} "
                f"{'attacks':>8} {'detected':>9} {'recall':>7}"
            )
            lines.append(header)
            for engine in self.engines:
                recall = engine.stats.recall
                lines.append(
                    f"{engine.engine:<12} {engine.bundles:>8} "
                    f"{engine.flow_share:>7.3f} {engine.attacks:>8} "
                    f"{engine.stats.detected_true:>9} "
                    f"{'n/a' if recall is None else f'{recall:.3f}':>7}"
                )
        mix = self.evasion_mix()
        if set(mix) != {"none"} and mix:
            rendered = ", ".join(
                f"{evasion}={count}" for evasion, count in mix.items()
            )
            lines += ["", f"evasion mix: {rendered}"]
        return "\n".join(lines)


def _engine_breakdowns(
    campaign: PackCampaign, observed_detected: list[str]
) -> list[EngineBreakdown]:
    """Per-engine incidence from the campaign's engine assignment."""
    if not campaign.engine_by_bundle:
        return []
    total = len(campaign.truth_rows)
    members: dict[str, set[str]] = {}
    for bundle_id, engine in campaign.engine_by_bundle.items():
        members.setdefault(engine, set()).add(bundle_id)
    detected = set(observed_detected)
    out: list[EngineBreakdown] = []
    for engine in campaign.pack.engine_names():
        owned = members.get(engine, set())
        attacks = [
            bundles
            for bundles in campaign.attack_bundle_lists
            if any(bundle_id in owned for bundle_id in bundles)
        ]
        out.append(
            EngineBreakdown(
                engine=engine,
                bundles=len(owned),
                flow_share=len(owned) / total if total else 0.0,
                attacks=len(attacks),
                stats=compute_recall(
                    attacks, [b for b in detected if b in owned]
                ),
            )
        )
    return out


def evaluate_pack(pack: ScenarioPack) -> PackEvaluation:
    """Expand a pack and score detection against its ground truth.

    Raises:
        ConformanceError: when the pack's canonical (non-evading, public)
            attacks are not all detected on the ground-truth campaign — a
            miscalibrated base would silently corrupt every bias figure.
    """
    campaign = build_pack_campaign(pack)
    truth_store = build_store(campaign.truth_rows)
    observed_store = build_store(campaign.observed_rows)
    truth_report = AnalysisPipeline().analyze_store(truth_store)
    observed_report = AnalysisPipeline().analyze_store(observed_store)
    truth_detected = _detected_ids(truth_report)
    observed_detected = _detected_ids(observed_report)

    canonical = [a for a in campaign.attacks if a.evasion == "none"]
    missed = [
        attack.attack_id
        for attack in canonical
        if attack.attack_id not in set(truth_detected)
    ]
    if missed:
        raise ConformanceError(
            f"pack {pack.name} is miscalibrated: canonical attacks "
            f"{missed[:5]} evaded the detector on the ground-truth campaign"
        )

    bias = bias_from_counts(
        pack.name,
        campaign.attack_bundle_lists,
        campaign.hidden_attack_indexes,
        truth_bundles=len(campaign.truth_rows),
        observed_bundles=len(campaign.observed_rows),
        truth_detected=truth_detected,
        observed_detected=observed_detected,
    )
    windowed_truth = AnalysisPipeline(
        detector=WindowedSandwichDetector()
    ).analyze_store(truth_store)
    windowed_observed = AnalysisPipeline(
        detector=WindowedSandwichDetector()
    ).analyze_store(observed_store)
    windowed_bias = bias_from_counts(
        pack.name,
        campaign.attack_bundle_lists,
        campaign.hidden_attack_indexes,
        truth_bundles=len(campaign.truth_rows),
        observed_bundles=len(campaign.observed_rows),
        truth_detected=_detected_ids(windowed_truth),
        observed_detected=_detected_ids(windowed_observed),
    )
    return PackEvaluation(
        pack=pack,
        campaign=campaign,
        truth_report=truth_report,
        observed_report=observed_report,
        bias=bias,
        windowed_bias=windowed_bias,
        engines=_engine_breakdowns(campaign, observed_detected),
    )
