"""The ``repro campaign --scenario <pack>`` driver.

Expands a pack, writes both sides of the measurement to disk — the
ground-truth archive (everything that landed) and the observed archive
(what the public feed exposed) — and renders the pack report with its
"Measurement bias" section. Every output file is a pure function of the
pack recipe and the seed: no wall-clock, no host entropy, so two runs of
the same invocation are byte-identical (the CI smoke job diffs them).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.conformance.canon import canon_jsonable
from repro.conformance.scenarios import write_archive
from repro.scenarios.packs import ScenarioPack
from repro.scenarios.report import PackEvaluation, evaluate_pack


def pack_summary(evaluation: PackEvaluation) -> dict:
    """The deterministic ``summary.json`` payload for one pack campaign."""
    campaign = evaluation.campaign
    totals = {
        "truth_bundles": len(campaign.truth_rows),
        "observed_bundles": len(campaign.observed_rows),
        "ground_truth_attacks": len(campaign.attacks),
        "hidden_attacks": len(campaign.hidden_attack_indexes),
        "observed_detections": evaluation.observed_report.sandwich_count,
        "truth_detections": evaluation.truth_report.sandwich_count,
    }
    return canon_jsonable(
        {
            "pack": evaluation.pack.to_json(),
            "pack_fingerprint": evaluation.pack.fingerprint(),
            "totals": totals,
            "bias": evaluation.bias.to_json(),
            "windowed_bias": evaluation.windowed_bias.to_json(),
            "engines": [engine.to_json() for engine in evaluation.engines],
            "evasion_mix": evaluation.evasion_mix(),
        }
    )


def run_pack_campaign(
    pack: ScenarioPack, out: str | Path, seed: int | None = None
) -> PackEvaluation:
    """Run one pack campaign and write its artifacts under ``out``.

    Writes ``truth.db`` (ground-truth archive), ``observed.db`` (the feed
    sample), ``report.txt`` (with the "Measurement bias" section), and
    ``summary.json``. ``seed`` reseeds the pack's base campaign, keeping
    the market structure fixed while varying the draws.
    """
    if seed is not None:
        pack = pack.with_seed(seed)
    evaluation = evaluate_pack(pack)
    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    for name in ("truth.db", "observed.db"):
        target = out / name
        if target.exists():
            target.unlink()
    write_archive(evaluation.campaign.truth_rows, out / "truth.db")
    write_archive(evaluation.campaign.observed_rows, out / "observed.db")
    (out / "report.txt").write_text(
        evaluation.render() + "\n", encoding="utf-8"
    )
    (out / "summary.json").write_text(
        json.dumps(pack_summary(evaluation), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return evaluation
