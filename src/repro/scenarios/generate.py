"""Pack expansion: ground-truth rows, observed rows, and the gap between.

The base scenario expands through the unchanged conformance generator
(:func:`repro.conformance.scenarios.generate_labeled_rows`), so a pack
with no adversarial axes produces byte-identical rows to its base. The
pack layer then applies, in order:

1. **evasion transforms** — each attack keeps its canonical shape or is
   rewritten into a measurement-era evasion (a four-transaction disguise,
   or a split across two bundles);
2. **engine assignment** — every landed bundle is attributed to a block
   engine drawn from the pack's flow weights;
3. **private-channel selection** — each *attack* draws exactly one uniform
   from a dedicated substream and is hidden from the feed iff that draw
   falls below ``private_fraction``.

The one-draw-per-attack discipline in step 3 is deliberate: the draw does
not depend on the fraction, so for any two fractions ``p1 <= p2`` the
hidden sets nest — the property the hypothesis suite checks (observed
attack counts are monotonically non-increasing in ``p``) holds by
construction instead of only statistically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conformance.scenarios import (
    Row,
    _swap_record,
    generate_labeled_rows,
)
from repro.explorer.models import BundleRecord
from repro.scenarios.packs import ScenarioPack
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class TruthAttack:
    """One planted attack and the bundles that carry it after evasion."""

    #: The base generator's bundle id for the attack (stable across axes).
    attack_id: str
    #: The landed bundle ids carrying the attack (two for a split).
    bundle_ids: tuple[str, ...]
    #: Which evasion this attack used (``"none"`` for the canonical shape).
    evasion: str

    def to_json(self) -> dict:
        """JSON-safe form (embedded in pack summaries)."""
        return {
            "attack_id": self.attack_id,
            "bundle_ids": list(self.bundle_ids),
            "evasion": self.evasion,
        }


@dataclass
class PackCampaign:
    """Everything a pack expansion produced.

    ``truth_rows`` is what actually landed on chain (the archive's ground
    truth); ``observed_rows`` is the subset the public feed exposed —
    identical lists when the pack has no private channel.
    """

    pack: ScenarioPack
    truth_rows: list[Row]
    observed_rows: list[Row]
    attacks: list[TruthAttack]
    #: Bundle ids hidden from the public feed.
    private_bundle_ids: frozenset[str]
    #: Indexes into ``attacks`` for attacks fully off the feed.
    hidden_attack_indexes: tuple[int, ...]
    #: Landed bundle id -> block engine name (empty map without weights).
    engine_by_bundle: dict[str, str]

    @property
    def attack_bundle_lists(self) -> list[tuple[str, ...]]:
        """Per-attack bundle id tuples, in planting order."""
        return [attack.bundle_ids for attack in self.attacks]


def _disguise_row(row: Row, rng: DeterministicRNG) -> Row:
    """Repackage a canonical sandwich as a four-transaction disguise.

    A decoy swap from the attacker's wallet rides behind the back-run, so
    the bundle leaves the length-three population the paper's detector
    scans; the front/victim/back window is still intact for the windowed
    extension detector.
    """
    bundle, records = row
    front = records[0]
    front_swap = front.events[0]
    decoy = _swap_record(
        f"{bundle.bundle_id}-d",
        front.signer,
        front_swap["mint_in"],
        front_swap["mint_out"],
        rng.randint(100, 900),
        rng.randint(50_000, 500_000),
        front_swap["pool"],
        front.block_time,
        front.slot,
    )
    disguised = list(records) + [decoy]
    return (
        BundleRecord(
            bundle_id=bundle.bundle_id,
            slot=bundle.slot,
            landed_at=bundle.landed_at,
            tip_lamports=bundle.tip_lamports,
            transaction_ids=tuple(r.transaction_id for r in disguised),
        ),
        disguised,
    )


def _split_rows(row: Row) -> tuple[Row, Row]:
    """Split a canonical sandwich across two bundles.

    The front-run wraps the victim in one bundle; the back-run lands alone
    in a second bundle carrying a third of the tip. No single bundle holds
    the full front/victim/back pattern, so bundle-scoped detection — plain
    or windowed — cannot see the attack.
    """
    bundle, records = row
    front, victim, back = records
    front_bundle = BundleRecord(
        bundle_id=f"{bundle.bundle_id}-s0",
        slot=bundle.slot,
        landed_at=bundle.landed_at,
        tip_lamports=bundle.tip_lamports - bundle.tip_lamports // 3,
        transaction_ids=(front.transaction_id, victim.transaction_id),
    )
    back_bundle = BundleRecord(
        bundle_id=f"{bundle.bundle_id}-s1",
        slot=bundle.slot,
        landed_at=bundle.landed_at,
        tip_lamports=bundle.tip_lamports // 3,
        transaction_ids=(back.transaction_id,),
    )
    return (front_bundle, [front, victim]), (back_bundle, [back])


def build_pack_campaign(pack: ScenarioPack) -> PackCampaign:
    """Expand a pack into ground-truth and observed campaign rows.

    Deterministic end to end: the base rows come from the conformance
    generator's substreams, and every pack-level draw flows from named
    children of ``scenarios/<pack-name>`` — evasion, engine, and private
    channel streams never perturb each other or the base.
    """
    pack.validate()
    labeled = generate_labeled_rows(pack.base)
    root = DeterministicRNG(pack.base.seed).child(f"scenarios/{pack.name}")
    evasion_rng = root.child("evasion")
    engine_rng = root.child("engines")
    private_rng = root.child("private")

    truth_rows: list[Row] = []
    attacks: list[TruthAttack] = []
    for row, kind in labeled:
        if kind != "sandwich":
            truth_rows.append(row)
            continue
        attack_id = row[0].bundle_id
        evades = (
            pack.evasion != "none"
            and pack.evasion_fraction > 0
            and evasion_rng.bernoulli(pack.evasion_fraction)
        )
        if not evades:
            truth_rows.append(row)
            attacks.append(TruthAttack(attack_id, (attack_id,), "none"))
        elif pack.evasion == "disguise4":
            truth_rows.append(_disguise_row(row, evasion_rng))
            attacks.append(TruthAttack(attack_id, (attack_id,), "disguise4"))
        else:
            front_row, back_row = _split_rows(row)
            truth_rows.append(front_row)
            truth_rows.append(back_row)
            attacks.append(
                TruthAttack(
                    attack_id,
                    (front_row[0].bundle_id, back_row[0].bundle_id),
                    "split",
                )
            )

    engine_by_bundle: dict[str, str] = {}
    if pack.engine_weights:
        names = pack.engine_names()
        weights = list(pack.engine_weights)
        for bundle, _records in truth_rows:
            engine_by_bundle[bundle.bundle_id] = engine_rng.choices(
                names, weights=weights, k=1
            )[0]

    # One uniform per attack, drawn regardless of the fraction: the hidden
    # sets nest across fractions (see the module docstring).
    private_ids: set[str] = set()
    hidden_indexes: list[int] = []
    for index, attack in enumerate(attacks):
        if private_rng.random() < pack.private_fraction:
            private_ids.update(attack.bundle_ids)
            hidden_indexes.append(index)

    observed_rows = [
        row for row in truth_rows if row[0].bundle_id not in private_ids
    ]
    return PackCampaign(
        pack=pack,
        truth_rows=truth_rows,
        observed_rows=observed_rows,
        attacks=attacks,
        private_bundle_ids=frozenset(private_ids),
        hidden_attack_indexes=tuple(hidden_indexes),
        engine_by_bundle=engine_by_bundle,
    )
