"""repro — a reproduction of "Quantifying the Threat of Sandwiching MEV on
Jito: A Measurement of Solana's Leading Validator Client" (IMC 2025).

The package is layered bottom-up:

- :mod:`repro.solana` / :mod:`repro.dex` / :mod:`repro.jito` — the chain,
  market, and validator-extension substrates, built from scratch;
- :mod:`repro.agents` / :mod:`repro.simulation` — the calibrated workload
  and campaign engine;
- :mod:`repro.explorer` / :mod:`repro.collector` — the measured API and the
  paper's collection methodology;
- :mod:`repro.core` — the paper's contribution: sandwich detection, loss
  quantification, defensive-bundling classification;
- :mod:`repro.baselines` / :mod:`repro.analysis` — comparisons and every
  table/figure of the evaluation;
- :mod:`repro.parallel` — the sharded multiprocess analysis engine,
  byte-identical to the serial pipeline at any job count;
- :mod:`repro.obs` — metrics, span tracing, and structured event telemetry
  across the whole pipeline (deterministic under the sim clock).

Quickstart::

    from repro import MeasurementCampaign, AnalysisPipeline, small_scenario

    result = MeasurementCampaign(small_scenario()).run()
    report = AnalysisPipeline().analyze_campaign(result)
    print(report.headline.sandwich_count)
"""

from repro.collector import MeasurementCampaign
from repro.core import (
    AnalysisPipeline,
    DefensiveBundlingClassifier,
    LossQuantifier,
    SandwichDetector,
)
from repro.obs import NULL_REGISTRY, EventLog, MetricsRegistry
from repro.parallel import DetectorSpec, ParallelAnalysisEngine
from repro.simulation import (
    ScenarioConfig,
    SimulationEngine,
    paper_scenario,
    small_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "AnalysisPipeline",
    "DefensiveBundlingClassifier",
    "DetectorSpec",
    "EventLog",
    "LossQuantifier",
    "MeasurementCampaign",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "ParallelAnalysisEngine",
    "SandwichDetector",
    "ScenarioConfig",
    "SimulationEngine",
    "__version__",
    "paper_scenario",
    "small_scenario",
]
