"""Vectorized financial quantification of detected sandwiches.

Mirrors :class:`repro.core.quantify.LossQuantifier` operation for
operation: the victim's loss is ``amount_in - rate_A * amount_out`` in the
quote currency, the attacker's gain is the integer difference
``backrun.amount_out - frontrun.amount_in``, and USD conversion happens
only when the attacked pair touches SOL. Lamport math runs on integer
arrays; floats appear exactly where the scalar quantifier produces them
(rate division, loss subtraction, USD conversion) and in the same
operation order, so results are bit-identical. The attacker gain is kept
as a Python ``int`` — the canonical report serializes ints and floats
differently, and byte identity hinges on preserving that distinction.
"""

from __future__ import annotations

from typing import Sequence

from repro.columnar.blocks import CandidateBlock
from repro.constants import LAMPORTS_PER_SOL
from repro.core.events import SandwichEvent
from repro.core.quantify import QuantifiedSandwich
from repro.core.trades import TradeLeg
from repro.errors import DetectionError
from repro.solana.tokens import SOL_MINT

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via columnar_available
    _np = None

_SOL_ADDRESS = SOL_MINT.address.to_base58()


def quantify_block(
    cand: CandidateBlock,
    detected_indexes: Sequence[int],
    usd_per_sol: float,
) -> list[QuantifiedSandwich]:
    """Quantify detected candidates, preserving the given (event) order.

    ``detected_indexes`` index into ``cand`` and must already be in the
    detector's output order (stable-sorted by ``landed_at``).

    Raises:
        DetectionError: on a detected front-run with non-positive output —
            reachable only under criterion ablation, and exactly where the
            scalar quantifier raises.
    """
    if not detected_indexes:
        return []
    sel = _np.array(list(detected_indexes), dtype=_np.intp)
    exact = cand.needs_exact_math()

    _, _, _, f_in, f_out = cand.leg_columns(0)
    _, v_mint_in, v_mint_out, v_in, v_out = cand.leg_columns(1)
    b_out = cand.leg_columns(2)[4]
    f_in, f_out = f_in[sel], f_out[sel]
    v_in, v_out = v_in[sel], v_out[sel]
    v_mint_in, v_mint_out = v_mint_in[sel], v_mint_out[sel]
    b_out = b_out[sel]
    if exact:
        f_in, f_out = f_in.astype(object), f_out.astype(object)
        v_in, v_out = v_in.astype(object), v_out.astype(object)
        b_out = b_out.astype(object)

    bad = _np.asarray(f_out <= 0, dtype=bool)
    if bad.any():
        value = f_out[int(_np.flatnonzero(bad)[0])]
        raise DetectionError(f"swap with non-positive output: {value}")

    attacker_rate = f_in / f_out
    would_have_paid = attacker_rate * v_out
    loss_quote = v_in - would_have_paid
    gains = b_out - f_in

    involves_sol = _np.asarray(
        (v_mint_in == _SOL_ADDRESS) | (v_mint_out == _SOL_ADDRESS),
        dtype=bool,
    )
    quote_is_sol = _np.asarray(v_mint_in == _SOL_ADDRESS, dtype=bool)
    nonzero_v_in = _np.asarray(v_in != 0, dtype=bool)
    ratio = _np.where(nonzero_v_in, v_out, 1) / _np.where(
        nonzero_v_in, v_in, 1
    )
    loss_lamports = _np.where(quote_is_sol, loss_quote, loss_quote * ratio)
    gain_lamports = _np.where(quote_is_sol, gains, gains * ratio)
    loss_usd = loss_lamports / LAMPORTS_PER_SOL * usd_per_sol
    gain_usd = gain_lamports / LAMPORTS_PER_SOL * usd_per_sol
    priced = involves_sol & (quote_is_sol | nonzero_v_in)

    # Materialization reads every lane once: scalarize the columns in one
    # C pass each (``tolist`` is bit-exact — float64 lanes become the
    # same Python floats, int64/object lanes the same ints) instead of
    # paying a numpy scalar indexing round-trip per event field.
    loss_list = loss_quote.tolist()
    gain_list = gains.tolist()
    loss_usd_list = loss_usd.tolist()
    gain_usd_list = gain_usd.tolist()
    priced_list = priced.tolist()

    quantified: list[QuantifiedSandwich] = []
    for position, candidate in enumerate(detected_indexes):
        features = cand.features[candidate]
        event = SandwichEvent(
            bundle=cand.block.record(cand.indexes[candidate]),
            attacker=features[0].signer,
            victim=features[1].signer,
            frontrun=TradeLeg(*cand.first_leg(candidate, 0)),
            victim_trade=TradeLeg(*cand.first_leg(candidate, 1)),
            backrun=TradeLeg(*cand.first_leg(candidate, 2)),
        )
        is_priced = priced_list[position]
        quantified.append(
            QuantifiedSandwich(
                event=event,
                victim_loss_quote=float(loss_list[position]),
                attacker_gain_quote=int(gain_list[position]),
                victim_loss_usd=(
                    float(loss_usd_list[position]) if is_priced else None
                ),
                attacker_gain_usd=(
                    float(gain_usd_list[position]) if is_priced else None
                ),
            )
        )
    return quantified
