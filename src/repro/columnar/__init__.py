"""Columnar (struct-of-arrays) batch analysis over archive chunks.

The object path (:mod:`repro.core`) walks one Python object per bundle:
per-candidate SQL round-trips, per-record JSON parses, and per-criterion
function dispatch. This package re-expresses the same detection and
quantification over *columns*:

- :mod:`repro.columnar.blocks` — typed column blocks loaded from SQLite
  projections (:meth:`repro.archive.query.ArchiveQuery.bundle_columns`
  and friends), with JSON decomposition pushed into SQLite's ``json_each``;
- :mod:`repro.columnar.criteria` — the five paper criteria evaluated as
  vectorized masks over a whole candidate block at once;
- :mod:`repro.columnar.quantify` — victim-loss / attacker-gain lamport
  math on arrays, bit-identical to the scalar quantifier;
- :mod:`repro.columnar.engine` — :func:`analyze_chunk_columnar`, a drop-in
  producer of the parallel tier's :class:`~repro.parallel.worker.
  ChunkOutcome`, so the deterministic merge, the report builders, and the
  differential oracle all apply unchanged.

The object path stays the conformance reference: the oracle's acceptance
matrix holds the ``columnar`` column byte-identical to serial on every
golden scenario. numpy is an optional dependency — when it is absent the
package still imports (so the object path is never impacted) and the
engine raises :class:`~repro.errors.ConfigError` at use time.
"""

from __future__ import annotations

from importlib import util as _importlib_util

from repro.errors import ConfigError


def columnar_available() -> bool:
    """Whether the vectorized engine can run in this interpreter (numpy)."""
    return _importlib_util.find_spec("numpy") is not None


def require_columnar() -> None:
    """Raise :class:`ConfigError` when the columnar engine cannot run."""
    if not columnar_available():
        raise ConfigError(
            "the columnar engine requires numpy; install it or use "
            "--engine object"
        )


from repro.columnar.blocks import (  # noqa: E402  (gated re-exports)
    BundleBlock,
    CandidateBlock,
    TxFeatures,
)
from repro.columnar.engine import analyze_chunk_columnar  # noqa: E402

__all__ = [
    "BundleBlock",
    "CandidateBlock",
    "TxFeatures",
    "analyze_chunk_columnar",
    "columnar_available",
    "require_columnar",
]
