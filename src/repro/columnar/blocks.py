"""Struct-of-arrays blocks loaded from archive projections.

A :class:`BundleBlock` holds one chunk's bundle scalars as parallel Python
lists (SQLite already returns typed Python values; keeping them avoids a
numpy round-trip for fields that end up in output records). Member
transaction ids stay as raw JSON text and are parsed lazily — most bundles
in a mixed archive are length-one singles whose single id has a fast
string-slice parse.

Per-transaction features (:class:`TxFeatures`) are extracted from the
``json_each`` projections: swap legs, traded mint sets, the tip-only flag,
and long-form token deltas. SQLite's JSON parser does the heavy lifting in
C; Python only regroups rows.

Precision: ``json_each`` degrades JSON integers beyond 64 bits to REAL.
Any extracted number that looks degraded (a float that is integral or has
magnitude >= 2**53) flags its transaction for a raw-JSON refetch parsed
with Python's arbitrary-precision ``json`` — so columnar results match the
object path even on adversarial integer amounts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.archive.query import ArchiveQuery
from repro.explorer.models import BundleRecord
from repro.jito.tips import is_tip_account

try:  # numpy is optional; blocks degrade to pure-python containers
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via columnar_available
    _np = None

#: Above this magnitude a float returned by ``json_each`` may be a
#: degraded JSON integer (float64 has 53 bits of mantissa).
_DEGRADED_FLOAT = 2**53

#: First-leg amounts at or below this bound make int64 vector math
#: bit-identical to Python scalar math (see :mod:`repro.columnar.criteria`
#: for the argument); larger amounts switch the block to object-dtype
#: arrays whose elementwise ops *are* Python's.
EXACT_INT64_LIMIT = 2**52


def obj_array(values: Sequence) -> "_np.ndarray":
    """A 1-D object array that never treats elements as nested sequences."""
    array = _np.empty(len(values), dtype=object)
    array[:] = list(values)
    return array


def num_array(values: Sequence) -> "_np.ndarray":
    """Numeric column: int64 when every value fits, else object dtype.

    Object dtype keeps Python's arbitrary-precision arithmetic (numpy
    elementwise ops on object arrays call the operands' own ``__op__``),
    which is exactly what the byte-identity contract needs for amounts
    beyond the int64 fast path.
    """
    try:
        return _np.array(list(values), dtype=_np.int64)
    except (OverflowError, ValueError, TypeError):
        return obj_array(values)


def _fast_record(
    bundle_id: str,
    slot: int,
    landed_at: float,
    tip_lamports: int,
    transaction_ids: tuple[str, ...],
) -> BundleRecord:
    """Construct a :class:`BundleRecord` without the frozen-init overhead.

    Frozen dataclasses assign every field through ``object.__setattr__``;
    writing the instance ``__dict__`` directly produces an object with
    identical fields, hash, and equality at a fraction of the cost. This
    only holds while :class:`BundleRecord` stores fields in ``__dict__``
    (i.e. is not a slots dataclass) — the parity test guards that.
    """
    record = BundleRecord.__new__(BundleRecord)
    # In-place update: the frozen __setattr__ guard also rejects direct
    # __dict__ *assignment*, but mutating the existing dict bypasses it.
    record.__dict__.update(
        bundle_id=bundle_id,
        slot=slot,
        landed_at=landed_at,
        tip_lamports=tip_lamports,
        transaction_ids=transaction_ids,
    )
    return record


def _parse_txids(raw: str) -> tuple[str, ...]:
    """Parse a ``transaction_ids`` JSON array, fast-pathing single ids."""
    if raw.startswith('["') and raw.endswith('"]'):
        inner = raw[2:-2]
        if '"' not in inner and "\\" not in inner:
            return (inner,)
    return tuple(json.loads(raw))


@dataclass
class BundleBlock:
    """One chunk's bundles in struct-of-arrays form (collection order)."""

    seqs: list[int]
    bundle_ids: list[str]
    slots: list[int]
    landed_at: list[float]
    tips: list[int]
    lengths: list[int]
    txids_raw: list[str | None]
    _txids: list[tuple[str, ...] | None] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        """Prepare the lazy parsed-ids cache."""
        if self._txids is None:
            self._txids = [None] * len(self.bundle_ids)

    def __len__(self) -> int:
        """Bundles in the block."""
        return len(self.bundle_ids)

    def transaction_ids(self, index: int) -> tuple[str, ...]:
        """Member transaction ids of bundle ``index`` (parsed lazily)."""
        ids = self._txids[index]
        if ids is None:
            ids = _parse_txids(self.txids_raw[index])
            self._txids[index] = ids
        return ids

    def record(self, index: int) -> BundleRecord:
        """Materialize one bundle as the object path's record type.

        Built through :func:`_fast_record`: a mixed archive is mostly
        length-one bundles that all flow through here for classification,
        and the frozen dataclass ``__init__`` (one guarded
        ``object.__setattr__`` per field) was the single largest cost of
        the columnar quantify stage. The fast constructor fills the
        instance ``__dict__`` directly — field-for-field identical, as
        :func:`tests.columnar.test_blocks` pins.
        """
        return _fast_record(
            self.bundle_ids[index],
            self.slots[index],
            self.landed_at[index],
            self.tips[index],
            self.transaction_ids(index),
        )

    def to_records(self) -> list[BundleRecord]:
        """Materialize every bundle, in block order (round-trip helper)."""
        return [self.record(index) for index in range(len(self))]

    def classify_singles(
        self, threshold: int
    ) -> tuple[list[BundleRecord], list[BundleRecord]]:
        """Split length-one bundles into ``(defensive, priority)`` records.

        The batched form of calling :meth:`record` per single: a mixed
        archive is mostly length-one bundles, so this loop materializes
        tens of thousands of records per chunk — everything it touches is
        bound to a local once, and records are built with the
        :func:`_fast_record` ``__dict__`` technique inline. Order (block
        order) and record values match the per-call path exactly.
        """
        defensive: list[BundleRecord] = []
        priority: list[BundleRecord] = []
        ids, slots, landed = self.bundle_ids, self.slots, self.landed_at
        tips, raw, txids = self.tips, self.txids_raw, self._txids
        new = BundleRecord.__new__
        for index, length in enumerate(self.lengths):
            if length != 1:
                continue
            members = txids[index]
            if members is None:
                members = _parse_txids(raw[index])
                txids[index] = members
            tip = tips[index]
            record = new(BundleRecord)
            record.__dict__.update(
                bundle_id=ids[index],
                slot=slots[index],
                landed_at=landed[index],
                tip_lamports=tip,
                transaction_ids=members,
            )
            (defensive if tip <= threshold else priority).append(record)
        return defensive, priority

    @classmethod
    def from_rows(cls, rows: Sequence) -> "BundleBlock":
        """Transpose projection rows (see ``ArchiveQuery.bundle_columns``)."""
        if not rows:
            return cls([], [], [], [], [], [], [])
        seqs, ids, slots, landed, tips, lengths, raw = map(
            list, zip(*rows)
        )
        return cls(seqs, ids, slots, landed, tips, lengths, raw)

    @classmethod
    def from_records(
        cls, records: Sequence[BundleRecord]
    ) -> "BundleBlock":
        """Build a block from object-path records (round-trip helper)."""
        block = cls(
            seqs=list(range(1, len(records) + 1)),
            bundle_ids=[r.bundle_id for r in records],
            slots=[r.slot for r in records],
            landed_at=[r.landed_at for r in records],
            tips=[r.tip_lamports for r in records],
            lengths=[r.num_transactions for r in records],
            txids_raw=[None] * len(records),
        )
        block._txids = [tuple(r.transaction_ids) for r in records]
        return block

    def lengths_array(self) -> "_np.ndarray":
        """Bundle lengths as an int64 column."""
        return _np.array(self.lengths, dtype=_np.int64)

    def tips_array(self) -> "_np.ndarray":
        """Tip lamports as a numeric column."""
        return num_array(self.tips)


def load_bundle_block(
    query: ArchiveQuery, seq_lo: int, seq_hi: int
) -> BundleBlock:
    """Load one contiguous ``seq`` range as a block."""
    return BundleBlock.from_rows(query.bundle_columns(seq_lo, seq_hi))


def load_bundle_block_for_ids(
    query: ArchiveQuery, bundle_ids: Sequence[str]
) -> BundleBlock:
    """Load an explicit worklist as a block, preserving worklist order.

    Ids the archive does not hold are dropped — exactly what the object
    path's per-id lookups do for the incremental analyzer's pending list.
    """
    by_id = {
        row[1]: row for row in query.bundle_columns_for_ids(bundle_ids)
    }
    rows = [by_id[b] for b in bundle_ids if b in by_id]
    return BundleBlock.from_rows(rows)


@dataclass
class TxFeatures:
    """Everything detection needs from one transaction, pre-extracted.

    ``legs`` are ``(owner, pool, mint_in, mint_out, amount_in, amount_out)``
    tuples in event order with the object path's coercions applied
    (``str`` on identities, ``int`` on amounts); ``deltas`` is the
    long-form ``(owner, mint, value)`` list in JSON storage order.
    """

    signer: str
    legs: tuple[tuple, ...]
    mints: frozenset[str]
    tip_only: bool
    deltas: tuple[tuple, ...]


def _suspect(value) -> bool:
    """Whether a ``json_each`` number may be a degraded big integer."""
    return isinstance(value, float) and (
        value.is_integer() or abs(value) >= _DEGRADED_FLOAT
    )


def _features_from_parts(
    signer: str, events: Sequence, delta_rows: Sequence[tuple]
) -> TxFeatures:
    """Assemble one transaction's features from decomposed event tuples.

    ``events`` rows are ``(type, owner, pool, mint_in, mint_out,
    amount_in, amount_out, dest)`` in event order.
    """
    legs = []
    mints: set[str] = set()
    has_swap = has_token_transfer = has_transfer = False
    all_tip = True
    for etype, owner, pool, mint_in, mint_out, a_in, a_out, dest in events:
        if etype == "swap":
            has_swap = True
            leg = (
                str(owner),
                str(pool),
                str(mint_in),
                str(mint_out),
                int(a_in),
                int(a_out),
            )
            legs.append(leg)
            mints.add(leg[2])
            mints.add(leg[3])
        elif etype == "token_transfer":
            has_token_transfer = True
        elif etype == "transfer":
            has_transfer = True
            if not is_tip_account(str(dest if dest is not None else "")):
                all_tip = False
    tip_only = (
        not has_swap and not has_token_transfer and has_transfer and all_tip
    )
    return TxFeatures(
        signer=signer,
        legs=tuple(legs),
        mints=frozenset(mints),
        tip_only=tip_only,
        deltas=tuple(delta_rows),
    )


def _assemble_features(
    query: ArchiveQuery,
    signers: dict[str, str],
    event_rows: Sequence,
    delta_rows: Sequence,
) -> dict[str, TxFeatures]:
    """Regroup projection rows into per-transaction features.

    Shared by the id-list and range-join load paths — both feed it the
    same row shapes, so suspect detection, the raw-JSON precision
    refetch, and feature assembly are identical regardless of how the
    rows were selected.
    """
    events_by_tx: dict[str, list] = {tx: [] for tx in signers}
    suspects: set[str] = set()
    for row in event_rows:
        tx, ordinal = row[0], row[1]
        etype, a_in, a_out = row[2], row[7], row[8]
        if etype == "swap" and (_suspect(a_in) or _suspect(a_out)):
            suspects.add(tx)
        events_by_tx[tx].append((ordinal, row[2:]))

    deltas_by_tx: dict[str, list] = {tx: [] for tx in signers}
    for tx, owner, mint, value in delta_rows:
        if _suspect(value):
            suspects.add(tx)
        deltas_by_tx[tx].append((owner, mint, value))

    if suspects:
        _refetch_raw(query, suspects, events_by_tx, deltas_by_tx)

    features: dict[str, TxFeatures] = {}
    for tx, signer in signers.items():
        rows = events_by_tx[tx]
        rows.sort(key=lambda item: item[0])
        features[tx] = _features_from_parts(
            signer, [row for _, row in rows], deltas_by_tx[tx]
        )
    return features


def load_tx_features(
    query: ArchiveQuery,
    tx_ids: Sequence[str],
    delta_ids: Sequence[str],
) -> dict[str, TxFeatures]:
    """Extract features for ``tx_ids`` through the columnar projections.

    ``delta_ids`` names the subset whose token deltas matter (the
    attacker-side edge transactions); the others skip the nested
    ``json_each`` walk entirely. Transactions with degraded big-integer
    extractions are transparently refetched as raw JSON.
    """
    tx_ids = list(dict.fromkeys(tx_ids))
    delta_wanted = set(delta_ids)
    signers = dict(query.detail_signers(tx_ids))
    wanted = [tx for tx in signers if tx in delta_wanted]
    return _assemble_features(
        query,
        signers,
        query.event_columns(list(signers)),
        query.token_delta_columns(wanted),
    )


def load_tx_features_range(
    query: ArchiveQuery, seq_lo: int, seq_hi: int
) -> dict[str, TxFeatures]:
    """Extract candidate features for a whole ``seq`` range, coalesced.

    The range-join form of :func:`load_tx_features`: three constant-SQL
    round-trips (members+signers, events, edge deltas) cover every
    length-three bundle in the chunk, with no Python-side id collection
    and no ``IN``-list construction. Members whose details were never
    fetched surface as NULL signers and are simply absent from the
    result — the same "missing feature" signal the id path produces.
    """
    signers = {
        row[2]: row[3]
        for row in query.candidate_members(seq_lo, seq_hi)
        if row[3] is not None
    }
    return _assemble_features(
        query,
        signers,
        query.candidate_event_columns(seq_lo, seq_hi),
        query.candidate_token_delta_columns(seq_lo, seq_hi),
    )


def _refetch_raw(
    query: ArchiveQuery,
    suspects: set[str],
    events_by_tx: dict[str, list],
    deltas_by_tx: dict[str, list],
) -> None:
    """Replace suspect transactions' extractions with exact JSON parses."""
    for tx, events_json, deltas_json in query.raw_payloads(list(suspects)):
        events_by_tx[tx] = [
            (
                ordinal,
                (
                    event.get("type"),
                    event.get("owner"),
                    event.get("pool"),
                    event.get("mint_in"),
                    event.get("mint_out"),
                    event.get("amount_in"),
                    event.get("amount_out"),
                    event.get("dest"),
                ),
            )
            for ordinal, event in enumerate(json.loads(events_json))
        ]
        deltas_by_tx[tx] = [
            (owner, mint, value)
            for owner, mint_map in json.loads(deltas_json).items()
            for mint, value in mint_map.items()
        ]


@dataclass
class InternPool:
    """Cross-chunk interning tables for the code columns.

    Codes are only ever compared for equality *within* one block's
    columns, so sharing the tables across chunks is sound — equal values
    still get equal codes, unequal values unequal codes — and saves
    re-interning the same signers, mints, and mint sets for every chunk
    of a long scan. One pool per analysis run (per worker process under
    ``--jobs``) is the intended scope; the codes never appear in any
    output, so pool reuse cannot affect byte identity.
    """

    signers: dict = field(default_factory=dict)
    mint_sets: dict = field(default_factory=dict)
    leg_mints: dict = field(default_factory=dict)


@dataclass
class CandidateBlock:
    """Complete length-three candidates as parallel columns.

    ``indexes`` point back into the source :class:`BundleBlock`;
    ``features`` holds each candidate's three member :class:`TxFeatures`
    in bundle order. Everything else is a derived column, built once and
    cached — criteria and quantification share the same arrays, and the
    hot comparisons run on interned int64 *code* columns (equal strings
    or mint sets get equal codes) rather than object-dtype elementwise
    Python calls. ``intern`` optionally shares the interning tables
    across blocks (see :class:`InternPool`); without one, each block
    interns from scratch.
    """

    block: BundleBlock
    indexes: list[int]
    features: list[tuple[TxFeatures, TxFeatures, TxFeatures]]
    _cache: dict = field(default_factory=dict, repr=False)
    intern: InternPool | None = None

    def __len__(self) -> int:
        """Candidates in the block."""
        return len(self.indexes)

    def first_leg(self, candidate: int, position: int) -> tuple | None:
        """First swap leg tuple of member ``position`` (None if no swap)."""
        legs = self.features[candidate][position].legs
        return legs[0] if legs else None

    def prepare(self) -> "CandidateBlock":
        """Materialize every derived column (the load-phase hook).

        After this, :func:`~repro.columnar.criteria.evaluate_block` and
        :func:`~repro.columnar.quantify.quantify_block` touch cached
        primitive arrays only — the boundary the detection-core
        benchmarks measure. Returns ``self`` for chaining.
        """
        for position in range(3):
            self.leg_columns(position)
        self.signer_code_columns()
        self.mint_set_code_columns()
        self.leg_code_columns()
        self.tip_only_tail_column()
        self.attacker_delta_columns(self.leg_columns(0)[0])
        self.landed_column()
        self.needs_exact_math()
        return self

    def signer_columns(self) -> tuple:
        """Object arrays of the three member signers."""
        if "signers" not in self._cache:
            self._cache["signers"] = tuple(
                obj_array([f[pos].signer for f in self.features])
                for pos in range(3)
            )
        return self._cache["signers"]

    def signer_code_columns(self) -> tuple:
        """Int64 code columns of the member signers (one intern table).

        Interning assigns equal strings equal codes, so ``==``/``!=``
        over codes decide exactly what they decide over the strings —
        at int64 vector speed.
        """
        if "signer_codes" not in self._cache:
            codes: dict[str, int] = (
                self.intern.signers if self.intern is not None else {}
            )
            self._cache["signer_codes"] = tuple(
                _np.array(
                    [
                        codes.setdefault(f[pos].signer, len(codes))
                        for f in self.features
                    ],
                    dtype=_np.int64,
                )
                for pos in range(3)
            )
        return self._cache["signer_codes"]

    def mint_set_columns(self) -> tuple:
        """Object arrays of the three members' traded mint sets."""
        if "mint_sets" not in self._cache:
            self._cache["mint_sets"] = tuple(
                obj_array([f[pos].mints for f in self.features])
                for pos in range(3)
            )
        return self._cache["mint_sets"]

    def mint_set_code_columns(self) -> tuple:
        """Interned mint-set columns: ``(codes, nonempty)`` triples.

        ``codes`` are int64 columns where equal frozensets share a code;
        ``nonempty`` are bool columns marking members that traded at all
        (the empty set gets its own code, so equality still works, but
        criterion 2 additionally demands non-emptiness).
        """
        if "mint_set_codes" not in self._cache:
            interned: dict[frozenset, int] = (
                self.intern.mint_sets if self.intern is not None else {}
            )
            codes = []
            nonempty = []
            for pos in range(3):
                sets = [f[pos].mints for f in self.features]
                codes.append(
                    _np.array(
                        [interned.setdefault(s, len(interned)) for s in sets],
                        dtype=_np.int64,
                    )
                )
                nonempty.append(
                    _np.array([bool(s) for s in sets], dtype=bool)
                )
            self._cache["mint_set_codes"] = (tuple(codes), tuple(nonempty))
        return self._cache["mint_set_codes"]

    def leg_code_columns(self) -> tuple:
        """Per-position ``(mint_in, mint_out)`` int64 code pairs.

        One intern table spans all six columns, so cross-position mint
        comparisons (criterion 3's pair check) are plain int64 equality.
        Missing legs carry the sentinel ``""`` code — callers mask by
        presence exactly as with :meth:`leg_columns`.
        """
        if "leg_codes" not in self._cache:
            codes: dict[str, int] = (
                self.intern.leg_mints if self.intern is not None else {}
            )
            pairs = []
            for position in range(3):
                _, mint_in, mint_out, _, _ = self.leg_columns(position)
                pairs.append(
                    tuple(
                        _np.array(
                            [codes.setdefault(m, len(codes)) for m in col],
                            dtype=_np.int64,
                        )
                        for col in (mint_in, mint_out)
                    )
                )
            self._cache["leg_codes"] = tuple(pairs)
        return self._cache["leg_codes"]

    def leg_columns(self, position: int) -> tuple:
        """Decomposed first-leg columns of member ``position``.

        Returns ``(present, mint_in, mint_out, amount_in, amount_out)``:
        a bool array plus object/numeric columns with sentinel values
        (empty string / 1) where the member has no swap leg — callers
        must mask by ``present``. The amount sentinel is 1, not 0, so
        masked lanes never divide by zero. Built once per position and
        cached: criteria and quantification read the same arrays.
        """
        key = ("legs", position)
        if key in self._cache:
            return self._cache[key]
        present, mint_in, mint_out, a_in, a_out = [], [], [], [], []
        for candidate in range(len(self)):
            leg = self.first_leg(candidate, position)
            if leg is None:
                present.append(False)
                mint_in.append("")
                mint_out.append("")
                a_in.append(1)
                a_out.append(1)
            else:
                present.append(True)
                mint_in.append(leg[2])
                mint_out.append(leg[3])
                a_in.append(leg[4])
                a_out.append(leg[5])
        columns = (
            _np.array(present, dtype=bool),
            obj_array(mint_in),
            obj_array(mint_out),
            num_array(a_in),
            num_array(a_out),
        )
        self._cache[key] = columns
        return columns

    def tip_only_tail_column(self) -> "_np.ndarray":
        """Bool array: the last member only tips a validator."""
        if "tip_only" not in self._cache:
            self._cache["tip_only"] = _np.array(
                [f[2].tip_only for f in self.features], dtype=bool
            )
        return self._cache["tip_only"]

    def attacker_delta_columns(self, front_present: Sequence[bool]) -> tuple:
        """Per-candidate net attacker deltas in the front leg's two mints.

        Mirrors :func:`repro.core.trades.net_deltas_for` over members 0 and
        2 restricted to the attacker (member 0's signer) and the front
        leg's ``mint_in`` / ``mint_out`` — the only entries criterion 4
        reads. Candidates without a front leg get zeros (masked upstream).
        Cached: ``front_present`` always equals front-leg presence (both
        derive from the same features), so one result fits every call.
        """
        if "deltas" in self._cache:
            return self._cache["deltas"]
        quote, token = [], []
        for candidate, f in enumerate(self.features):
            leg = self.first_leg(candidate, 0)
            if leg is None or not front_present[candidate]:
                quote.append(0)
                token.append(0)
                continue
            attacker = f[0].signer
            quote_mint, token_mint = leg[2], leg[3]
            totals: dict = {}
            for member in (f[0], f[2]):
                for owner, mint, value in member.deltas:
                    if owner == attacker and (
                        mint == quote_mint or mint == token_mint
                    ):
                        totals[mint] = totals.get(mint, 0) + value
            quote.append(totals.get(quote_mint, 0))
            token.append(totals.get(token_mint, 0))
        columns = num_array(quote), num_array(token)
        self._cache["deltas"] = columns
        return columns

    def landed_column(self) -> "_np.ndarray":
        """Candidate ``landed_at`` values (float column)."""
        if "landed" not in self._cache:
            self._cache["landed"] = _np.array(
                [self.block.landed_at[i] for i in self.indexes],
                dtype=_np.float64,
            )
        return self._cache["landed"]

    def needs_exact_math(self) -> bool:
        """Whether any first-leg amount exceeds the int64 fast-path bound."""
        if "exact" not in self._cache:
            self._cache["exact"] = self._scan_exact_math()
        return self._cache["exact"]

    def _scan_exact_math(self) -> bool:
        """Scan every first-leg amount against the fast-path bound."""
        for candidate in range(len(self)):
            for position in range(3):
                leg = self.first_leg(candidate, position)
                if leg is not None and (
                    abs(leg[4]) > EXACT_INT64_LIMIT
                    or abs(leg[5]) > EXACT_INT64_LIMIT
                ):
                    return True
        return False


def split_candidates(
    block: BundleBlock,
    features: dict[str, TxFeatures],
    candidate_indexes: Sequence[int],
    intern: InternPool | None = None,
) -> tuple[CandidateBlock, int, tuple[str, ...]]:
    """Partition candidates into a complete block plus pending bookkeeping.

    Returns ``(candidates, skipped_incomplete, pending_bundle_ids)`` with
    pending ids in block (collection) order, matching the object worker's
    accounting exactly: a candidate with any undetailed member counts
    skipped once and appears once in the pending list. ``intern``
    optionally threads a cross-chunk :class:`InternPool` into the block.
    """
    complete: list[int] = []
    triples: list[tuple] = []
    pending: list[str] = []
    for index in candidate_indexes:
        members = block.transaction_ids(index)
        if all(tx in features for tx in members):
            complete.append(index)
            triples.append(tuple(features[tx] for tx in members))
        else:
            pending.append(block.bundle_ids[index])
    return (
        CandidateBlock(
            block=block, indexes=complete, features=triples, intern=intern
        ),
        len(pending),
        tuple(pending),
    )
