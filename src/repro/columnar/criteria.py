"""Vectorized evaluation of the five paper criteria over candidate blocks.

Each criterion becomes a boolean mask over the whole block; the object
path's short-circuit semantics are recovered by attributing every failing
candidate to its *first* failing criterion (``argmax`` over the stacked
failure masks), so per-criterion rejection tallies match a serial
:class:`~repro.core.detector.SandwichDetector` exactly. Identity checks
(signers, mint sets, the attacked pair) compare interned int64 *code*
columns — equal values share a code by construction, so the masks are
pure primitive-dtype vector ops rather than object-array elementwise
Python calls.

Bit-exactness of criterion 3 (rate comparison) needs care: Python's
``int / int`` is correctly rounded from the exact integers, while numpy
casts int64 operands to float64 *before* dividing. For amounts at or below
:data:`~repro.columnar.blocks.EXACT_INT64_LIMIT` (2**52) the cast is exact
and both pipelines produce the same IEEE-754 quotient; beyond that bound
the block switches to object-dtype columns, whose elementwise operations
invoke Python's own arbitrary-precision arithmetic. Either way the verdict
is bit-identical to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.columnar.blocks import CandidateBlock
from repro.core.criteria import CRITERIA

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via columnar_available
    _np = None

#: Criterion names in the paper's order (the mask stacking order).
CRITERION_NAMES = tuple(name for name, _ in CRITERIA)


@dataclass
class BlockVerdicts:
    """One block's detection verdicts, ready for outcome assembly."""

    examined: int
    detected_indexes: list[int] = field(default_factory=list)
    rejections: dict[str, int] = field(default_factory=dict)


def _as_bool(mask) -> "_np.ndarray":
    """Normalize an elementwise result (possibly object dtype) to bool."""
    return _np.asarray(mask, dtype=bool)


def _guarded_divide(numerator, denominator, valid):
    """Elementwise true division with invalid lanes' denominators masked.

    Preserves dtype semantics: int64 inputs divide in float64 (numpy's
    cast), object inputs divide element-by-element in Python. ``valid``
    lanes are the only ones whose quotients are ever read.
    """
    safe = _np.where(valid, denominator, 1)
    return numerator / safe


def evaluate_block(
    cand: CandidateBlock, skip: frozenset[str] = frozenset()
) -> BlockVerdicts:
    """Apply the five criteria to a complete-candidate block at once.

    ``skip`` names criteria to bypass (the ablation knob) — skipped
    criteria contribute an all-pass mask, exactly like the object path's
    compiled skip set. Candidates passing all criteria but missing a first
    swap leg on any member are counted under ``no_trades`` (reachable only
    when trade-guaranteeing criteria are skipped).
    """
    count = len(cand)
    if count == 0:
        return BlockVerdicts(examined=0)

    exact = cand.needs_exact_math()
    s0, s1, s2 = cand.signer_code_columns()
    mint_codes, mint_nonempty = cand.mint_set_code_columns()
    leg_codes = cand.leg_code_columns()
    p0, _, _, f_in, f_out = cand.leg_columns(0)
    p1, _, _, v_in, v_out = cand.leg_columns(1)
    p2 = cand.leg_columns(2)[0]
    if exact:
        f_in, f_out = f_in.astype(object), f_out.astype(object)
        v_in, v_out = v_in.astype(object), v_out.astype(object)

    ones = _np.ones(count, dtype=bool)
    masks = []

    # 1. same attacker, distinct victim
    if "same_attacker_distinct_victim" in skip:
        masks.append(ones)
    else:
        masks.append((s0 == s2) & (s1 != s0))

    # 2. same non-empty mint set across all three transactions
    if "same_mint_set" in skip:
        masks.append(ones)
    else:
        m0, m1, m2 = mint_codes
        nonempty = mint_nonempty[0] & mint_nonempty[1] & mint_nonempty[2]
        masks.append(nonempty & (m0 == m1) & (m1 == m2))

    # 3. the victim's realized rate exceeds the attacker's
    if "rate_increases_for_victim" in skip:
        masks.append(ones)
    else:
        (f_mint_in, f_mint_out), (v_mint_in, v_mint_out) = (
            leg_codes[0],
            leg_codes[1],
        )
        pair = (
            p0
            & p1
            & (f_mint_in == v_mint_in)
            & (f_mint_out == v_mint_out)
        )
        rates_ok = _as_bool(v_out > 0) & _as_bool(f_out > 0)
        victim_rate = _guarded_divide(v_in, v_out, _as_bool(v_out > 0))
        front_rate = _guarded_divide(f_in, f_out, _as_bool(f_out > 0))
        masks.append(pair & rates_ok & _as_bool(victim_rate > front_rate))

    # 4. the attacker nets currency across the bundle
    if "attacker_net_gain" in skip:
        masks.append(ones)
    else:
        quote_delta, token_delta = cand.attacker_delta_columns(p0)
        gain = _as_bool(quote_delta > 0) | (
            _as_bool(quote_delta == 0) & _as_bool(token_delta > 0)
        )
        masks.append(p0 & gain)

    # 5. the final transaction is not a bare validator tip
    if "not_tip_only_tail" in skip:
        masks.append(ones)
    else:
        masks.append(~cand.tip_only_tail_column())

    stacked = _np.vstack(masks)
    fails = ~stacked
    any_fail = fails.any(axis=0)
    first_fail = fails.argmax(axis=0)
    counts = _np.bincount(
        first_fail[any_fail], minlength=len(CRITERION_NAMES)
    )
    rejections: dict[str, int] = {}
    for position, name in enumerate(CRITERION_NAMES):
        if counts[position]:
            rejections[name] = int(counts[position])

    passed = ~any_fail
    trades_present = p0 & p1 & p2
    no_trades = passed & ~trades_present
    if no_trades.any():
        rejections["no_trades"] = int(no_trades.sum())
    detected = passed & trades_present
    return BlockVerdicts(
        examined=count,
        detected_indexes=[int(i) for i in _np.flatnonzero(detected)],
        rejections=rejections,
    )
