"""The columnar chunk analyzer: a drop-in for the object worker.

:func:`analyze_chunk_columnar` accepts the same
:class:`~repro.parallel.chunks.ChunkTask` and produces the same
:class:`~repro.parallel.worker.ChunkOutcome` as
:func:`repro.parallel.worker.analyze_chunk` — byte-identically, on any
archive — so the parallel tier's deterministic merge, the incremental
analyzer, and the differential oracle apply without modification.
Vectorization therefore *multiplies* with ``--jobs`` sharding: each worker
analyzes its chunks columnar-style, and the reducer cannot tell the
difference.

The analysis is split at the I/O boundary into
:func:`load_chunk_columnar` (every SQLite round-trip, producing a
picklable-free in-memory :class:`ColumnarChunkPayload`) and
:func:`compute_chunk_columnar` (pure in-memory mask evaluation). The
split is what lets the prefetching pipeline in ``repro.parallel`` overlap
the next chunk's loads with the current chunk's compute, and it is also
the stage-profiling seam: load time is measured around the former,
intern/detect/quantify around the latter's phases.

Only the standard length-three detector is supported; the windowed
detector's overlapping-window scan has no columnar formulation yet and
asking for one raises :class:`~repro.errors.ConfigError` up front.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.columnar import require_columnar
from repro.columnar.blocks import (
    BundleBlock,
    InternPool,
    TxFeatures,
    load_bundle_block,
    load_bundle_block_for_ids,
    load_tx_features,
    load_tx_features_range,
    split_candidates,
)
from repro.columnar.criteria import evaluate_block
from repro.columnar.quantify import quantify_block
from repro.core.criteria import view_cache_stats
from repro.core.detector import DetectionStats
from repro.dex.oracle import PriceOracle
from repro.errors import ConfigError
from repro.parallel.chunks import ChunkTask, DetectorSpec
from repro.parallel.worker import ChunkOutcome


def require_columnar_spec(spec: DetectorSpec) -> None:
    """Validate that ``spec`` describes a columnar-capable stack."""
    require_columnar()
    spec.validate()
    if spec.kind != "standard":
        raise ConfigError(
            "the columnar engine supports the standard length-three "
            f"detector only, not kind={spec.kind!r}; use --engine object"
        )


@dataclass
class ColumnarChunkPayload:
    """Everything a chunk needs after its last SQLite round-trip.

    Produced by :func:`load_chunk_columnar` (possibly on a prefetch
    thread holding its own read-only connection) and consumed by
    :func:`compute_chunk_columnar` on the analyzing thread — the payload
    itself never touches the database again.
    """

    block: BundleBlock
    candidate_indexes: list[int]
    features: dict[str, TxFeatures]
    load_seconds: float = 0.0
    cache_deltas: dict = field(default_factory=dict)


def _cache_counters() -> dict:
    """Snapshot the hot-path cache counters the outcome reports."""
    views = view_cache_stats()
    from repro.utils.base58 import b58_cache_stats

    b58 = b58_cache_stats()
    return {
        "view_cache_hits": views["hits"],
        "view_cache_misses": views["misses"],
        "b58_cache_hits": b58["hits"],
        "b58_cache_misses": b58["misses"],
    }


def load_chunk_columnar(
    query: ArchiveQuery, task: ChunkTask
) -> ColumnarChunkPayload:
    """Run every SQLite projection one chunk needs (the *load* stage).

    Range tasks take the coalesced fast path — three constant-SQL
    candidate projections keyed by the chunk's seq bounds, reusing the
    connection's prepared statements across chunks — while explicit
    worklists (the incremental analyzer's pending re-checks) keep the
    id-batched path. Both produce the same features mapping: members
    without archived details are simply absent, surfacing as pending
    downstream exactly as in the object worker.
    """
    task.validate()
    require_columnar_spec(task.spec)
    started = time.perf_counter()
    before = _cache_counters()
    if task.bundle_ids:
        block = load_bundle_block_for_ids(query, task.bundle_ids)
    else:
        block = load_bundle_block(
            query, task.chunk.seq_lo, task.chunk.seq_hi
        )

    candidate_indexes = [
        index
        for index, length in enumerate(block.lengths)
        if length == 3
    ]
    if task.bundle_ids:
        member_ids: list[str] = []
        edge_ids: list[str] = []
        for index in candidate_indexes:
            members = block.transaction_ids(index)
            member_ids.extend(members)
            edge_ids.append(members[0])
            edge_ids.append(members[2])
        features = load_tx_features(query, member_ids, edge_ids)
    else:
        features = load_tx_features_range(
            query, task.chunk.seq_lo, task.chunk.seq_hi
        )
    after = _cache_counters()
    return ColumnarChunkPayload(
        block=block,
        candidate_indexes=candidate_indexes,
        features=features,
        load_seconds=time.perf_counter() - started,
        cache_deltas={
            key: after[key] - before[key] for key in after
        },
    )


def compute_chunk_columnar(
    task: ChunkTask,
    payload: ColumnarChunkPayload,
    intern: InternPool | None = None,
) -> ChunkOutcome:
    """Evaluate a loaded chunk in memory (intern/detect/quantify stages).

    The sequence mirrors the object worker exactly — candidates in
    collection order, detected events stable-sorted by ``landed_at``,
    length-one bundles classified in collection order, pending ids in
    collection order — so the merged report is byte-identical. ``intern``
    optionally shares code tables across chunks (identity-safe: codes
    never reach the report).
    """
    spec = task.spec
    block = payload.block
    before = _cache_counters()

    intern_started = time.perf_counter()
    candidates, skipped, pending = split_candidates(
        block, payload.features, payload.candidate_indexes, intern=intern
    )
    # Column materialization (interning included) belongs to the intern
    # phase; evaluation below touches cached primitive arrays only.
    candidates.prepare()
    intern_seconds = time.perf_counter() - intern_started

    detect_started = time.perf_counter()
    verdicts = evaluate_block(candidates, skip=spec.skip_criteria)
    landed = candidates.landed_column()
    event_order = sorted(
        verdicts.detected_indexes, key=lambda index: landed[index]
    )
    detect_seconds = time.perf_counter() - detect_started

    quantify_started = time.perf_counter()
    oracle = (
        PriceOracle(spec.usd_per_sol)
        if spec.usd_per_sol is not None
        else PriceOracle()
    )
    quantified = quantify_block(
        candidates, event_order, usd_per_sol=oracle.usd_per_sol
    )

    defensive, priority = block.classify_singles(spec.threshold_lamports)
    quantify_seconds = time.perf_counter() - quantify_started

    stats = DetectionStats(
        bundles_examined=verdicts.examined,
        bundles_detected=len(verdicts.detected_indexes),
        bundles_skipped_incomplete=skipped,
        rejections_by_criterion=verdicts.rejections,
    )
    after = _cache_counters()
    deltas = payload.cache_deltas
    return ChunkOutcome(
        index=task.index,
        bundle_count=len(block),
        quantified=tuple(quantified),
        defensive=tuple(defensive),
        priority=tuple(priority),
        stats=stats,
        pending_detail_ids=pending,
        elapsed_seconds=(
            payload.load_seconds
            + intern_seconds
            + detect_seconds
            + quantify_seconds
        ),
        worker=f"pid-{os.getpid()}",
        view_cache_hits=(
            after["view_cache_hits"]
            - before["view_cache_hits"]
            + deltas.get("view_cache_hits", 0)
        ),
        view_cache_misses=(
            after["view_cache_misses"]
            - before["view_cache_misses"]
            + deltas.get("view_cache_misses", 0)
        ),
        b58_cache_hits=(
            after["b58_cache_hits"]
            - before["b58_cache_hits"]
            + deltas.get("b58_cache_hits", 0)
        ),
        b58_cache_misses=(
            after["b58_cache_misses"]
            - before["b58_cache_misses"]
            + deltas.get("b58_cache_misses", 0)
        ),
        stage_seconds=(
            ("load", payload.load_seconds),
            ("intern", intern_seconds),
            ("detect", detect_seconds),
            ("quantify", quantify_seconds),
        ),
    )


def analyze_chunk_columnar(
    database: ArchiveDatabase,
    task: ChunkTask,
    intern: InternPool | None = None,
) -> ChunkOutcome:
    """Analyze one chunk through the columnar path (load then compute)."""
    query = ArchiveQuery(database)
    payload = load_chunk_columnar(query, task)
    return compute_chunk_columnar(task, payload, intern=intern)
