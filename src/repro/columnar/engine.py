"""The columnar chunk analyzer: a drop-in for the object worker.

:func:`analyze_chunk_columnar` accepts the same
:class:`~repro.parallel.chunks.ChunkTask` and produces the same
:class:`~repro.parallel.worker.ChunkOutcome` as
:func:`repro.parallel.worker.analyze_chunk` — byte-identically, on any
archive — so the parallel tier's deterministic merge, the incremental
analyzer, and the differential oracle apply without modification.
Vectorization therefore *multiplies* with ``--jobs`` sharding: each worker
analyzes its chunks columnar-style, and the reducer cannot tell the
difference.

Only the standard length-three detector is supported; the windowed
detector's overlapping-window scan has no columnar formulation yet and
asking for one raises :class:`~repro.errors.ConfigError` up front.
"""

from __future__ import annotations

import os
import time

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.columnar import require_columnar
from repro.columnar.blocks import (
    load_bundle_block,
    load_bundle_block_for_ids,
    load_tx_features,
    split_candidates,
)
from repro.columnar.criteria import evaluate_block
from repro.columnar.quantify import quantify_block
from repro.core.criteria import view_cache_stats
from repro.core.detector import DetectionStats
from repro.dex.oracle import PriceOracle
from repro.errors import ConfigError
from repro.parallel.chunks import ChunkTask, DetectorSpec
from repro.parallel.worker import ChunkOutcome
from repro.utils.base58 import b58_cache_stats


def require_columnar_spec(spec: DetectorSpec) -> None:
    """Validate that ``spec`` describes a columnar-capable stack."""
    require_columnar()
    spec.validate()
    if spec.kind != "standard":
        raise ConfigError(
            "the columnar engine supports the standard length-three "
            f"detector only, not kind={spec.kind!r}; use --engine object"
        )


def analyze_chunk_columnar(
    database: ArchiveDatabase, task: ChunkTask
) -> ChunkOutcome:
    """Analyze one chunk through the columnar path.

    The sequence mirrors the object worker exactly — candidates in
    collection order, detected events stable-sorted by ``landed_at``,
    length-one bundles classified in collection order, pending ids in
    collection order — so the merged report is byte-identical.
    """
    task.validate()
    require_columnar_spec(task.spec)
    started = time.perf_counter()
    views_before = view_cache_stats()
    b58_before = b58_cache_stats()

    query = ArchiveQuery(database)
    if task.bundle_ids:
        block = load_bundle_block_for_ids(query, task.bundle_ids)
    else:
        block = load_bundle_block(
            query, task.chunk.seq_lo, task.chunk.seq_hi
        )
    spec = task.spec

    candidate_indexes = [
        index
        for index, length in enumerate(block.lengths)
        if length == 3
    ]
    member_ids: list[str] = []
    edge_ids: list[str] = []
    for index in candidate_indexes:
        members = block.transaction_ids(index)
        member_ids.extend(members)
        edge_ids.append(members[0])
        edge_ids.append(members[2])
    features = load_tx_features(query, member_ids, edge_ids)
    candidates, skipped, pending = split_candidates(
        block, features, candidate_indexes
    )
    # Column materialization (interning included) belongs to the load
    # phase; evaluation below touches cached primitive arrays only.
    candidates.prepare()

    verdicts = evaluate_block(candidates, skip=spec.skip_criteria)
    landed = candidates.landed_column()
    event_order = sorted(
        verdicts.detected_indexes, key=lambda index: landed[index]
    )
    oracle = (
        PriceOracle(spec.usd_per_sol)
        if spec.usd_per_sol is not None
        else PriceOracle()
    )
    quantified = quantify_block(
        candidates, event_order, usd_per_sol=oracle.usd_per_sol
    )

    defensive = []
    priority = []
    threshold = spec.threshold_lamports
    for index, length in enumerate(block.lengths):
        if length != 1:
            continue
        target = defensive if block.tips[index] <= threshold else priority
        target.append(block.record(index))

    stats = DetectionStats(
        bundles_examined=verdicts.examined,
        bundles_detected=len(verdicts.detected_indexes),
        bundles_skipped_incomplete=skipped,
        rejections_by_criterion=verdicts.rejections,
    )
    views_after = view_cache_stats()
    b58_after = b58_cache_stats()
    return ChunkOutcome(
        index=task.index,
        bundle_count=len(block),
        quantified=tuple(quantified),
        defensive=tuple(defensive),
        priority=tuple(priority),
        stats=stats,
        pending_detail_ids=pending,
        elapsed_seconds=time.perf_counter() - started,
        worker=f"pid-{os.getpid()}",
        view_cache_hits=views_after["hits"] - views_before["hits"],
        view_cache_misses=views_after["misses"] - views_before["misses"],
        b58_cache_hits=b58_after["hits"] - b58_before["hits"],
        b58_cache_misses=b58_after["misses"] - b58_before["misses"],
    )
