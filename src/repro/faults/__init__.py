"""Deterministic fault injection for the collection pipeline.

The paper's measurement campaign survived four months of flaky live
infrastructure: an undocumented, rate-limited Explorer API that went dark
for days at a time, changed its interface mid-campaign, and occasionally
returned partial data. This package makes that failure surface a
first-class, *testable* part of the reproduction:

- :mod:`repro.faults.model` — the fault taxonomy (:class:`FaultKind`), the
  probabilistic :class:`FaultSpec`, scheduled :class:`OutageWindow`\\ s, and
  the :class:`InjectedFault` log record;
- :mod:`repro.faults.plan` — the :class:`FaultPlan` DSL: named presets,
  JSON round-tripping, and seeded random plan sampling;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, which draws every
  injection decision from the campaign's deterministic RNG so any chaos
  run replays exactly from its seed, and emits ``repro.obs`` events and
  metrics (labelled ``injected``) so injected faults are distinguishable
  from organic ones;
- :mod:`repro.faults.client` — :class:`FaultInjectingClient`, a transparent
  :class:`~repro.collector.client.ExplorerClient` wrapper that turns
  injector decisions into raised errors (429/503/timeouts/corrupt bodies)
  or response mutations (truncation, reordering, clock skew).

Wire a plan into a campaign with
``MeasurementCampaign(scenario, fault_plan=plan)`` or run one from the CLI
with ``repro chaos --seed S --plan storm``.
"""

from repro.faults.client import FaultInjectingClient
from repro.faults.injector import FaultDecision, FaultInjector
from repro.faults.model import (
    FaultKind,
    FaultSpec,
    InjectedFault,
    OutageWindow,
)
from repro.faults.plan import (
    PRESET_PLANS,
    FaultPlan,
    load_plan,
    preset_plan,
)

__all__ = [
    "FaultDecision",
    "FaultInjectingClient",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "OutageWindow",
    "PRESET_PLANS",
    "load_plan",
    "preset_plan",
]
