"""The fault injector: seed-reproducible decisions, observable outcomes.

Every injection decision is drawn from a per-call child of the campaign
RNG, keyed by ``(endpoint, call-index)`` — exactly the scheme the poller
uses for retry jitter. That gives two properties the chaos suite depends
on:

- **Replayability** — the same seed and plan produce the same fault
  sequence, call for call, regardless of what other subsystems draw;
- **Resumability** — a checkpoint needs only the per-endpoint call
  counters (plus the accumulated log) to continue a killed chaos run with
  the identical remaining schedule.

Injected faults are never silent: each one lands in the replayable fault
log, increments ``faults_injected_total{kind,endpoint}``, and (when an
event log is attached) emits a WARNING event with ``injected=True`` so
operators can tell injected failures from organic ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    RateLimitedError,
    ServiceUnavailableError,
    TransportError,
)
from repro.faults.model import ERROR_KINDS, FaultKind, FaultSpec, InjectedFault
from repro.faults.plan import FaultPlan
from repro.obs.events import EventLog
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.utils.rng import DeterministicRNG
from repro.utils.simtime import SECONDS_PER_DAY, SimClock


@dataclass(frozen=True)
class FaultDecision:
    """One tripped fault, plus the RNG stream that mutations must use."""

    fault: InjectedFault
    spec: FaultSpec | None
    rng: DeterministicRNG

    @property
    def kind(self) -> FaultKind:
        """The fault kind being injected."""
        return self.fault.kind

    @property
    def raises(self) -> bool:
        """Whether this fault surfaces as a raised error."""
        return self.kind in ERROR_KINDS

    def to_error(self) -> Exception:
        """The typed error an error-kind fault surfaces as."""
        kind = self.kind
        if kind is FaultKind.RATE_LIMIT:
            retry_after = self.spec.retry_after if self.spec else None
            return RateLimitedError(
                "injected 429 (fault injection)", retry_after=retry_after
            )
        if kind in (FaultKind.UNAVAILABLE, FaultKind.OUTAGE):
            return ServiceUnavailableError(
                f"injected 503 ({self.fault.detail or 'fault injection'})"
            )
        if kind is FaultKind.TIMEOUT:
            return TransportError("injected timeout (fault injection)")
        if kind is FaultKind.CORRUPT_BODY:
            return TransportError(
                "non-JSON response body: injected corruption"
            )
        raise TypeError(f"{kind} is not an error-kind fault")  # pragma: no cover


class FaultInjector:
    """Turns a :class:`FaultPlan` into a deterministic decision stream."""

    def __init__(
        self,
        plan: FaultPlan,
        rng: DeterministicRNG,
        clock: SimClock,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.plan = plan
        self._rng = rng
        self._clock = clock
        self._events = events
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._injected_metric = self.metrics.counter(
            "faults_injected_total",
            "Faults injected by the chaos harness, by kind and endpoint.",
        )
        self._intercepted_metric = self.metrics.counter(
            "faults_intercepted_requests_total",
            "Requests evaluated by the fault injector (injected or not).",
        )
        self._calls: dict[str, int] = {}
        self.log: list[InjectedFault] = []

    # --- the decision procedure -------------------------------------------------

    def _record(
        self, endpoint: str, kind: FaultKind, detail: str, **fields
    ) -> InjectedFault:
        fault = InjectedFault(
            seq=len(self.log),
            time=self._clock.now(),
            endpoint=endpoint,
            kind=kind,
            detail=detail,
            fields=fields,
        )
        self.log.append(fault)
        self._injected_metric.inc(kind=kind.value, endpoint=endpoint)
        if self._events is not None:
            self._events.warning(
                "faults",
                f"injected {kind.value} on {endpoint}",
                injected=True,
                kind=kind.value,
                endpoint=endpoint,
                seq=fault.seq,
                **fields,
            )
        return fault

    def intercept(self, endpoint: str) -> FaultDecision | None:
        """Decide the fate of one request against ``endpoint``.

        Returns None when the request should proceed untouched. Scheduled
        outage windows are checked first (they are deterministic in time);
        then each probabilistic spec rolls its dice in plan order, first
        trip wins. Either way the per-endpoint call counter advances and
        the per-call RNG child is consumed identically, so the decision
        stream for one endpoint never depends on traffic to another.
        """
        self._intercepted_metric.inc(endpoint=endpoint)
        count = self._calls.get(endpoint, 0)
        self._calls[endpoint] = count + 1
        call_rng = self._rng.child(f"{endpoint}:{count}")
        day_fraction = self._clock.elapsed() / SECONDS_PER_DAY

        for window in self.plan.outages:
            if window.contains(day_fraction):
                fault = self._record(
                    endpoint,
                    FaultKind.OUTAGE,
                    window.reason,
                    startDay=window.start_day,
                    endDay=window.end_day,
                )
                return FaultDecision(fault=fault, spec=None, rng=call_rng)

        for spec in self.plan.specs:
            if not spec.applies_to(endpoint, day_fraction):
                continue
            if not call_rng.bernoulli(spec.probability):
                continue
            fields: dict = {}
            if spec.kind is FaultKind.RATE_LIMIT and spec.retry_after:
                fields["retryAfter"] = spec.retry_after
            if spec.kind is FaultKind.CLOCK_SKEW:
                fields["skewSeconds"] = spec.skew_seconds
            if spec.kind is FaultKind.TRUNCATE:
                fields["dropFraction"] = spec.drop_fraction
            fault = self._record(
                endpoint, spec.kind, "fault injection", **fields
            )
            return FaultDecision(fault=fault, spec=spec, rng=call_rng)
        return None

    # --- bookkeeping -------------------------------------------------------------

    @property
    def requests_seen(self) -> int:
        """Total requests evaluated across all endpoints."""
        return sum(self._calls.values())

    def counts_by_kind(self) -> dict[str, int]:
        """Injected fault tallies, keyed by kind value (sorted)."""
        counts: dict[str, int] = {}
        for fault in self.log:
            counts[fault.kind.value] = counts.get(fault.kind.value, 0) + 1
        return dict(sorted(counts.items()))

    def fault_log_json(self) -> list[dict]:
        """The full fault log in wire form (one dict per injection)."""
        return [fault.to_json() for fault in self.log]

    # --- checkpoint support ------------------------------------------------------

    def state(self) -> dict:
        """JSON-safe snapshot: call counters plus the accumulated log.

        The counters restore the RNG schedule; the log restores the
        integrity accounting, so a resumed chaos run's final report is
        byte-identical to an uninterrupted one.
        """
        return {
            "calls": dict(sorted(self._calls.items())),
            "log": self.fault_log_json(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        self._calls = {
            str(endpoint): int(count)
            for endpoint, count in state["calls"].items()
        }
        self.log = [
            InjectedFault.from_json(record) for record in state["log"]
        ]
