"""The ``FaultPlan`` DSL: scripted failure scenarios for chaos runs.

A plan is data, not code: a named set of probabilistic
:class:`~repro.faults.model.FaultSpec` sources plus scheduled
:class:`~repro.faults.model.OutageWindow`\\ s. Plans round-trip through
JSON (``repro chaos --plan my-plan.json``), ship as named presets
(``--plan storm``), and can be sampled from a seed so property tests can
explore the schedule space deterministically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.faults.model import (
    KNOWN_ENDPOINTS,
    FaultKind,
    FaultSpec,
    OutageWindow,
)
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable failure scenario."""

    name: str
    specs: tuple[FaultSpec, ...] = ()
    outages: tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a fault plan needs a name")
        object.__setattr__(self, "specs", tuple(self.specs))
        object.__setattr__(self, "outages", tuple(self.outages))

    @property
    def is_empty(self) -> bool:
        """Whether this plan injects nothing (the fault-free baseline)."""
        return not self.specs and not self.outages

    def to_json(self) -> dict:
        """JSON-safe wire form of the whole plan."""
        return {
            "name": self.name,
            "specs": [spec.to_json() for spec in self.specs],
            "outages": [window.to_json() for window in self.outages],
        }

    @classmethod
    def from_json(cls, record: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output.

        Raises:
            ConfigError: on a structurally invalid plan document.
        """
        try:
            return cls(
                name=str(record["name"]),
                specs=tuple(
                    FaultSpec.from_json(item)
                    for item in record.get("specs", [])
                ),
                outages=tuple(
                    OutageWindow.from_json(item)
                    for item in record.get("outages", [])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed fault plan: {exc}") from exc

    def dumps(self) -> str:
        """Canonical JSON text (stable key order, for files and hashing)."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ConfigError("fault plan JSON must be an object")
        return cls.from_json(record)

    def fingerprint(self) -> str:
        """Stable short hash of the canonical plan content.

        Checkpoints store it so a resumed chaos campaign refuses to continue
        under a different fault schedule than the killed run's.
        """
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()[:16]

    @classmethod
    def sample(
        cls,
        rng: DeterministicRNG,
        total_days: float,
        max_specs: int = 4,
        max_outages: int = 2,
        max_probability: float = 0.4,
    ) -> "FaultPlan":
        """Draw a random-but-reproducible plan from a seeded RNG.

        Used by the chaos invariant suite to explore the schedule space:
        the same RNG stream always yields the same plan.
        """
        rng = rng.child("fault-plan")
        specs: list[FaultSpec] = []
        kinds = list(FaultKind)
        kinds.remove(FaultKind.OUTAGE)  # outages are windows, not dice rolls
        for index in range(rng.randint(0, max_specs)):
            kind = rng.choice(kinds)
            endpoints: tuple[str, ...] = ()
            if rng.bernoulli(0.4):
                endpoints = (rng.choice(list(KNOWN_ENDPOINTS[:2])),)
            start = rng.uniform(0.0, max(total_days - 0.5, 0.1))
            specs.append(
                FaultSpec(
                    kind=kind,
                    probability=rng.uniform(0.05, max_probability),
                    endpoints=endpoints,
                    start_day=start if rng.bernoulli(0.5) else 0.0,
                    end_day=float("inf"),
                    retry_after=(
                        rng.uniform(1.0, 240.0)
                        if kind is FaultKind.RATE_LIMIT
                        else None
                    ),
                    skew_seconds=(
                        rng.uniform(-30.0, 30.0)
                        if kind is FaultKind.CLOCK_SKEW
                        else 0.0
                    ),
                    drop_fraction=(
                        rng.uniform(0.1, 1.0)
                        if kind is FaultKind.TRUNCATE
                        else 0.5
                    ),
                )
            )
        outages: list[OutageWindow] = []
        for _ in range(rng.randint(0, max_outages)):
            start = rng.uniform(0.0, max(total_days - 0.25, 0.05))
            length = rng.uniform(0.05, max(total_days / 3.0, 0.1))
            outages.append(
                OutageWindow(
                    start_day=start,
                    end_day=min(start + length, total_days + 1.0),
                    reason="sampled outage",
                )
            )
        return cls(name="sampled", specs=tuple(specs), outages=tuple(outages))


def _calm() -> FaultPlan:
    return FaultPlan(name="calm")


def _flaky() -> FaultPlan:
    return FaultPlan(
        name="flaky",
        specs=(
            FaultSpec(FaultKind.RATE_LIMIT, 0.08, retry_after=120.0),
            FaultSpec(FaultKind.UNAVAILABLE, 0.05),
            FaultSpec(FaultKind.TIMEOUT, 0.04),
        ),
    )


def _storm() -> FaultPlan:
    return FaultPlan(
        name="storm",
        specs=(
            FaultSpec(FaultKind.RATE_LIMIT, 0.25, retry_after=60.0),
            FaultSpec(FaultKind.UNAVAILABLE, 0.15),
            FaultSpec(FaultKind.TIMEOUT, 0.10),
            FaultSpec(FaultKind.CORRUPT_BODY, 0.10),
            FaultSpec(FaultKind.TRUNCATE, 0.10, drop_fraction=0.5),
        ),
    )


def _outage() -> FaultPlan:
    return FaultPlan(
        name="outage",
        outages=(
            OutageWindow(0.4, 0.9, reason="interface change"),
            OutageWindow(1.3, 1.6, reason="transient network error"),
        ),
    )


def _corrupt() -> FaultPlan:
    return FaultPlan(
        name="corrupt",
        specs=(
            FaultSpec(FaultKind.CORRUPT_BODY, 0.2),
            FaultSpec(FaultKind.TRUNCATE, 0.25, drop_fraction=0.7),
        ),
    )


def _skew() -> FaultPlan:
    return FaultPlan(
        name="skew",
        specs=(
            FaultSpec(FaultKind.CLOCK_SKEW, 0.3, skew_seconds=17.0),
            FaultSpec(FaultKind.REORDER, 0.3),
        ),
    )


#: Named presets available to ``repro chaos --plan <name>`` and tests.
PRESET_PLANS: dict[str, "FaultPlan"] = {
    plan.name: plan
    for plan in (_calm(), _flaky(), _storm(), _outage(), _corrupt(), _skew())
}


def preset_plan(name: str) -> FaultPlan:
    """Look up a preset plan by name.

    Raises:
        ConfigError: for unknown names (message lists the valid ones).
    """
    plan = PRESET_PLANS.get(name)
    if plan is None:
        raise ConfigError(
            f"unknown fault plan {name!r}; "
            f"presets: {', '.join(sorted(PRESET_PLANS))}"
        )
    return plan


def load_plan(source: str | Path) -> FaultPlan:
    """Resolve a plan from a preset name or a JSON file path."""
    text = str(source)
    if text in PRESET_PLANS:
        return PRESET_PLANS[text]
    path = Path(source)
    if path.is_file():
        return FaultPlan.loads(path.read_text(encoding="utf-8"))
    raise ConfigError(
        f"{text!r} is neither a preset plan "
        f"({', '.join(sorted(PRESET_PLANS))}) nor a readable plan file"
    )
