"""The fault taxonomy: what can go wrong, and the record of it going wrong.

Each fault kind mirrors a failure the paper's scraper actually faced
against the live Jito Explorer (Section 3.1): rate limiting, instability
windows, timeouts, partial or mangled responses, and interface drift that
reordered or re-timestamped listings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Endpoints the collection pipeline exercises; () on a spec means "all".
KNOWN_ENDPOINTS = ("recent_bundles", "transactions", "bundle", "health")


class FaultKind(enum.Enum):
    """Every failure mode the injector can produce."""

    #: HTTP 429 with a Retry-After hint (:class:`~repro.errors.RateLimitedError`).
    RATE_LIMIT = "rate_limit"
    #: HTTP 503 (:class:`~repro.errors.ServiceUnavailableError`).
    UNAVAILABLE = "unavailable"
    #: Request deadline elapses with no response (a transport timeout).
    TIMEOUT = "timeout"
    #: Response body cut off mid-JSON; surfaces as a transport error, the
    #: same way :class:`~repro.collector.http_client.HttpExplorerClient`
    #: maps an unparseable body.
    CORRUPT_BODY = "corrupt_body"
    #: Listing silently missing its tail (a short page): the request
    #: *succeeds* but records are dropped — the fault the paper's overlap
    #: check exists to catch.
    TRUNCATE = "truncate"
    #: Records returned out of order (interface drift).
    REORDER = "reorder"
    #: Server-side timestamps skewed by a fixed offset.
    CLOCK_SKEW = "clock_skew"
    #: A scheduled hard outage window (every request fails with 503).
    OUTAGE = "outage"


#: Kinds that surface as a raised error; the rest mutate the response.
ERROR_KINDS = frozenset(
    {
        FaultKind.RATE_LIMIT,
        FaultKind.UNAVAILABLE,
        FaultKind.TIMEOUT,
        FaultKind.CORRUPT_BODY,
        FaultKind.OUTAGE,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One probabilistic fault source in a :class:`~repro.faults.plan.FaultPlan`.

    While active (between ``start_day`` and ``end_day``, on matching
    endpoints) each intercepted request independently trips this fault with
    ``probability``, decided by the campaign RNG.
    """

    kind: FaultKind
    probability: float
    endpoints: tuple[str, ...] = ()
    start_day: float = 0.0
    end_day: float = float("inf")
    #: RATE_LIMIT: the Retry-After hint attached to the 429, in seconds.
    retry_after: float | None = None
    #: CLOCK_SKEW: seconds added to server-side timestamps.
    skew_seconds: float = 0.0
    #: TRUNCATE: fraction of the response tail silently dropped.
    drop_fraction: float = 0.5

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):  # tolerate wire-form construction
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.end_day <= self.start_day:
            raise ConfigError(
                f"fault window must have positive length: "
                f"[{self.start_day}, {self.end_day})"
            )
        for endpoint in self.endpoints:
            if endpoint not in KNOWN_ENDPOINTS:
                raise ConfigError(
                    f"unknown endpoint {endpoint!r}; "
                    f"expected one of {KNOWN_ENDPOINTS}"
                )
        if self.retry_after is not None and self.retry_after < 0:
            raise ConfigError("retry_after must be >= 0")
        if not 0.0 < self.drop_fraction <= 1.0:
            raise ConfigError(
                f"drop_fraction must be in (0, 1], got {self.drop_fraction}"
            )

    def applies_to(self, endpoint: str, day_fraction: float) -> bool:
        """Whether this spec is live for a request on ``endpoint`` now."""
        if self.endpoints and endpoint not in self.endpoints:
            return False
        return self.start_day <= day_fraction < self.end_day

    def to_json(self) -> dict:
        """JSON-safe wire form (used by plan files and checkpoints)."""
        record: dict = {
            "kind": self.kind.value,
            "probability": self.probability,
        }
        if self.endpoints:
            record["endpoints"] = list(self.endpoints)
        if self.start_day != 0.0:
            record["startDay"] = self.start_day
        if self.end_day != float("inf"):
            record["endDay"] = self.end_day
        if self.retry_after is not None:
            record["retryAfter"] = self.retry_after
        if self.skew_seconds:
            record["skewSeconds"] = self.skew_seconds
        if self.drop_fraction != 0.5:
            record["dropFraction"] = self.drop_fraction
        return record

    @classmethod
    def from_json(cls, record: dict) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls(
            kind=FaultKind(record["kind"]),
            probability=float(record["probability"]),
            endpoints=tuple(record.get("endpoints", ())),
            start_day=float(record.get("startDay", 0.0)),
            end_day=float(record.get("endDay", float("inf"))),
            retry_after=(
                float(record["retryAfter"])
                if record.get("retryAfter") is not None
                else None
            ),
            skew_seconds=float(record.get("skewSeconds", 0.0)),
            drop_fraction=float(record.get("dropFraction", 0.5)),
        )


@dataclass(frozen=True)
class OutageWindow:
    """A scheduled hard outage: every request in [start_day, end_day) fails.

    Unlike the probabilistic specs, outages are deterministic in time — they
    model the paper's multi-day collection gaps (Figures 1 and 2) where the
    endpoint was simply unreachable.
    """

    start_day: float
    end_day: float
    reason: str = "scheduled outage"

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise ConfigError(
                f"outage window must have positive length: "
                f"[{self.start_day}, {self.end_day})"
            )

    def contains(self, day_fraction: float) -> bool:
        """Whether a fractional day offset falls inside the outage."""
        return self.start_day <= day_fraction < self.end_day

    def to_json(self) -> dict:
        """JSON-safe wire form."""
        return {
            "startDay": self.start_day,
            "endDay": self.end_day,
            "reason": self.reason,
        }

    @classmethod
    def from_json(cls, record: dict) -> "OutageWindow":
        """Rebuild a window from :meth:`to_json` output."""
        return cls(
            start_day=float(record["startDay"]),
            end_day=float(record["endDay"]),
            reason=str(record.get("reason", "scheduled outage")),
        )


@dataclass(frozen=True)
class InjectedFault:
    """One injected fault, as recorded in the replayable fault log."""

    seq: int
    time: float
    endpoint: str
    kind: FaultKind
    detail: str = ""
    fields: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-safe wire form (one line of ``fault_log.jsonl``)."""
        record = {
            "seq": self.seq,
            "time": self.time,
            "endpoint": self.endpoint,
            "kind": self.kind.value,
        }
        if self.detail:
            record["detail"] = self.detail
        if self.fields:
            record["fields"] = self.fields
        return record

    @classmethod
    def from_json(cls, record: dict) -> "InjectedFault":
        """Rebuild a log record from :meth:`to_json` output."""
        return cls(
            seq=int(record["seq"]),
            time=float(record["time"]),
            endpoint=str(record["endpoint"]),
            kind=FaultKind(record["kind"]),
            detail=str(record.get("detail", "")),
            fields=dict(record.get("fields", {})),
        )
