"""A fault-injecting wrapper around any :class:`ExplorerClient` transport.

Sits exactly where the network sat in the paper's campaign: between the
collection pipeline and the explorer. Error-kind faults raise the same
typed errors the real transports raise, so the poller and detail fetcher
cannot tell an injected 429 from an organic one; mutation-kind faults
tamper with the response the way a drifting interface would (short pages,
reordered listings, skewed server timestamps).
"""

from __future__ import annotations

import dataclasses

from repro.explorer.models import BundleRecord, TransactionRecord
from repro.faults.injector import FaultDecision, FaultInjector
from repro.faults.model import FaultKind


class FaultInjectingClient:
    """Wraps an inner client; consults the injector on every request."""

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self.injector = injector

    # --- mutations --------------------------------------------------------------

    @staticmethod
    def _mutate_bundles(
        records: list[BundleRecord], decision: FaultDecision
    ) -> list[BundleRecord]:
        kind = decision.kind
        if kind is FaultKind.TRUNCATE and decision.spec is not None:
            keep = len(records) - int(
                len(records) * decision.spec.drop_fraction
            )
            return records[:keep]
        if kind is FaultKind.REORDER:
            shuffled = list(records)
            decision.rng.shuffle(shuffled)
            return shuffled
        if kind is FaultKind.CLOCK_SKEW and decision.spec is not None:
            skew = decision.spec.skew_seconds
            return [
                dataclasses.replace(record, landed_at=record.landed_at + skew)
                for record in records
            ]
        return records

    @staticmethod
    def _mutate_transactions(
        records: list[TransactionRecord], decision: FaultDecision
    ) -> list[TransactionRecord]:
        kind = decision.kind
        if kind is FaultKind.TRUNCATE and decision.spec is not None:
            keep = len(records) - int(
                len(records) * decision.spec.drop_fraction
            )
            return records[:keep]
        if kind is FaultKind.REORDER:
            shuffled = list(records)
            decision.rng.shuffle(shuffled)
            return shuffled
        if kind is FaultKind.CLOCK_SKEW and decision.spec is not None:
            skew = decision.spec.skew_seconds
            return [
                dataclasses.replace(
                    record, block_time=record.block_time + skew
                )
                for record in records
            ]
        return records

    # --- ExplorerClient interface -----------------------------------------------

    def recent_bundles(self, limit: int | None = None) -> list[BundleRecord]:
        """Fetch recent bundles, subject to the fault schedule."""
        decision = self.injector.intercept("recent_bundles")
        if decision is not None and decision.raises:
            raise decision.to_error()
        records = self._inner.recent_bundles(limit)
        if decision is not None:
            records = self._mutate_bundles(records, decision)
        return records

    def transactions(
        self, transaction_ids: list[str]
    ) -> list[TransactionRecord]:
        """Fetch transaction details, subject to the fault schedule."""
        decision = self.injector.intercept("transactions")
        if decision is not None and decision.raises:
            raise decision.to_error()
        records = self._inner.transactions(transaction_ids)
        if decision is not None:
            records = self._mutate_transactions(records, decision)
        return records

    def bundle(self, bundle_id: str) -> BundleRecord | None:
        """Fetch one bundle detail page, subject to the fault schedule."""
        decision = self.injector.intercept("bundle")
        if decision is not None and decision.raises:
            raise decision.to_error()
        record = self._inner.bundle(bundle_id)
        if record is not None and decision is not None:
            mutated = self._mutate_bundles([record], decision)
            record = mutated[0] if mutated else None
        return record

    def health(self) -> bool:
        """Probe the inner transport's health, subject to the schedule."""
        decision = self.injector.intercept("health")
        if decision is not None and decision.raises:
            return False
        return self._inner.health() if hasattr(self._inner, "health") else True
