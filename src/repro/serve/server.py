"""The asyncio HTTP front end for the archive API.

A thin framing shell around :class:`repro.serve.app.ArchiveApiApp`:
request parsing and response writing come from
:mod:`repro.serve.httpcommon` (shared with the explorer server, so HEAD
and framing behavior cannot drift between the two), and every decision —
routing, caching, limiting — lives in the app.

The listen backlog is raised well above the asyncio default: the load
harness opens 1000+ connections in one burst, and a short backlog would
drop SYNs before the loop ever saw them.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.app import ApiConfig, ArchiveApiApp
from repro.serve.httpcommon import read_request, write_response

#: Listen backlog; sized for the bench harness's connection bursts.
LISTEN_BACKLOG = 2_048


class ApiHttpServer:
    """Async HTTP server bound to an :class:`ArchiveApiApp`."""

    def __init__(self, app: ArchiveApiApp) -> None:
        self._app = app
        self._host = app.config.host
        self._port = app.config.port
        self._server: asyncio.AbstractServer | None = None

    @property
    def app(self) -> ArchiveApiApp:
        """The dispatch core this server fronts."""
        return self._app

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when requested as 0)."""
        return self._port

    async def start(self) -> None:
        """Open the archive on this loop's thread, then bind and serve."""
        self._app.open()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            backlog=LISTEN_BACKLOG,
        )
        sockets = self._server.sockets or []
        if sockets:
            self._port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop serving and release the archive connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._app.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        head_only = False
        try:
            request = await read_request(reader)
            if request is None:
                return
            method, target, headers, _body = request
            head_only = method == "HEAD"
            peer = writer.get_extra_info("peername") or ("unknown",)
            client_id = headers.get("x-client-id", str(peer[0]))
            status, payload, extra = self._app.handle(
                method, target, headers, client_id
            )
        except Exception as exc:  # noqa: BLE001 - server must not crash
            status, payload, extra = 500, {"error": f"internal error: {exc}"}, {}
        try:
            await write_response(
                writer, status, payload, extra, head_only=head_only
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class ThreadedApiServer:
    """Runs an :class:`ApiHttpServer` on a daemon thread.

    The archive is opened *inside* the loop thread (SQLite connections are
    thread-bound), so construction is cheap and any open error surfaces
    from :meth:`start`. Use as a context manager::

        with ThreadedApiServer(ArchiveApiApp(config)) as server:
            url = f"http://127.0.0.1:{server.port}/v1/status"
    """

    def __init__(self, app: ArchiveApiApp) -> None:
        self._inner = ApiHttpServer(app)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None

    @property
    def app(self) -> ArchiveApiApp:
        """The dispatch core this server fronts."""
        return self._inner.app

    @property
    def port(self) -> int:
        """The bound port once the server has started."""
        return self._inner.port

    def start(self) -> None:
        """Start the event loop thread and wait for the socket to bind."""
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._inner.start())
            except BaseException as exc:  # noqa: BLE001 - reraised in start()
                self._start_error = exc
                self._started.set()
                return
            self._started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="archive-api-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("archive API server failed to start")
        if self._start_error is not None:
            error = self._start_error
            self._start_error = None
            raise error

    def stop(self) -> None:
        """Stop the server and join the thread."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive() and self._loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self._inner.stop(), self._loop
            )
            future.result(timeout=10)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ThreadedApiServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
