"""``repro.serve`` — the public query/serving tier over a campaign archive.

Where :mod:`repro.explorer` simulates the *data source* the paper scraped
(a Jito-Explorer-shaped feed of landed bundles), this package serves the
*results*: detections, financial aggregates, collection-integrity status,
and the paper-figure aggregations, read straight from a WAL-mode SQLite
campaign archive and exposed to many concurrent HTTP clients.

The tier is layered the way production read APIs are:

- :mod:`repro.serve.models` — dataclass response models with canonical
  (:func:`repro.conformance.canon.fmt_fixed`) money rendering;
- :mod:`repro.serve.repositories` — typed repositories wrapping
  :class:`repro.archive.query.ArchiveQuery` with pagination and filtering;
- :mod:`repro.serve.routes` — the versioned ``/v1/`` route table;
- :mod:`repro.serve.cache` — a watermark-keyed response cache with strong
  ETags (invalidated the moment the archive watermark advances, so
  incremental re-analysis is immediately visible);
- :mod:`repro.serve.limits` — per-client token buckets reusing
  :class:`repro.utils.ratelimit.TokenBucket`;
- :mod:`repro.serve.app` / :mod:`repro.serve.server` — the dispatch core
  and the asyncio HTTP front end (``repro api``).
"""

from repro.serve.app import ApiConfig, ArchiveApiApp
from repro.serve.cache import CacheEntry, ResponseCache
from repro.serve.limits import ClientRateLimiter
from repro.serve.repositories import PageParams
from repro.serve.server import ApiHttpServer, ThreadedApiServer

__all__ = [
    "ApiConfig",
    "ApiHttpServer",
    "ArchiveApiApp",
    "CacheEntry",
    "ClientRateLimiter",
    "PageParams",
    "ResponseCache",
    "ThreadedApiServer",
]
