"""Typed repositories: the API's only path to the archive.

Each repository wraps :class:`repro.archive.query.ArchiveQuery` with the
pagination, filtering, and shaping one family of endpoints needs. Routes
never touch SQL or raw rows; repositories never touch HTTP. Query-string
validation is strict — an unknown parameter or a malformed value raises
:class:`ValueError`, which the app maps to a 400 so typos fail loudly
instead of silently returning the unfiltered collection.

The financial summary deliberately reuses the incremental analyzer's
archive-row path (``sandwiches(order_by="landed_at")`` + the defensive
join + :func:`~repro.core.aggregate.headline_stats`): the conformance
oracle already pins that path byte-identical to a serial batch analysis,
so the API inherits the same guarantee for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archive.query import ArchiveQuery, BundleFilter, SandwichFilter
from repro.core.aggregate import headline_stats
from repro.constants import DEFENSIVE_TIP_THRESHOLD_LAMPORTS
from repro.core.defensive import DefensiveReport
from repro.dex.oracle import PriceOracle
from repro.serve.models import (
    FinancialSummary,
    PageMeta,
    StatusModel,
    bundle_to_json,
    detection_to_json,
    page_payload,
)

#: Default page size when the client sends no ``limit``.
DEFAULT_PAGE_LIMIT = 100
#: Hard ceiling on ``limit`` — large scans belong in batch analysis.
MAX_PAGE_LIMIT = 1_000


def _int_param(params: dict[str, str], key: str) -> int | None:
    raw = params.get(key)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{key} must be an integer, got {raw!r}") from exc


def _reject_unknown(params: dict[str, str], known: frozenset[str]) -> None:
    unknown = sorted(set(params) - set(known))
    if unknown:
        raise ValueError(
            f"unknown query parameter(s): {', '.join(unknown)}; "
            f"supported: {', '.join(sorted(known))}"
        )


@dataclass(frozen=True)
class PageParams:
    """Validated pagination window."""

    limit: int = DEFAULT_PAGE_LIMIT
    offset: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.limit <= MAX_PAGE_LIMIT:
            raise ValueError(
                f"limit must be in [1, {MAX_PAGE_LIMIT}], got {self.limit}"
            )
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")

    @classmethod
    def from_params(cls, params: dict[str, str]) -> "PageParams":
        """Build from query parameters, applying defaults."""
        limit = _int_param(params, "limit")
        offset = _int_param(params, "offset")
        return cls(
            limit=DEFAULT_PAGE_LIMIT if limit is None else limit,
            offset=0 if offset is None else offset,
        )


PAGE_PARAM_KEYS = frozenset({"limit", "offset", "order_by", "descending"})


def _order_params(
    params: dict[str, str], allowed: frozenset[str]
) -> tuple[str, bool]:
    order_by = params.get("order_by", "seq")
    if order_by not in allowed:
        raise ValueError(
            f"cannot order by {order_by!r}; "
            f"supported: {', '.join(sorted(allowed))}"
        )
    raw = params.get("descending", "false").lower()
    if raw not in {"true", "false", "1", "0"}:
        raise ValueError(f"descending must be true/false, got {raw!r}")
    return order_by, raw in {"true", "1"}


class BundleRepository:
    """Paginated, filtered access to archived bundles."""

    PARAM_KEYS = PAGE_PARAM_KEYS | frozenset(
        {"slot_min", "slot_max", "length", "tip_min", "tip_max",
         "date_from", "date_to"}
    )
    ORDER_COLUMNS = frozenset(
        {"seq", "slot", "landed_at", "tip_lamports", "num_transactions"}
    )

    def __init__(self, query: ArchiveQuery) -> None:
        self._query = query

    def page(self, params: dict[str, str]) -> dict:
        """One page of bundles matching the query-string filters."""
        _reject_unknown(params, self.PARAM_KEYS)
        page = PageParams.from_params(params)
        order_by, descending = _order_params(params, self.ORDER_COLUMNS)
        where = BundleFilter(
            slot_min=_int_param(params, "slot_min"),
            slot_max=_int_param(params, "slot_max"),
            length=_int_param(params, "length"),
            tip_min=_int_param(params, "tip_min"),
            tip_max=_int_param(params, "tip_max"),
            date_from=params.get("date_from"),
            date_to=params.get("date_to"),
        )
        records = self._query.bundles(
            where=where,
            order_by=order_by,
            descending=descending,
            limit=page.limit,
            offset=page.offset,
        )
        total = self._query.count_bundles(where)
        return page_payload(
            [bundle_to_json(record) for record in records],
            PageMeta(
                limit=page.limit,
                offset=page.offset,
                returned=len(records),
                total=total,
            ),
        )

    def detail(self, bundle_id: str) -> dict | None:
        """One bundle by id, or None for a 404."""
        record = self._query.bundle(bundle_id)
        return None if record is None else {"bundle": bundle_to_json(record)}


class DetectionRepository:
    """Paginated, filtered access to archived sandwich detections."""

    PARAM_KEYS = PAGE_PARAM_KEYS | frozenset(
        {"attacker", "victim", "slot_min", "slot_max",
         "date_from", "date_to", "priced_only"}
    )
    ORDER_COLUMNS = frozenset(
        {"seq", "slot", "landed_at", "tip_lamports", "victim_loss_usd"}
    )

    def __init__(self, query: ArchiveQuery) -> None:
        self._query = query

    def page(self, params: dict[str, str]) -> dict:
        """One page of detections matching the query-string filters."""
        _reject_unknown(params, self.PARAM_KEYS)
        page = PageParams.from_params(params)
        order_by, descending = _order_params(params, self.ORDER_COLUMNS)
        raw_priced = params.get("priced_only", "false").lower()
        if raw_priced not in {"true", "false", "1", "0"}:
            raise ValueError(
                f"priced_only must be true/false, got {raw_priced!r}"
            )
        where = SandwichFilter(
            attacker=params.get("attacker"),
            victim=params.get("victim"),
            slot_min=_int_param(params, "slot_min"),
            slot_max=_int_param(params, "slot_max"),
            date_from=params.get("date_from"),
            date_to=params.get("date_to"),
            priced_only=raw_priced in {"true", "1"},
        )
        items = self._query.sandwiches(
            where=where,
            order_by=order_by,
            descending=descending,
            limit=page.limit,
            offset=page.offset,
        )
        total = self._query.count_sandwiches(where)
        return page_payload(
            [detection_to_json(item) for item in items],
            PageMeta(
                limit=page.limit,
                offset=page.offset,
                returned=len(items),
                total=total,
            ),
        )

    def detail(self, bundle_id: str) -> dict | None:
        """The detection for one attacked bundle, or None for a 404."""
        item = self._query.sandwich_for_bundle(bundle_id)
        return None if item is None else {"detection": detection_to_json(item)}


class AggregateRepository:
    """The paper-figure aggregations and the financial summary."""

    TIPS_PARAM_KEYS = frozenset({"bucket_lamports", "length"})
    ATTACKERS_PARAM_KEYS = frozenset({"limit"})

    def __init__(
        self,
        query: ArchiveQuery,
        oracle: PriceOracle | None = None,
        threshold_lamports: int = DEFENSIVE_TIP_THRESHOLD_LAMPORTS,
    ) -> None:
        self._query = query
        self._oracle = oracle or PriceOracle()
        self._threshold = threshold_lamports

    def _defensive_report(self) -> DefensiveReport:
        report = DefensiveReport(threshold_lamports=self._threshold)
        for classification, bundle in self._query.defensive_records():
            bucket = (
                report.defensive
                if classification == "defensive"
                else report.priority
            )
            bucket.append(bundle)
        return report

    def financials(self) -> dict:
        """Campaign headline figures, canonically rendered.

        Mirrors :meth:`IncrementalAnalyzer._build_report`: detections in
        ``landed_at`` order, the defensive join in ``seq`` order — the
        exact summation order the batch report uses.
        """
        quantified = self._query.sandwiches(order_by="landed_at")
        headline = headline_stats(
            quantified,
            self._defensive_report(),
            bundles_collected=self._query.count_bundles(),
            oracle=self._oracle,
        )
        return {"financials": FinancialSummary.from_headline(headline).to_json()}

    def daily(self) -> dict:
        """Per-day attack counts and USD sums (the Figure 2 series)."""
        return {"daily": self._query.sandwiches_per_day()}

    def lengths(self) -> dict:
        """Bundle count by length (the Figure 1 marginal)."""
        histogram = self._query.length_histogram()
        return {"lengths": {str(k): v for k, v in histogram.items()}}

    def tips(self, params: dict[str, str]) -> dict:
        """Tip histogram (the Figure 4 series), bucket floor in lamports."""
        _reject_unknown(params, self.TIPS_PARAM_KEYS)
        bucket = _int_param(params, "bucket_lamports")
        if bucket is not None and bucket < 1:
            raise ValueError(f"bucket_lamports must be >= 1, got {bucket}")
        histogram = self._query.tip_histogram(
            bucket_lamports=bucket if bucket is not None else 100_000,
            length=_int_param(params, "length"),
        )
        return {"tips": {str(k): v for k, v in histogram.items()}}

    def attackers(self, params: dict[str, str]) -> dict:
        """Attackers ranked by USD extracted (the actor concentration table)."""
        _reject_unknown(params, self.ATTACKERS_PARAM_KEYS)
        limit = _int_param(params, "limit")
        if limit is not None and not 1 <= limit <= MAX_PAGE_LIMIT:
            raise ValueError(
                f"limit must be in [1, {MAX_PAGE_LIMIT}], got {limit}"
            )
        return {
            "attackers": self._query.top_attackers(
                limit=limit if limit is not None else 10
            )
        }

    def defensive(self) -> dict:
        """Counts and tip totals by defensive/priority classification."""
        return {"defensive": self._query.defensive_summary()}


class StatusRepository:
    """Collection-integrity status for the whole archive."""

    def __init__(self, query: ArchiveQuery) -> None:
        self._query = query

    def status(self) -> dict:
        """Archive row counts, pending-detail backlog, and the watermark."""
        watermark = self._query.watermark()
        model = StatusModel(
            bundles=self._query.count_bundles(),
            transactions=self._query.count_transactions(),
            sandwiches=self._query.count_sandwiches(),
            defensive=watermark.defensive_rows,
            pending_details=self._query.pending_detail_count(),
            watermark=watermark.token,
        )
        return {"status": model.to_json()}
