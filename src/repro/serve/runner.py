"""Foreground serving loop shared by ``repro serve`` and ``repro api``.

Both CLI servers follow the same shape: start a threaded server, resolve
the bound port (port 0 means "pick one", and the announcement must show
the *resolved* port or the user cannot connect), print one announcement
line, then block until Ctrl-C and stop cleanly. That sequence lives here
once so the two commands cannot drift.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol


class ForegroundServer(Protocol):
    """What the runner needs from a threaded server."""

    @property
    def port(self) -> int:
        """The bound port (resolved, even when the request was port 0)."""
        ...

    def start(self) -> None:
        """Bind and begin serving on a background thread."""
        ...

    def stop(self) -> None:
        """Stop serving and join the background thread."""
        ...


def run_until_interrupt(
    server: ForegroundServer,
    announce: Callable[[int], None],
) -> None:
    """Start ``server``, announce its resolved port, block until Ctrl-C.

    ``announce`` receives the port actually bound (meaningful when the
    requested port was 0) and runs after the socket is listening — a
    client that connects the moment the line prints will be served. The
    server is stopped on the way out even if the announcement raises.
    """
    server.start()
    try:
        announce(server.port)
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
