"""HTTP/1.1 plumbing shared by the explorer and archive-API servers.

Both asyncio servers in this repository speak the same minimal dialect:
one request per connection, explicit ``Content-Length``, ``Connection:
close``. Request parsing and response writing live here so the two servers
cannot drift — in particular, both answer ``HEAD`` with the exact headers
(including ``Content-Length``) their ``GET`` would have sent, minus the
body, which is what polite cache-validating clients rely on.
"""

from __future__ import annotations

import asyncio
import json

#: Request head larger than this is dropped without a response.
MAX_HEADER_BYTES = 64 * 1024
#: Bodies larger than this are dropped without a response.
MAX_BODY_BYTES = 16 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

JSON_CONTENT_TYPE = "application/json"
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class PlainText:
    """Marks a dispatch payload as pre-rendered text, not JSON."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text


class RawBody:
    """A pre-encoded response body with an explicit content type.

    The archive API renders canonical JSON bytes once (they feed the ETag)
    and hands the same bytes to the writer, so the digest a client
    validates against is computed over exactly what went on the wire.
    """

    __slots__ = ("content", "content_type")

    def __init__(self, content: bytes, content_type: str) -> None:
        self.content = content
        self.content_type = content_type


def encode_payload(payload) -> tuple[bytes, str]:
    """Encode a dispatch payload into (body bytes, content type)."""
    if isinstance(payload, RawBody):
        return payload.content, payload.content_type
    if isinstance(payload, PlainText):
        return payload.text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
    if payload is None:
        return b"", JSON_CONTENT_TYPE
    return json.dumps(payload).encode("utf-8"), JSON_CONTENT_TYPE


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; None on framing errors (connection is dropped).

    Header names come back lower-cased; the method upper-cased. The body is
    read to exactly ``Content-Length`` bytes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        return None
    if len(head) > MAX_HEADER_BYTES:
        return None
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3:
        return None
    method, target, _version = request_line
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        return None
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        return None
    return method.upper(), target, headers, body


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload,
    headers: dict[str, str] | None = None,
    head_only: bool = False,
) -> None:
    """Write one framed response and flush.

    ``head_only`` sends the status line and headers — including the
    ``Content-Length`` the full response would have carried — without the
    body, which is the HEAD contract. A 304 is always sent bodiless.
    """
    body, content_type = encode_payload(payload)
    if status == 304:
        head_only = True
        content_type = JSON_CONTENT_TYPE
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {0 if status == 304 else len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("latin-1")
    writer.write(head if head_only else head + body)
    await writer.drain()
