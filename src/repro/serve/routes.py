"""The archive API's versioned route table.

Routes are declared as segment patterns (``/v1/detections/{bundle_id}``)
and resolved by exact segment match, with ``{param}`` segments captured
into a dict. Resolution distinguishes "no such path" (404) from "path
exists, wrong method" (405) so clients get the honest status. ``HEAD``
resolves like ``GET``; the server strips the body at write time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError


@dataclass(frozen=True)
class Route:
    """One registered endpoint.

    ``cacheable`` marks responses that may enter the watermark-keyed cache
    and carry ETags; ``exempt`` marks operational endpoints that bypass
    rate limiting (health probes and metrics scrapes must work while the
    service is saturated).
    """

    method: str
    pattern: str
    handler: Callable[..., object]
    name: str
    cacheable: bool = True
    exempt: bool = False
    segments: tuple[str, ...] = field(default=(), compare=False)


@dataclass(frozen=True)
class RouteMatch:
    """A resolved route plus its captured path parameters."""

    route: Route
    params: dict[str, str]


def _split(path: str) -> tuple[str, ...]:
    return tuple(segment for segment in path.split("/") if segment)


class Router:
    """Segment-matching router with 404/405 discrimination."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(
        self,
        method: str,
        pattern: str,
        handler: Callable[..., object],
        name: str,
        cacheable: bool = True,
        exempt: bool = False,
    ) -> None:
        """Register one endpoint; patterns must be unique per method."""
        segments = _split(pattern)
        for route in self._routes:
            if route.method == method and route.segments == segments:
                raise ConfigError(
                    f"duplicate route {method} {pattern}"
                )
        self._routes.append(
            Route(
                method=method,
                pattern=pattern,
                handler=handler,
                name=name,
                cacheable=cacheable,
                exempt=exempt,
                segments=segments,
            )
        )

    def routes(self) -> list[Route]:
        """All registered routes, in registration order."""
        return list(self._routes)

    @staticmethod
    def _match(
        segments: tuple[str, ...], pattern: tuple[str, ...]
    ) -> dict[str, str] | None:
        if len(segments) != len(pattern):
            return None
        params: dict[str, str] = {}
        for actual, expected in zip(segments, pattern):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif actual != expected:
                return None
        return params

    def resolve(
        self, method: str, path: str
    ) -> RouteMatch | tuple[int, str]:
        """The matching route, or ``(status, message)`` for 404/405.

        ``HEAD`` is routed as ``GET`` — per the shared response-writing
        contract, the server sends the GET's headers without its body.
        """
        lookup = "GET" if method == "HEAD" else method
        segments = _split(path)
        allowed: set[str] = set()
        for route in self._routes:
            params = self._match(segments, route.segments)
            if params is None:
                continue
            if route.method == lookup:
                return RouteMatch(route=route, params=params)
            allowed.add(route.method)
        if allowed:
            return 405, f"use {' or '.join(sorted(allowed))}"
        return 404, f"no route {path}"
