"""Per-client rate limiting for the archive API.

One :class:`repro.utils.ratelimit.TokenBucket` per client id (the
``X-Client-Id`` header when present, else the peer address), LRU-capped so
an open service scanning client ids cannot grow the map without bound.
The same bucket implementation throttles the simulated explorer and the
collector — the whole pipeline shares one admission-control idiom.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.utils.ratelimit import TokenBucket

#: Client buckets kept before least-recently-seen eviction.
DEFAULT_MAX_CLIENTS = 4_096


@dataclass(frozen=True)
class Admission:
    """One admission decision; ``retry_after`` is set on rejection."""

    allowed: bool
    retry_after: float | None = None


class ClientRateLimiter:
    """Token buckets keyed by client id, with LRU eviction.

    An evicted client's next request gets a fresh (full) bucket — strictly
    more permissive than remembering it, so eviction can never turn into a
    denial-of-service against a legitimate quiet client.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        time_fn: Callable[[], float] | None = None,
        max_clients: int = DEFAULT_MAX_CLIENTS,
    ) -> None:
        if max_clients < 1:
            raise ConfigError(
                f"max_clients must be >= 1, got {max_clients}"
            )
        # Bucket constructor validates rate/burst.
        self._rate = rate
        self._burst = burst
        self._time_fn = time_fn or time.monotonic
        self._max_clients = max_clients
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def _bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(
                rate=self._rate,
                capacity=self._burst,
                time_fn=self._time_fn,
            )
            self._buckets[client_id] = bucket
        self._buckets.move_to_end(client_id)
        while len(self._buckets) > self._max_clients:
            self._buckets.popitem(last=False)
        return bucket

    def admit(self, client_id: str) -> Admission:
        """Admit or reject one request from ``client_id``.

        A rejection carries the bucket's earliest-admission estimate so the
        server can send an honest ``Retry-After``.
        """
        bucket = self._bucket(client_id)
        if bucket.try_acquire():
            return Admission(allowed=True)
        self.rejections += 1
        return Admission(
            allowed=False,
            retry_after=bucket.seconds_until_available(),
        )
