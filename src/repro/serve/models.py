"""Response models for the archive API.

Dataclasses, not a schema framework: each model knows how to render itself
as a JSON-able dict with **canonical** money strings. USD amounts go
through :func:`repro.conformance.canon.fmt_fixed` — the same helper the
batch report's CSV exports use — so an API payload and a ``repro analyze``
run over the same archive render the same figures byte-for-byte (the
differential test pins this).

Precision follows the repository's existing canon: per-event amounts at 6
places, campaign totals at 2 (dollars-and-cents), defensive spend at 4
(the report prints it that way), and dimensionless fractions at 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.conformance.canon import fmt_fixed
from repro.core.aggregate import HeadlineStats
from repro.core.quantify import QuantifiedSandwich
from repro.explorer.models import BundleRecord
from repro.explorer.wire import bundle_record_to_json

#: Decimal places for per-event quote/USD amounts.
EVENT_PLACES = 6
#: Decimal places for campaign-level USD totals.
TOTAL_PLACES = 2
#: Decimal places for defensive-spend figures.
DEFENSIVE_PLACES = 4
#: Decimal places for dimensionless fractions.
FRACTION_PLACES = 6


def money(value: float | None, places: int) -> str | None:
    """Canonical money rendering; ``None`` stays ``None`` (unpriced)."""
    return None if value is None else fmt_fixed(value, places)


@dataclass(frozen=True)
class PageMeta:
    """Pagination envelope: what slice this page is and how much exists."""

    limit: int
    offset: int
    returned: int
    total: int

    def to_json(self) -> dict[str, int]:
        """The ``page`` object of the list-endpoint envelope."""
        return {
            "limit": self.limit,
            "offset": self.offset,
            "returned": self.returned,
            "total": self.total,
        }


def page_payload(items: list[Any], meta: PageMeta) -> dict[str, Any]:
    """The uniform list-endpoint shape: ``{"items": [...], "page": {...}}``."""
    return {"items": items, "page": meta.to_json()}


def bundle_to_json(record: BundleRecord) -> dict[str, Any]:
    """A bundle in the explorer's wire shape plus its derived length."""
    payload = bundle_record_to_json(record)
    payload["numTransactions"] = record.num_transactions
    return payload


def detection_to_json(item: QuantifiedSandwich) -> dict[str, Any]:
    """One detected sandwich with canonical financial strings.

    USD fields are ``None`` for non-SOL pairs (the paper counts them but
    excludes them from financial totals); quote amounts are always present.
    """
    event = item.event
    return {
        "bundleId": event.bundle_id,
        "slot": event.bundle.slot,
        "landedAt": event.landed_at,
        "tipLamports": event.tip_lamports,
        "attacker": event.attacker,
        "victim": event.victim,
        "involvesSol": event.involves_sol,
        "victimLossQuote": money(item.victim_loss_quote, EVENT_PLACES),
        "attackerGainQuote": money(item.attacker_gain_quote, EVENT_PLACES),
        "victimLossUsd": money(item.victim_loss_usd, EVENT_PLACES),
        "attackerGainUsd": money(item.attacker_gain_usd, EVENT_PLACES),
    }


@dataclass(frozen=True)
class FinancialSummary:
    """The campaign's headline financial figures, canonically rendered.

    Built from the same :class:`~repro.core.aggregate.HeadlineStats` the
    batch pipeline computes, over the same archive-row ordering the
    incremental analyzer uses — so the strings here match a ``repro
    analyze`` run byte-for-byte.
    """

    sandwich_count: int
    non_sol_sandwiches: int
    non_sol_fraction: str
    victim_loss_usd: str
    attacker_gain_usd: str
    median_victim_loss_usd: str | None
    bundles_collected: int
    sandwich_bundle_fraction: str
    defensive_bundles: int
    defensive_fraction_of_length_one: str
    defensive_spend_usd: str
    average_defensive_tip_usd: str

    @classmethod
    def from_headline(cls, headline: HeadlineStats) -> "FinancialSummary":
        return cls(
            sandwich_count=headline.sandwich_count,
            non_sol_sandwiches=headline.non_sol_sandwiches,
            non_sol_fraction=fmt_fixed(
                headline.non_sol_fraction(), FRACTION_PLACES
            ),
            victim_loss_usd=fmt_fixed(
                headline.victim_loss_usd, TOTAL_PLACES
            ),
            attacker_gain_usd=fmt_fixed(
                headline.attacker_gain_usd, TOTAL_PLACES
            ),
            median_victim_loss_usd=money(
                headline.median_victim_loss_usd, TOTAL_PLACES
            ),
            bundles_collected=headline.bundles_collected,
            sandwich_bundle_fraction=fmt_fixed(
                headline.sandwich_bundle_fraction, FRACTION_PLACES
            ),
            defensive_bundles=headline.defensive_bundles,
            defensive_fraction_of_length_one=fmt_fixed(
                headline.defensive_fraction_of_length_one, FRACTION_PLACES
            ),
            defensive_spend_usd=fmt_fixed(
                headline.defensive_spend_usd, DEFENSIVE_PLACES
            ),
            average_defensive_tip_usd=fmt_fixed(
                headline.average_defensive_tip_usd, DEFENSIVE_PLACES
            ),
        )

    def to_json(self) -> dict[str, Any]:
        """The ``/v1/financials`` wire object (camelCase keys)."""
        return {
            "sandwichCount": self.sandwich_count,
            "nonSolSandwiches": self.non_sol_sandwiches,
            "nonSolFraction": self.non_sol_fraction,
            "victimLossUsd": self.victim_loss_usd,
            "attackerGainUsd": self.attacker_gain_usd,
            "medianVictimLossUsd": self.median_victim_loss_usd,
            "bundlesCollected": self.bundles_collected,
            "sandwichBundleFraction": self.sandwich_bundle_fraction,
            "defensiveBundles": self.defensive_bundles,
            "defensiveFractionOfLengthOne": (
                self.defensive_fraction_of_length_one
            ),
            "defensiveSpendUsd": self.defensive_spend_usd,
            "averageDefensiveTipUsd": self.average_defensive_tip_usd,
        }


@dataclass(frozen=True)
class StatusModel:
    """Collection-integrity status: what the archive holds right now."""

    bundles: int
    transactions: int
    sandwiches: int
    defensive: int
    pending_details: int
    watermark: str

    def to_json(self) -> dict[str, Any]:
        """The ``/v1/status`` wire object."""
        return {
            "bundles": self.bundles,
            "transactions": self.transactions,
            "sandwiches": self.sandwiches,
            "defensive": self.defensive,
            "pendingDetails": self.pending_details,
            "watermark": self.watermark,
        }
