"""Watermark-keyed response cache.

The archive is append-only, so the serving tier's cache-invalidation
contract is one rule: *a cached response is valid exactly as long as the
archive watermark it was built under*. Every request recomputes the
watermark (four indexed scalar reads — microseconds); when the token
differs from the cache's generation, the whole cache is dropped at once.
There is no TTL and no per-entry invalidation to get wrong: an
incremental-analysis pass that appends detections moves the watermark, and
the very next request sees fresh data.

Entries carry the canonical body bytes plus the strong ETag computed over
them, so a hit serves exactly the bytes the ETag validates.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError

#: Hex digits of the body digest embedded in ETags.
ETAG_DIGEST_CHARS = 16


def make_etag(token: str, body: bytes) -> str:
    """A strong ETag: watermark token + body digest, quoted per RFC 9110.

    The token makes staleness visible in the tag itself; the digest makes
    two routes with identical bodies (or one route across identical
    rebuilds) validate consistently.
    """
    digest = hashlib.sha256(body).hexdigest()[:ETAG_DIGEST_CHARS]
    return f'"{token}-{digest}"'


@dataclass(frozen=True)
class CacheEntry:
    """One cached response: canonical bytes plus their validator."""

    body: bytes
    content_type: str
    etag: str


class ResponseCache:
    """LRU response cache whose whole generation is one watermark token.

    Not thread-safe by design: the API app runs on a single event loop and
    every access happens on that loop's thread (the same affinity the
    SQLite connection already imposes).
    """

    def __init__(self, capacity: int = 1_024) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._token: str | None = None
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def generation(self) -> str | None:
        """The watermark token the current entries were built under."""
        return self._token

    def _roll_generation(self, token: str) -> None:
        if token != self._token:
            if self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._token = token

    def get(self, token: str, key: str) -> CacheEntry | None:
        """The entry for ``key`` under watermark ``token``, if still valid."""
        self._roll_generation(token)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, token: str, key: str, entry: CacheEntry) -> None:
        """Store an entry built under watermark ``token``."""
        self._roll_generation(token)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
