"""The archive API's dispatch core, independent of any socket.

:class:`ArchiveApiApp` owns the whole request lifecycle — rate limiting,
routing, the watermark-keyed cache, ETag validation, error mapping, and
request metrics — as one synchronous ``handle()`` call, so every behavior
is testable without binding a port. The asyncio front end
(:mod:`repro.serve.server`) is a thin framing shell around it.

Request flow, in order:

1. resolve the route (404 unknown path, 405 wrong method; ``HEAD`` routes
   as ``GET``),
2. admit through the per-client token bucket unless the route is exempt
   (``/healthz``, ``/metrics`` must answer while saturated),
3. read the archive watermark and look up the response cache — a hit
   serves the stored canonical bytes, a miss runs the repository handler
   and caches the result,
4. compare the strong ETag against ``If-None-Match`` (304 on match),
5. record per-route latency, status, and cache-outcome metrics.

The app is single-threaded by contract: the SQLite connection, the cache,
and the limiter are all touched only from the thread that called
:meth:`open` (the serving event loop's thread).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.conformance.canon import canonical_json_bytes
from repro.errors import ConfigError
from repro.obs.export import render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.serve.cache import CacheEntry, ResponseCache, make_etag
from repro.serve.httpcommon import JSON_CONTENT_TYPE, PlainText, RawBody
from repro.serve.limits import ClientRateLimiter
from repro.serve.repositories import (
    AggregateRepository,
    BundleRepository,
    DetectionRepository,
    StatusRepository,
)
from repro.serve.routes import RouteMatch, Router

#: API version segment; bump on breaking payload changes.
API_VERSION = "v1"


@dataclass(frozen=True)
class ApiConfig:
    """Tunables for one API instance."""

    db_path: str | Path
    host: str = "127.0.0.1"
    port: int = 0
    requests_per_second: float = 50.0
    burst_capacity: float = 200.0
    cache_entries: int = 1_024
    time_fn: Callable[[], float] | None = None


class ArchiveApiApp:
    """Routes archive-API requests to repositories; socket-free."""

    def __init__(
        self, config: ApiConfig, metrics: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests_metric = self.metrics.counter(
            "serve_requests_total",
            "API requests served, by route and status code.",
        )
        self._latency_metric = self.metrics.histogram(
            "serve_request_seconds",
            "Wall-clock API request latency, by route.",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
        )
        self._cache_metric = self.metrics.counter(
            "serve_cache_events_total",
            "Response-cache lookups, by outcome (hit/miss/bypass).",
        )
        self._reject_metric = self.metrics.counter(
            "serve_ratelimit_rejections_total",
            "API requests rejected by per-client rate limiting.",
        )
        self.cache = ResponseCache(capacity=config.cache_entries)
        self.limiter = ClientRateLimiter(
            rate=config.requests_per_second,
            burst=config.burst_capacity,
            time_fn=config.time_fn,
        )
        self._db: ArchiveDatabase | None = None
        self.query: ArchiveQuery | None = None
        self._router = Router()

    # --- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        """Open the archive read-only and build the route table.

        Must be called on the thread that will serve requests: SQLite
        connections are thread-bound, and the read-only open also verifies
        the schema version before the first request can arrive.
        """
        self._db = ArchiveDatabase(self.config.db_path, read_only=True)
        self.query = ArchiveQuery(self._db, metrics=self.metrics)
        bundles = BundleRepository(self.query)
        detections = DetectionRepository(self.query)
        aggregates = AggregateRepository(self.query)
        status = StatusRepository(self.query)

        def no_query(fn: Callable[[], dict]) -> Callable:
            def handler(path_params: dict, query: dict) -> dict:
                if query:
                    raise ValueError(
                        "this endpoint takes no query parameters"
                    )
                return fn()

            return handler

        add = self._router.add
        add("GET", "/healthz", self._handle_healthz, "healthz",
            cacheable=False, exempt=True)
        add("GET", "/metrics", self._handle_metrics, "metrics",
            cacheable=False, exempt=True)
        add("GET", "/", self._handle_index, "index", cacheable=False)
        add("GET", f"/{API_VERSION}/status",
            no_query(status.status), "status")
        add("GET", f"/{API_VERSION}/bundles",
            lambda pp, q: bundles.page(q), "bundles")
        add("GET", f"/{API_VERSION}/bundles/{{bundle_id}}",
            self._detail(bundles.detail), "bundle")
        add("GET", f"/{API_VERSION}/detections",
            lambda pp, q: detections.page(q), "detections")
        add("GET", f"/{API_VERSION}/detections/{{bundle_id}}",
            self._detail(detections.detail), "detection")
        add("GET", f"/{API_VERSION}/financials",
            no_query(aggregates.financials), "financials")
        add("GET", f"/{API_VERSION}/aggregates/daily",
            no_query(aggregates.daily), "aggregates.daily")
        add("GET", f"/{API_VERSION}/aggregates/lengths",
            no_query(aggregates.lengths), "aggregates.lengths")
        add("GET", f"/{API_VERSION}/aggregates/tips",
            lambda pp, q: aggregates.tips(q), "aggregates.tips")
        add("GET", f"/{API_VERSION}/aggregates/attackers",
            lambda pp, q: aggregates.attackers(q), "aggregates.attackers")
        add("GET", f"/{API_VERSION}/aggregates/defensive",
            no_query(aggregates.defensive), "aggregates.defensive")

    def close(self) -> None:
        """Close the archive connection (same thread as :meth:`open`)."""
        if self._db is not None:
            self._db.close()
            self._db = None
            self.query = None

    # --- fixed handlers ----------------------------------------------------

    @staticmethod
    def _detail(fn: Callable[[str], dict | None]) -> Callable:
        def handler(path_params: dict, query: dict) -> dict | None:
            if query:
                raise ValueError("this endpoint takes no query parameters")
            return fn(path_params["bundle_id"])

        return handler

    def _handle_healthz(self, path_params: dict, query: dict) -> dict:
        return {"status": "ok"}

    def _handle_metrics(self, path_params: dict, query: dict) -> PlainText:
        return PlainText(render_prometheus(self.metrics.snapshot()))

    def _handle_index(self, path_params: dict, query: dict) -> dict:
        return {
            "service": "repro archive api",
            "version": API_VERSION,
            "routes": sorted(
                route.pattern for route in self._router.routes()
            ),
        }

    # --- dispatch ----------------------------------------------------------

    @staticmethod
    def _query_params(raw_query: str) -> dict[str, str]:
        """Flatten the query string; repeated keys are a client error."""
        params: dict[str, str] = {}
        for key, values in parse_qs(
            raw_query, keep_blank_values=True
        ).items():
            if len(values) > 1:
                raise ValueError(f"duplicate query parameter: {key}")
            params[key] = values[0]
        return params

    def handle(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        client_id: str,
    ) -> tuple[int, object, dict[str, str]]:
        """One request in, one ``(status, payload, headers)`` out.

        ``headers`` must carry lower-cased names (the shared request parser
        guarantees this). The payload is ready for
        :func:`repro.serve.httpcommon.write_response`.
        """
        if self.query is None:
            raise ConfigError("ArchiveApiApp.handle() before open()")
        started = time.perf_counter()
        route_name = "unmatched"
        status = 500
        try:
            parts = urlsplit(target)
            resolved = self._router.resolve(method, parts.path)
            if not isinstance(resolved, RouteMatch):
                status, message = resolved
                return status, {"error": message}, {}
            route = resolved.route
            route_name = route.name
            if not route.exempt:
                admission = self.limiter.admit(client_id)
                if not admission.allowed:
                    self._reject_metric.inc()
                    retry = max(0.0, admission.retry_after or 0.0)
                    status = 429
                    return (
                        429,
                        {
                            "error": "rate limit exceeded",
                            "retryAfter": retry,
                        },
                        {"Retry-After": str(int(retry) + 1)},
                    )
            try:
                query_params = self._query_params(parts.query)
                if route.cacheable:
                    status, payload, extra = self._cached(
                        resolved, query_params, headers
                    )
                else:
                    self._cache_metric.inc(outcome="bypass")
                    result = route.handler(resolved.params, query_params)
                    status, payload, extra = 200, result, {}
            except (ValueError, ConfigError) as exc:
                status = 400
                return 400, {"error": str(exc)}, {}
            return status, payload, extra
        finally:
            self._requests_metric.inc(
                route=route_name, status=str(status)
            )
            self._latency_metric.observe(
                time.perf_counter() - started, route=route_name
            )

    def _cached(
        self,
        match: RouteMatch,
        query_params: dict[str, str],
        headers: dict[str, str],
    ) -> tuple[int, object, dict[str, str]]:
        """Serve a cacheable route: watermark, cache, ETag, 304."""
        assert self.query is not None
        token = self.query.watermark().token
        key = match.route.method + " " + match.route.pattern + "|" + "|".join(
            f"{k}={v}"
            for k, v in sorted(
                list(query_params.items()) + list(match.params.items())
            )
        )
        entry = self.cache.get(token, key)
        if entry is None:
            self._cache_metric.inc(outcome="miss")
            result = match.route.handler(match.params, query_params)
            if result is None:
                # Absence is watermark-dependent too, but a 404 is cheap
                # to recompute and caching it would complicate the
                # hit-implies-200 invariant; don't cache.
                return 404, {"error": "not found"}, {}
            body = canonical_json_bytes(result)
            entry = CacheEntry(
                body=body,
                content_type=JSON_CONTENT_TYPE,
                etag=make_etag(token, body),
            )
            self.cache.put(token, key, entry)
        else:
            self._cache_metric.inc(outcome="hit")
        extra = {
            "ETag": entry.etag,
            "X-Archive-Watermark": token,
        }
        if headers.get("if-none-match") == entry.etag:
            return 304, None, extra
        return 200, RawBody(entry.body, entry.content_type), extra
