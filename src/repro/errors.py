"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# --- configuration ------------------------------------------------------------


class ConfigError(ReproError):
    """A scenario or component was configured with invalid parameters."""


# --- Solana ledger -------------------------------------------------------------


class TransactionError(ReproError):
    """A transaction failed to execute and was rolled back."""


class InvalidSignatureError(TransactionError):
    """A transaction carried a signature that does not verify."""


class InsufficientFundsError(TransactionError):
    """An account lacked the lamports or tokens required by an instruction."""


class AccountNotFoundError(TransactionError):
    """An instruction referenced an account unknown to the bank."""


class ProgramError(TransactionError):
    """An on-chain program rejected an instruction."""


# --- DEX ------------------------------------------------------------------------


class DexError(ProgramError):
    """Base class for DEX program failures."""


class SlippageExceededError(DexError):
    """A swap's output fell below the user's ``min_amount_out`` bound."""


class PoolNotFoundError(DexError):
    """No liquidity pool exists for the requested mint pair."""


class InsufficientLiquidityError(DexError):
    """A swap was larger than the pool can absorb."""


# --- Jito -----------------------------------------------------------------------


class BundleError(ReproError):
    """Base class for Jito bundle failures."""


class BundleTooLargeError(BundleError):
    """A bundle exceeded the five-transaction limit."""


class EmptyBundleError(BundleError):
    """A bundle must contain at least one transaction."""


class BundleExecutionError(BundleError):
    """A transaction inside a bundle failed, so the whole bundle was dropped."""


class DuplicateTransactionError(BundleError):
    """The same transaction appeared twice within one bundle."""


# --- Explorer API / networking ---------------------------------------------------


class ExplorerError(ReproError):
    """Base class for Jito Explorer API failures."""


class RateLimitedError(ExplorerError):
    """The client exceeded the endpoint's rate limit (HTTP 429).

    Carries the server's optional ``Retry-After`` hint in seconds; retry
    policies that honor it back off at least that long instead of hammering
    a limiter that already told them when capacity returns.
    """

    def __init__(
        self, message: str = "", retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailableError(ExplorerError):
    """The explorer is inside an injected instability window (HTTP 503)."""


class BadRequestError(ExplorerError):
    """The request was malformed or asked for more than the endpoint allows."""


class TransportError(ExplorerError):
    """The HTTP transport failed (connection refused, timeout, bad framing)."""


class DeadlineExceededError(TransportError):
    """A request's total time budget elapsed before a response arrived."""


# --- Collector --------------------------------------------------------------------


class CollectorError(ReproError):
    """Base class for measurement-collector failures."""


class StoreError(CollectorError):
    """The bundle store could not persist or load records."""


# --- Detection ---------------------------------------------------------------------


class DetectionError(ReproError):
    """The sandwich-detection pipeline was fed malformed input."""


# --- Conformance --------------------------------------------------------------------


class ConformanceError(ReproError):
    """Two pipeline runs that must agree produced different results.

    Raised by the differential oracle (and the parity guards built on it)
    when reports that the determinism contract requires to be identical
    diverge. ``diff`` carries the structured report diff when one is
    available — callers can render it, serialize it, or inspect individual
    field differences programmatically.
    """

    def __init__(self, message: str, diff: object | None = None) -> None:
        super().__init__(message)
        self.diff = diff
