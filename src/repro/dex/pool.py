"""Constant-product AMM math and pool metadata.

The pool's *reserves* live in the bank's token ledger (owned by the pool's
address), so bundle rollbacks automatically restore them; this module holds
only the pure math and the immutable pool description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, InsufficientLiquidityError
from repro.solana.keys import Pubkey
from repro.solana.tokens import Mint

BPS_DENOMINATOR = 10_000


def quote_constant_product(
    reserve_in: int, reserve_out: int, amount_in: int, fee_bps: int
) -> int:
    """Output amount for a constant-product swap with an input-side LP fee.

    ``out = reserve_out * a / (reserve_in + a)`` where ``a`` is the amount in
    net of the fee. Rounds down, so the invariant ``k`` never decreases.

    Raises:
        InsufficientLiquidityError: on empty reserves.
        ConfigError: on non-positive input or out-of-range fee.
    """
    if amount_in <= 0:
        raise ConfigError(f"swap amount must be positive, got {amount_in}")
    if not 0 <= fee_bps < BPS_DENOMINATOR:
        raise ConfigError(f"fee_bps must be in [0, 10000), got {fee_bps}")
    if reserve_in <= 0 or reserve_out <= 0:
        raise InsufficientLiquidityError(
            f"pool reserves empty: in={reserve_in} out={reserve_out}"
        )
    effective_in = amount_in * (BPS_DENOMINATOR - fee_bps) // BPS_DENOMINATOR
    if effective_in <= 0:
        return 0
    return reserve_out * effective_in // (reserve_in + effective_in)


def execution_rate(amount_in: int, amount_out: int) -> float:
    """Units of input paid per unit of output received (the trade's price).

    This is the quantity the paper compares between the attacker's first leg
    and the victim's trade: the front-run raises the victim's rate.
    """
    if amount_out <= 0:
        raise ConfigError(f"amount_out must be positive, got {amount_out}")
    return amount_in / amount_out


@dataclass(frozen=True)
class PoolSpec:
    """Immutable description of one liquidity pool."""

    address: Pubkey
    mint_a: Mint
    mint_b: Mint
    fee_bps: int = 25

    def __post_init__(self) -> None:
        if self.mint_a.address == self.mint_b.address:
            raise ConfigError("pool mints must differ")
        if not 0 <= self.fee_bps < BPS_DENOMINATOR:
            raise ConfigError(f"fee_bps must be in [0, 10000), got {self.fee_bps}")

    @classmethod
    def create(cls, mint_a: Mint, mint_b: Mint, fee_bps: int = 25) -> "PoolSpec":
        """Derive a deterministic pool address from the mint pair."""
        address = Pubkey.from_seed(
            f"pool:{mint_a.address.to_base58()}:{mint_b.address.to_base58()}:{fee_bps}"
        )
        return cls(address=address, mint_a=mint_a, mint_b=mint_b, fee_bps=fee_bps)

    @property
    def pair_name(self) -> str:
        """Human-readable pair label, e.g. ``"SOL/MEME-7"``."""
        return f"{self.mint_a.symbol}/{self.mint_b.symbol}"

    def mints(self) -> tuple[Mint, Mint]:
        """Both mints of the pair."""
        return (self.mint_a, self.mint_b)

    def has_mint(self, mint_address: Pubkey) -> bool:
        """Whether ``mint_address`` is one side of this pool."""
        return mint_address in (self.mint_a.address, self.mint_b.address)

    def other_mint(self, mint_address: Pubkey) -> Mint:
        """The opposite side of ``mint_address``.

        Raises:
            ConfigError: if the mint is not part of the pool.
        """
        if mint_address == self.mint_a.address:
            return self.mint_b
        if mint_address == self.mint_b.address:
            return self.mint_a
        raise ConfigError(
            f"mint {mint_address.to_base58()[:8]} not in pool {self.pair_name}"
        )
