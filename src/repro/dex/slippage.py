"""Slippage-tolerance helpers.

Slippage tolerance is the user-set cap on how far the execution price may
move against them (paper Section 2.2). Properly set, it bounds what a
sandwich attacker can extract; loosely set, it is the attacker's budget.
"""

from __future__ import annotations

from repro.errors import ConfigError

BPS_DENOMINATOR = 10_000


def min_out_with_slippage(quoted_out: int, slippage_bps: int) -> int:
    """Minimum acceptable output given a quote and a tolerance in bps.

    A 100 bps (1%) tolerance on a quote of 1,000 tokens yields
    ``min_amount_out = 990``.

    Raises:
        ConfigError: on a non-positive quote or out-of-range tolerance.
    """
    if quoted_out <= 0:
        raise ConfigError(f"quoted_out must be positive, got {quoted_out}")
    if not 0 <= slippage_bps <= BPS_DENOMINATOR:
        raise ConfigError(
            f"slippage_bps must be in [0, 10000], got {slippage_bps}"
        )
    return quoted_out * (BPS_DENOMINATOR - slippage_bps) // BPS_DENOMINATOR


def realized_slippage_bps(quoted_out: int, executed_out: int) -> float:
    """How far (in bps) the executed output fell short of the quote."""
    if quoted_out <= 0:
        raise ConfigError(f"quoted_out must be positive, got {quoted_out}")
    return (quoted_out - executed_out) / quoted_out * BPS_DENOMINATOR
