"""A Jupiter-like swap router/aggregator.

Quotes the best direct route for a pair, applies the user's slippage
tolerance, and builds the swap transaction. The paper found that Jupiter's
"MEV protection" option wraps the resulting transaction in a length-one Jito
bundle; that wrapping lives in :mod:`repro.agents.defensive`, which uses this
router for the swap leg.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dex.pool import PoolSpec
from repro.dex.slippage import min_out_with_slippage
from repro.dex.swap import DexProgram, swap_instruction
from repro.errors import InsufficientLiquidityError, PoolNotFoundError
from repro.solana.bank import Bank
from repro.solana.fees import set_compute_unit_price
from repro.solana.instruction import Instruction
from repro.solana.keys import Keypair, Pubkey
from repro.solana.transaction import Transaction


@dataclass(frozen=True)
class RouteQuote:
    """A quoted direct route: pool, expected output, and slippage floor."""

    pool: PoolSpec
    mint_in: Pubkey
    mint_out: Pubkey
    amount_in: int
    expected_out: int
    min_amount_out: int
    slippage_bps: int


class Router:
    """Best-direct-route aggregation over a pool registry."""

    def __init__(self, bank: Bank, program: DexProgram) -> None:
        self._bank = bank
        self._program = program

    def quote(
        self,
        mint_in: Pubkey,
        mint_out: Pubkey,
        amount_in: int,
        slippage_bps: int = 50,
    ) -> RouteQuote:
        """Quote the best direct pool for the pair.

        Raises:
            PoolNotFoundError: if no direct pool trades the pair.
        """
        candidates = self._program.registry.for_pair(mint_in, mint_out)
        if not candidates:
            raise PoolNotFoundError(
                f"no direct pool for {mint_in.to_base58()[:6]} -> "
                f"{mint_out.to_base58()[:6]}"
            )
        best_pool: PoolSpec | None = None
        best_out = -1
        for pool in candidates:
            try:
                out = self._program.quote(self._bank, pool, mint_in, amount_in)
            except InsufficientLiquidityError:
                continue
            if out > best_out:
                best_out = out
                best_pool = pool
        if best_pool is None or best_out <= 0:
            raise InsufficientLiquidityError(
                f"no pool can fill {amount_in} of {mint_in.to_base58()[:6]}"
            )
        return RouteQuote(
            pool=best_pool,
            mint_in=mint_in,
            mint_out=mint_out,
            amount_in=amount_in,
            expected_out=best_out,
            min_amount_out=min_out_with_slippage(best_out, slippage_bps),
            slippage_bps=slippage_bps,
        )

    def build_swap_instruction(self, owner: Pubkey, quote: RouteQuote) -> Instruction:
        """Materialize a quote into a swap instruction for ``owner``."""
        return swap_instruction(
            owner=owner,
            pool=quote.pool,
            mint_in=quote.mint_in,
            amount_in=quote.amount_in,
            min_amount_out=quote.min_amount_out,
        )

    def build_swap_transaction(
        self,
        owner: Keypair,
        quote: RouteQuote,
        priority_fee_micro_lamports: int = 0,
        recent_blockhash: str = "",
    ) -> Transaction:
        """Build and sign a complete swap transaction.

        A non-zero ``priority_fee_micro_lamports`` prepends a compute-budget
        instruction — the native (non-Jito) way to buy priority.
        """
        instructions: list[Instruction] = []
        if priority_fee_micro_lamports > 0:
            instructions.append(set_compute_unit_price(priority_fee_micro_lamports))
        instructions.append(self.build_swap_instruction(owner.pubkey, quote))
        return Transaction.build(
            owner, instructions, recent_blockhash=recent_blockhash
        )
