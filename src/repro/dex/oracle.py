"""Price oracles: SOL/USD conversion and pool-implied token prices.

The paper converts SOL amounts to USD at a single reference rate (footnote 6)
and explicitly declines to price non-SOL tokens — "there is no existing way
to find the value of a non-widely popularized coin at the time of
transaction execution". The oracle mirrors both choices.
"""

from __future__ import annotations

from repro.constants import LAMPORTS_PER_SOL, SOL_USD_RATE
from repro.errors import ConfigError


class PriceOracle:
    """Converts between lamports, SOL, and USD at a fixed reference rate."""

    def __init__(self, usd_per_sol: float = SOL_USD_RATE) -> None:
        if usd_per_sol <= 0:
            raise ConfigError(f"usd_per_sol must be positive, got {usd_per_sol}")
        self._usd_per_sol = usd_per_sol

    @property
    def usd_per_sol(self) -> float:
        """The reference SOL/USD rate."""
        return self._usd_per_sol

    def sol_to_usd(self, sol: float) -> float:
        """Convert a SOL amount to USD."""
        return sol * self._usd_per_sol

    def lamports_to_usd(self, lamports: int | float) -> float:
        """Convert lamports to USD."""
        return lamports / LAMPORTS_PER_SOL * self._usd_per_sol

    def lamports_to_sol(self, lamports: int | float) -> float:
        """Convert lamports to SOL."""
        return lamports / LAMPORTS_PER_SOL

    def usd_to_lamports(self, usd: float) -> int:
        """Convert USD to lamports (rounded to the nearest lamport)."""
        return int(round(usd / self._usd_per_sol * LAMPORTS_PER_SOL))
