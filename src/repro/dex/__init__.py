"""DEX substrate: constant-product AMM pools, the swap program, a
Jupiter-like router, and price oracles.

Sandwiching MEV exists because DEX rates move with every trade (paper
Section 2.2); this package provides that dynamic-rate substrate.
"""

from repro.dex.oracle import PriceOracle
from repro.dex.pool import PoolSpec, quote_constant_product
from repro.dex.router import Router, RouteQuote
from repro.dex.market import Market
from repro.dex.slippage import min_out_with_slippage
from repro.dex.swap import DexProgram, PoolRegistry, swap_instruction

__all__ = [
    "DexProgram",
    "Market",
    "PoolRegistry",
    "PoolSpec",
    "PriceOracle",
    "RouteQuote",
    "Router",
    "min_out_with_slippage",
    "quote_constant_product",
    "swap_instruction",
]
