"""The on-chain DEX program: pool registry, swap instruction, processor.

Reserves are the pool address's token balances in the bank, so swaps made
inside a failed bundle roll back together with everything else.
"""

from __future__ import annotations

import json

from repro.errors import (
    PoolNotFoundError,
    ProgramError,
    SlippageExceededError,
)
from repro.dex.pool import PoolSpec, execution_rate, quote_constant_product
from repro.solana.instruction import DEX_PROGRAM_ID, AccountMeta, Instruction
from repro.solana.keys import Pubkey
from repro.solana.program import BankView


class PoolRegistry:
    """All pools known to the DEX program, with pair lookup."""

    def __init__(self) -> None:
        self._pools: dict[Pubkey, PoolSpec] = {}
        self._by_pair: dict[frozenset[Pubkey], list[PoolSpec]] = {}

    def __len__(self) -> int:
        return len(self._pools)

    def add(self, pool: PoolSpec) -> None:
        """Register a pool; idempotent for identical specs."""
        existing = self._pools.get(pool.address)
        if existing is not None:
            if existing != pool:
                raise ProgramError(
                    f"pool address collision at {pool.address.to_base58()[:8]}"
                )
            return
        self._pools[pool.address] = pool
        key = frozenset((pool.mint_a.address, pool.mint_b.address))
        self._by_pair.setdefault(key, []).append(pool)

    def get(self, address: Pubkey) -> PoolSpec:
        """Look up a pool by address.

        Raises:
            PoolNotFoundError: if unknown.
        """
        pool = self._pools.get(address)
        if pool is None:
            raise PoolNotFoundError(f"no pool at {address.to_base58()}")
        return pool

    def for_pair(self, mint_x: Pubkey, mint_y: Pubkey) -> list[PoolSpec]:
        """All pools trading the (unordered) pair."""
        return list(self._by_pair.get(frozenset((mint_x, mint_y)), []))

    def all_pools(self) -> list[PoolSpec]:
        """Every registered pool."""
        return list(self._pools.values())


def swap_instruction(
    owner: Pubkey,
    pool: PoolSpec,
    mint_in: Pubkey,
    amount_in: int,
    min_amount_out: int,
) -> Instruction:
    """Build a swap: trade ``amount_in`` of ``mint_in`` on ``pool``.

    ``min_amount_out`` encodes the user's slippage tolerance: execution fails
    (and with it any enclosing bundle) if the pool can no longer deliver that
    many output tokens — exactly the mechanism the paper describes as the
    victim's only cap on sandwich extraction.
    """
    if amount_in <= 0:
        raise ValueError(f"amount_in must be positive, got {amount_in}")
    if min_amount_out < 0:
        raise ValueError(f"min_amount_out must be >= 0, got {min_amount_out}")
    payload = {
        "op": "swap",
        "pool": pool.address.to_base58(),
        "mint_in": mint_in.to_base58(),
        "amount_in": amount_in,
        "min_amount_out": min_amount_out,
    }
    return Instruction(
        program_id=DEX_PROGRAM_ID,
        accounts=(
            AccountMeta(owner, is_signer=True, is_writable=True),
            AccountMeta(pool.address, is_writable=True),
        ),
        data=json.dumps(payload, sort_keys=True).encode(),
    )


class DexProgram:
    """Processor for the DEX program; register on the bank at genesis."""

    def __init__(self, registry: PoolRegistry) -> None:
        self._registry = registry

    @property
    def registry(self) -> PoolRegistry:
        """The pool registry this program serves."""
        return self._registry

    def quote(self, bank: BankView, pool: PoolSpec, mint_in: Pubkey, amount_in: int) -> int:
        """Read-only output quote against current bank-held reserves."""
        mint_out = pool.other_mint(mint_in)
        reserve_in = bank.token_balance(pool.address, mint_in)
        reserve_out = bank.token_balance(pool.address, mint_out.address)
        return quote_constant_product(reserve_in, reserve_out, amount_in, pool.fee_bps)

    def __call__(self, bank: BankView, instruction: Instruction) -> None:
        """Execute a swap instruction.

        Raises:
            ProgramError: malformed payload or missing signer.
            SlippageExceededError: output below ``min_amount_out``.
        """
        try:
            payload = json.loads(instruction.data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProgramError(f"dex: malformed payload: {exc}") from exc
        if payload.get("op") != "swap":
            raise ProgramError(f"dex: unknown op {payload.get('op')!r}")
        if len(instruction.accounts) != 2:
            raise ProgramError(
                f"dex swap expects 2 accounts, got {len(instruction.accounts)}"
            )

        owner = instruction.accounts[0].pubkey
        if not bank.is_signer(owner):
            raise ProgramError(f"swap owner {owner.to_base58()} did not sign")

        pool = self._registry.get(Pubkey.from_base58(payload["pool"]))
        mint_in = Pubkey.from_base58(payload["mint_in"])
        mint_out = pool.other_mint(mint_in)
        amount_in = int(payload["amount_in"])
        min_amount_out = int(payload["min_amount_out"])

        amount_out = self.quote(bank, pool, mint_in, amount_in)
        if amount_out < min_amount_out:
            raise SlippageExceededError(
                f"swap on {pool.pair_name} would deliver {amount_out}, "
                f"below min_amount_out {min_amount_out}"
            )
        if amount_out <= 0:
            raise SlippageExceededError(
                f"swap on {pool.pair_name} would deliver nothing"
            )

        bank.transfer_tokens(owner, pool.address, mint_in, amount_in)
        bank.transfer_tokens(pool.address, owner, mint_out.address, amount_out)
        bank.emit_event(
            {
                "type": "swap",
                "pool": pool.address.to_base58(),
                "owner": owner.to_base58(),
                "mint_in": mint_in.to_base58(),
                "mint_out": mint_out.address.to_base58(),
                "amount_in": amount_in,
                "amount_out": amount_out,
                "rate": execution_rate(amount_in, amount_out),
            }
        )
        bank.log(
            f"dex: swap {amount_in} {mint_in.to_base58()[:6]} -> "
            f"{amount_out} {mint_out.address.to_base58()[:6]} on {pool.pair_name}"
        )
