"""Market bootstrap: the token universe and seeded liquidity pools.

Builds the trading landscape the paper's population acts on: a set of
memecoins quoted against SOL (the majority of sandwich victims trade to or
from SOL) plus token/token pools quoted against a USDC-like stable (the 28%
of sandwiches that never touch SOL and are excluded from USD totals).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dex.pool import PoolSpec
from repro.dex.swap import DexProgram, PoolRegistry
from repro.errors import ConfigError
from repro.solana.bank import Bank
from repro.solana.instruction import DEX_PROGRAM_ID
from repro.solana.keys import Pubkey
from repro.solana.tokens import Mint, SOL_MINT
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class MarketConfig:
    """Knobs for the generated token/pool universe."""

    num_meme_tokens: int = 20
    num_token_token_pools: int = 5
    pool_fee_bps: int = 25
    min_pool_sol: float = 50.0
    max_pool_sol: float = 500.0
    min_token_price_sol: float = 0.000001
    max_token_price_sol: float = 0.01

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.num_meme_tokens < 1:
            raise ConfigError("need at least one meme token")
        if self.num_token_token_pools > self.num_meme_tokens:
            raise ConfigError(
                "cannot have more token/token pools than meme tokens"
            )
        if self.min_pool_sol <= 0 or self.max_pool_sol < self.min_pool_sol:
            raise ConfigError("invalid pool SOL reserve range")
        if (
            self.min_token_price_sol <= 0
            or self.max_token_price_sol < self.min_token_price_sol
        ):
            raise ConfigError("invalid token price range")


class Market:
    """The DEX-side world: mints, pools, registry, and the installed program."""

    def __init__(self, bank: Bank, config: MarketConfig, rng: DeterministicRNG) -> None:
        config.validate()
        self._bank = bank
        self._config = config
        self._rng = rng.child("market")
        self.sol = SOL_MINT
        self.usdc = Mint.from_symbol("USDC", decimals=6)
        self.meme_tokens: list[Mint] = [
            Mint.from_symbol(f"MEME-{i}") for i in range(config.num_meme_tokens)
        ]
        self.registry = PoolRegistry()
        self.program = DexProgram(self.registry)
        bank.register_program(DEX_PROGRAM_ID, self.program)
        self.sol_pools: list[PoolSpec] = []
        self.token_token_pools: list[PoolSpec] = []
        self._bootstrap_pools()
        # Anchor rates: the bootstrap price of each pool, which external
        # arbitrage (modelled by the engine's market maker) reverts toward.
        self._anchor_rates: dict[Pubkey, float] = {
            pool.address: self.spot_rate(pool, pool.mint_a.address)
            for pool in self.all_pools()
        }

    @property
    def bank(self) -> Bank:
        """The bank holding all pool reserves."""
        return self._bank

    def _seed_pool(
        self, pool: PoolSpec, reserve_a: int, reserve_b: int
    ) -> None:
        self.registry.add(pool)
        self._bank.fund_tokens(pool.address, pool.mint_a.address, reserve_a)
        self._bank.fund_tokens(pool.address, pool.mint_b.address, reserve_b)

    def _bootstrap_pools(self) -> None:
        config = self._config
        # One SOL pool per meme token, with a random depth and price level.
        for token in self.meme_tokens:
            pool = PoolSpec.create(self.sol, token, fee_bps=config.pool_fee_bps)
            sol_reserve_ui = self._rng.uniform(config.min_pool_sol, config.max_pool_sol)
            price_sol = 10 ** self._rng.uniform(
                math.log10(config.min_token_price_sol),
                math.log10(config.max_token_price_sol),
            )
            sol_reserve = self.sol.to_base_units(sol_reserve_ui)
            token_reserve = token.to_base_units(sol_reserve_ui / price_sol)
            self._seed_pool(pool, sol_reserve, token_reserve)
            self.sol_pools.append(pool)

        # A deep SOL/USDC pool anchoring the stable leg.
        usdc_pool = PoolSpec.create(self.sol, self.usdc, fee_bps=config.pool_fee_bps)
        anchor_sol = self.sol.to_base_units(50_000.0)
        anchor_usdc = self.usdc.to_base_units(50_000.0 * 150.0)
        self._seed_pool(usdc_pool, anchor_sol, anchor_usdc)
        self.usdc_pool = usdc_pool

        # Token/USDC pools: the venue for sandwiches that never touch SOL.
        for token in self.meme_tokens[: config.num_token_token_pools]:
            pool = PoolSpec.create(self.usdc, token, fee_bps=config.pool_fee_bps)
            usdc_reserve_ui = self._rng.uniform(8_000.0, 80_000.0)
            price_usdc = 10 ** self._rng.uniform(-4.0, -1.0)
            usdc_reserve = self.usdc.to_base_units(usdc_reserve_ui)
            token_reserve = token.to_base_units(usdc_reserve_ui / price_usdc)
            self._seed_pool(pool, usdc_reserve, token_reserve)
            self.token_token_pools.append(pool)

    # --- queries ---------------------------------------------------------------

    def all_pools(self) -> list[PoolSpec]:
        """Every pool in the market."""
        return self.registry.all_pools()

    def random_sol_pool(self, rng: DeterministicRNG) -> PoolSpec:
        """Pick a random SOL/memecoin pool."""
        return rng.choice(self.sol_pools)

    def random_token_token_pool(self, rng: DeterministicRNG) -> PoolSpec:
        """Pick a random non-SOL pool."""
        if not self.token_token_pools:
            raise ConfigError("market has no token/token pools")
        return rng.choice(self.token_token_pools)

    def reserves(self, pool: PoolSpec) -> tuple[int, int]:
        """Current bank-held reserves (mint_a units, mint_b units)."""
        return (
            self._bank.token_balance(pool.address, pool.mint_a.address),
            self._bank.token_balance(pool.address, pool.mint_b.address),
        )

    def quote(self, pool: PoolSpec, mint_in: Pubkey, amount_in: int) -> int:
        """Read-only swap quote against current reserves."""
        return self.program.quote(self._bank, pool, mint_in, amount_in)

    def spot_rate(self, pool: PoolSpec, mint_in: Pubkey) -> float:
        """Marginal price: units of ``mint_in`` per unit of the other mint."""
        mint_out = pool.other_mint(mint_in)
        reserve_in = self._bank.token_balance(pool.address, mint_in)
        reserve_out = self._bank.token_balance(pool.address, mint_out.address)
        if reserve_out == 0:
            raise ConfigError(f"pool {pool.pair_name} has empty reserves")
        return reserve_in / reserve_out

    def anchor_rate(self, pool: PoolSpec) -> float:
        """The pool's bootstrap price (mint_a units per mint_b unit)."""
        return self._anchor_rates[pool.address]

    def rebalance_order(
        self, pool: PoolSpec, band: float = 0.25
    ) -> tuple[Pubkey, int] | None:
        """The corrective swap that reverts a drifted pool toward its anchor.

        Models external arbitrage: on a real market, a pool whose price
        deviates from the wider market gets arbitraged back. Returns
        ``(mint_in, amount_in)`` for the correcting trade, or None while the
        price is within ``band`` (relative) of the anchor.

        For a constant-product pool, trading ``a`` units into the ``in``
        side moves the in-per-out rate to ``(r_in + a)^2 / k``; solving for
        the anchor rate gives ``a = r_in * (sqrt(target / current) - 1)``.
        """
        if band <= 0:
            raise ConfigError(f"band must be positive, got {band}")
        current = self.spot_rate(pool, pool.mint_a.address)
        target = self._anchor_rates[pool.address]
        if abs(current - target) <= band * target:
            return None
        if current < target:
            # mint_a is too cheap: buy mint_b with mint_a (raises the rate).
            mint_in = pool.mint_a.address
            reserve_in = self._bank.token_balance(pool.address, mint_in)
            amount = int(reserve_in * (math.sqrt(target / current) - 1.0))
        else:
            # mint_a is too dear: sell mint_b into the pool (lowers the rate).
            mint_in = pool.mint_b.address
            reserve_in = self._bank.token_balance(pool.address, mint_in)
            amount = int(reserve_in * (math.sqrt(current / target) - 1.0))
        if amount <= 0:
            return None
        return mint_in, amount
