"""The bounded, closeable asyncio queue the streaming stages share.

``asyncio.Queue`` has no close signal: the usual workaround (putting a
sentinel) deadlocks when the queue is full at shutdown — exactly the state
an injected outage leaves it in. :class:`BoundedStreamQueue` keeps the
bounded-buffer semantics but adds:

- a synchronous :meth:`close` that wakes every waiter — blocked getters
  drain the remaining items and then receive
  :data:`~repro.stream.events.END_OF_STREAM`, blocked putters raise
  :class:`StreamClosedError` instead of sleeping forever;
- a timeout guard on :meth:`put` (:class:`StreamStallError`) so a wedged
  consumer can never hang the producer indefinitely;
- queue-health metrics (``stream_queue_depth``, ``_high_water``,
  ``_put_stalls_total``, ``_put_wait_seconds``, ``_items_total``) through
  the shared :mod:`repro.obs` registry, labelled by queue name.

Backpressure contract: ``put`` suspends (never drops, never buffers past
``maxsize``) while the queue is full, so a producer awaiting ``put``
between simulation blocks is paced by its slowest consumer and memory
stays bounded by ``maxsize`` plus one in-flight batch.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from repro.errors import ConfigError, ReproError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

_WAIT_BUCKETS = (0.001, 0.01, 0.1, 0.5, 2.0, 10.0)


class StreamClosedError(ReproError):
    """A put raced a queue that closed (producer-side shutdown signal)."""


class StreamStallError(ReproError):
    """A put waited longer than the stall timeout for queue capacity."""


class BoundedStreamQueue:
    """A bounded single-loop producer/consumer queue with explicit close.

    All waiting is cooperative (futures on the running event loop); the
    queue is not thread-safe, matching the single-threaded asyncio design
    of the streaming pipeline.
    """

    def __init__(
        self,
        maxsize: int,
        name: str = "stream",
        metrics: MetricsRegistry | None = None,
        put_timeout: float | None = None,
    ) -> None:
        if maxsize < 1:
            raise ConfigError(f"queue maxsize must be >= 1, got {maxsize}")
        if put_timeout is not None and put_timeout <= 0:
            raise ConfigError("put_timeout must be positive (or None)")
        self.name = name
        self.maxsize = maxsize
        self.put_timeout = put_timeout
        self._items: deque = deque()
        self._closed = False
        self._getters: deque[asyncio.Future] = deque()
        self._putters: deque[asyncio.Future] = deque()
        self.high_water = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._depth_gauge = metrics.gauge(
            "stream_queue_depth", "Items currently buffered, by queue."
        )
        self._high_water_gauge = metrics.gauge(
            "stream_queue_high_water",
            "Deepest the queue has been, by queue.",
        )
        self._stalls_metric = metrics.counter(
            "stream_queue_put_stalls_total",
            "Puts that had to wait for capacity, by queue.",
        )
        self._wait_metric = metrics.histogram(
            "stream_queue_put_wait_seconds",
            "Wall-clock seconds puts spent waiting for capacity.",
            buckets=_WAIT_BUCKETS,
        )
        self._items_metric = metrics.counter(
            "stream_queue_items_total", "Items accepted, by queue."
        )
        self._depth_gauge.set(0, queue=name)
        self._high_water_gauge.set(0, queue=name)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # --- internal waiter plumbing -----------------------------------------

    @staticmethod
    def _wake_first(waiters: deque) -> None:
        while waiters:
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return

    @staticmethod
    async def _wait(waiters: deque, timeout: float | None) -> bool:
        """Park on a fresh future; returns False when the wait timed out."""
        waiter = asyncio.get_running_loop().create_future()
        waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter, timeout)
            return True
        except asyncio.TimeoutError:
            return False
        finally:
            if waiter in waiters:
                waiters.remove(waiter)

    def _note_depth(self) -> None:
        depth = len(self._items)
        self._depth_gauge.set(depth, queue=self.name)
        if depth > self.high_water:
            self.high_water = depth
            self._high_water_gauge.set(depth, queue=self.name)

    # --- the queue API -----------------------------------------------------

    async def put(self, item) -> None:
        """Enqueue ``item``, waiting (bounded) for capacity.

        Raises:
            StreamClosedError: the queue closed before the item landed.
            StreamStallError: capacity did not free up within
                ``put_timeout`` seconds — the timeout guard that keeps a
                dead consumer from deadlocking its producer.
        """
        if self._closed:
            raise StreamClosedError(
                f"queue {self.name!r} is closed; item refused"
            )
        stalled = False
        started = time.perf_counter()
        while len(self._items) >= self.maxsize and not self._closed:
            if not stalled:
                stalled = True
                self._stalls_metric.inc(queue=self.name)
            if not await self._wait(self._putters, self.put_timeout):
                raise StreamStallError(
                    f"queue {self.name!r} full for over "
                    f"{self.put_timeout}s (consumer stalled?)"
                )
        if self._closed:
            raise StreamClosedError(
                f"queue {self.name!r} closed while a put waited"
            )
        if stalled:
            self._wait_metric.observe(
                time.perf_counter() - started, queue=self.name
            )
        self._items.append(item)
        self._items_metric.inc(queue=self.name)
        self._note_depth()
        self._wake_first(self._getters)

    async def get(self):
        """Dequeue the next item, or :data:`END_OF_STREAM` once drained.

        Blocks while the queue is open and empty. After :meth:`close`,
        buffered items are still handed out in order (drain-on-close);
        only then does every subsequent get return the sentinel.
        """
        from repro.stream.events import END_OF_STREAM

        while not self._items:
            if self._closed:
                return END_OF_STREAM
            await self._wait(self._getters, None)
        item = self._items.popleft()
        self._note_depth()
        self._wake_first(self._putters)
        return item

    def close(self) -> None:
        """Close the queue and wake every waiter (idempotent, synchronous).

        Safe to call from ``finally`` blocks and cancellation handlers:
        it never awaits, so a cancelled producer can always signal its
        consumers on the way out.
        """
        if self._closed:
            return
        self._closed = True
        for waiters in (self._getters, self._putters):
            while waiters:
                waiter = waiters.popleft()
                if not waiter.done():
                    waiter.set_result(None)
