"""repro.stream — the analyze-while-collecting streaming pipeline.

Collapses the repo's collect → archive → analyze sequence into one online
path: an asyncio producer/consumer graph with bounded queues and explicit
backpressure, a streaming detector over sliding slot windows, and an
incremental report builder that folds monotone deltas so the final report
is ready the moment collection ends — byte-identical to the batch
pipeline over the same data (see ``docs/STREAMING.md``).
"""

from repro.stream.campaign import CollectorTap, StreamingCampaign
from repro.stream.deltas import (
    IncrementalReportBuilder,
    ReportDelta,
    VerdictRecord,
)
from repro.stream.detector import StreamingDetector
from repro.stream.events import END_OF_STREAM, StreamBatch
from repro.stream.pipeline import (
    StreamConfig,
    analyze_archive_stream,
    archive_producer,
    run_stages,
)
from repro.stream.queues import (
    BoundedStreamQueue,
    StreamClosedError,
    StreamStallError,
)
from repro.stream.windows import SlidingSlotWindows

__all__ = [
    "END_OF_STREAM",
    "BoundedStreamQueue",
    "CollectorTap",
    "IncrementalReportBuilder",
    "ReportDelta",
    "SlidingSlotWindows",
    "StreamBatch",
    "StreamClosedError",
    "StreamConfig",
    "StreamStallError",
    "StreamingCampaign",
    "StreamingDetector",
    "VerdictRecord",
    "analyze_archive_stream",
    "archive_producer",
    "run_stages",
]
