"""Sliding slot windows: re-evaluate only where membership changed.

The streaming detector groups its detection candidates by slot window
(``slot // window_slots``). Every arriving record dirties exactly the
windows it touches — a new candidate dirties its own window, a
transaction detail dirties the window of the candidate it completes — and
each ingest step sweeps only the dirty windows. Candidates leave their
window once judged, so a quiet window costs nothing no matter how long
the stream runs.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


class SlidingSlotWindows:
    """Dirty-tracked candidate membership, bucketed by slot window."""

    def __init__(
        self,
        window_slots: int = 32,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window_slots < 1:
            raise ConfigError(
                f"window_slots must be >= 1, got {window_slots}"
            )
        self.window_slots = window_slots
        self._members: dict[int, set[int]] = {}
        self._dirty: set[int] = set()
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._dirty_metric = metrics.counter(
            "stream_windows_dirtied_total",
            "Window dirty-markings (membership or detail changes).",
        )
        self._swept_metric = metrics.counter(
            "stream_windows_swept_total",
            "Dirty windows re-evaluated by the streaming detector.",
        )
        self._open_gauge = metrics.gauge(
            "stream_windows_open",
            "Windows still holding unjudged candidates.",
        )

    def key_for(self, slot: int) -> int:
        """The window key a slot falls into."""
        return slot // self.window_slots

    def __len__(self) -> int:
        return len(self._members)

    def add(self, slot: int, candidate: int) -> None:
        """Register a candidate in its slot window and mark it dirty."""
        key = self.key_for(slot)
        self._members.setdefault(key, set()).add(candidate)
        self._mark_dirty(key)
        self._open_gauge.set(len(self._members))

    def touch(self, slot: int) -> None:
        """Mark a slot's window dirty (a detail for it arrived)."""
        key = self.key_for(slot)
        if key in self._members:
            self._mark_dirty(key)

    def _mark_dirty(self, key: int) -> None:
        if key not in self._dirty:
            self._dirty.add(key)
            self._dirty_metric.inc()

    def discard(self, slot: int, candidate: int) -> None:
        """Drop a judged candidate; empty windows are retired entirely."""
        key = self.key_for(slot)
        members = self._members.get(key)
        if members is None:
            return
        members.discard(candidate)
        if not members:
            del self._members[key]
            self._dirty.discard(key)
            self._open_gauge.set(len(self._members))

    def sweep_dirty(self) -> list[tuple[int, list[int]]]:
        """Take the dirty windows: ``(key, sorted candidates)`` pairs.

        Keys come out sorted so a sweep visits windows (and candidates
        within them) in one deterministic order; the dirty set is cleared.
        """
        if not self._dirty:
            return []
        keys = sorted(self._dirty)
        self._dirty.clear()
        swept = [
            (key, sorted(self._members.get(key, ())))
            for key in keys
            if self._members.get(key)
        ]
        self._swept_metric.inc(len(swept))
        return swept

    def remaining(self) -> list[int]:
        """Every unjudged candidate, across all windows, sorted."""
        out: set[int] = set()
        for members in self._members.values():
            out.update(members)
        return sorted(out)
