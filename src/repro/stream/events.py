"""Messages that flow between the streaming pipeline's stages.

The producer publishes :class:`StreamBatch` messages (the genuinely-new
bundles and transaction details one collection step landed, in insertion
order); the detector stage turns each batch into a
:class:`~repro.stream.deltas.ReportDelta`. End of stream is signalled by
closing the queue, which hands every waiting consumer the
:data:`END_OF_STREAM` sentinel once the buffered items drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explorer.models import BundleRecord, TransactionRecord


class _EndOfStream:
    """Singleton sentinel a closed queue yields once its items drain."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<END_OF_STREAM>"


#: The one end-of-stream marker every consumer compares against by identity.
END_OF_STREAM = _EndOfStream()


@dataclass(frozen=True)
class StreamBatch:
    """One publish step's worth of freshly collected records.

    Records appear exactly once across the lifetime of a stream (the
    store's dedup runs before the tap fires) and in store insertion
    order — the order every batch-path analysis iterates, which is what
    the byte-identity contract rests on.
    """

    bundles: tuple[BundleRecord, ...] = field(default_factory=tuple)
    details: tuple[TransactionRecord, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.bundles) + len(self.details)

    @property
    def empty(self) -> bool:
        """Whether this batch carries no records at all."""
        return not self.bundles and not self.details
