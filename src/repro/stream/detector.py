"""The streaming detector: judge candidates as their details land.

Consumes :class:`~repro.stream.events.StreamBatch` messages and produces
:class:`~repro.stream.deltas.ReportDelta` messages. The design invariant
that makes streaming byte-identical to batch analysis:

- every bundle of a detection length becomes a *candidate* with a
  monotonically increasing index — candidate order is store insertion
  order, the exact order ``detect_all`` iterates;
- a candidate is judged exactly once, by a **fresh detector** built from
  the shared :class:`~repro.parallel.chunks.DetectorSpec`, the moment its
  transaction details are complete (or at finalize if they never are) —
  the fresh detector's stats are precisely the candidate's contribution
  to a monolithic pass's bookkeeping;
- length-one bundles are classified on arrival, in arrival order — the
  order ``DefensiveBundlingClassifier.classify`` iterates.

Sliding slot windows (:class:`~repro.stream.windows.SlidingSlotWindows`)
keep the incremental work proportional to change: an ingest step sweeps
only windows whose membership changed, so candidates from quiet slots are
never revisited.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantify import LossQuantifier, QuantifiedSandwich
from repro.dex.oracle import PriceOracle
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.parallel.chunks import DetectorSpec
from repro.stream.deltas import ReportDelta, VerdictRecord
from repro.stream.events import StreamBatch
from repro.stream.windows import SlidingSlotWindows


@dataclass
class _Candidate:
    """One unjudged detection candidate and the details it still needs."""

    index: int
    bundle: BundleRecord
    missing: set[str]


class StreamingDetector:
    """Online sandwich detection over a stream of collected records.

    The detector doubles as the detail-lookup object handed to
    ``SandwichDetector.detect_bundle`` (it exposes :meth:`get_detail`),
    so judging a candidate runs the unchanged batch detection code
    against the stream's accumulated details.
    """

    def __init__(
        self,
        spec: DetectorSpec | None = None,
        oracle: PriceOracle | None = None,
        window_slots: int = 32,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.spec = spec or DetectorSpec()
        self.spec.validate()
        if oracle is None:
            oracle = (
                PriceOracle(self.spec.usd_per_sol)
                if self.spec.usd_per_sol is not None
                else PriceOracle()
            )
        self.oracle = oracle
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._quantifier = LossQuantifier(oracle)
        self._classifier = self.spec.build_classifier()
        self._wanted = set(self.spec.detail_lengths)
        self.windows = SlidingSlotWindows(
            window_slots=window_slots, metrics=self.metrics
        )
        self._details: dict[str, TransactionRecord] = {}
        self._tx_to_candidate: dict[str, int] = {}
        self._candidates: dict[int, _Candidate] = {}
        self.bundles_seen = 0
        self.candidates_registered = 0
        self.candidates_judged = 0
        self.sandwiches = 0
        self._defensive_seen = 0
        self._priority_seen = 0
        self._ingested_metric = self.metrics.counter(
            "stream_bundles_ingested_total",
            "Bundles the streaming detector has consumed.",
        )
        self._judged_metric = self.metrics.counter(
            "stream_candidates_judged_total",
            "Detection candidates judged, by completeness.",
        )
        self._lag_gauge = self.metrics.gauge(
            "stream_detector_lag_candidates",
            "Registered candidates still awaiting judgement.",
        )

    # --- detail lookup (the store protocol detect_bundle needs) ------------

    def get_detail(self, tx_id: str) -> TransactionRecord | None:
        """Resolve a transaction detail from the stream's accumulation."""
        return self._details.get(tx_id)

    # --- ingest ------------------------------------------------------------

    def ingest(self, batch: StreamBatch) -> ReportDelta:
        """Consume one batch; judge candidates whose windows went dirty."""
        new_defensive: list[BundleRecord] = []
        new_priority: list[BundleRecord] = []
        for bundle in batch.bundles:
            self.bundles_seen += 1
            self._ingested_metric.inc()
            if bundle.num_transactions == 1:
                if self._classifier.is_defensive(bundle):
                    new_defensive.append(bundle)
                    self._defensive_seen += 1
                else:
                    new_priority.append(bundle)
                    self._priority_seen += 1
            if bundle.num_transactions in self._wanted:
                self._register(bundle)
        for record in batch.details:
            if record.transaction_id not in self._details:
                self._details[record.transaction_id] = record
            index = self._tx_to_candidate.get(record.transaction_id)
            if index is not None:
                candidate = self._candidates.get(index)
                if candidate is not None:
                    candidate.missing.discard(record.transaction_id)
                    self.windows.touch(candidate.bundle.slot)
        verdicts = self._sweep()
        return self._delta(verdicts, new_defensive, new_priority)

    def _register(self, bundle: BundleRecord) -> None:
        index = self.candidates_registered
        self.candidates_registered += 1
        missing = {
            tx_id
            for tx_id in bundle.transaction_ids
            if tx_id not in self._details
        }
        self._candidates[index] = _Candidate(
            index=index, bundle=bundle, missing=missing
        )
        for tx_id in bundle.transaction_ids:
            self._tx_to_candidate[tx_id] = index
        self.windows.add(bundle.slot, index)

    def _sweep(self) -> list[VerdictRecord]:
        """Judge every complete candidate in a dirty window."""
        verdicts: list[VerdictRecord] = []
        for _key, members in self.windows.sweep_dirty():
            for index in members:
                candidate = self._candidates.get(index)
                if candidate is None or candidate.missing:
                    continue
                verdicts.append(self._judge(candidate, pending=False))
        return verdicts

    def _judge(self, candidate: _Candidate, pending: bool) -> VerdictRecord:
        """Run the batch detection stack over one candidate, once.

        A fresh per-candidate detector captures exactly the stats a
        monolithic detector would have accumulated for this bundle —
        including multi-window examinations (windowed kind) and the
        one-increment skipped-incomplete bookkeeping for bundles whose
        details never arrived.
        """
        detector = self.spec.build_detector()
        event = detector.detect_bundle(candidate.bundle, self)
        quantified: tuple[QuantifiedSandwich, ...] = ()
        if event is not None:
            quantified = (self._quantifier.quantify(event),)
            self.sandwiches += 1
        self.candidates_judged += 1
        self._judged_metric.inc(
            status="pending" if pending else "complete"
        )
        self._lag_gauge.set(
            self.candidates_registered - self.candidates_judged
        )
        del self._candidates[candidate.index]
        for tx_id in candidate.bundle.transaction_ids:
            if self._tx_to_candidate.get(tx_id) == candidate.index:
                del self._tx_to_candidate[tx_id]
        self.windows.discard(candidate.bundle.slot, candidate.index)
        return VerdictRecord(
            index=candidate.index,
            bundle_id=candidate.bundle.bundle_id,
            stats=detector.stats,
            quantified=quantified,
            pending=pending,
        )

    def finalize(self) -> ReportDelta:
        """Judge every still-unjudged candidate; emit the final delta.

        Candidates with missing details get the batch path's treatment:
        examined, counted skipped-incomplete, carried as pending. After
        this the stream's cumulative verdict set covers every candidate
        index exactly once.
        """
        verdicts: list[VerdictRecord] = []
        for index in sorted(self._candidates):
            candidate = self._candidates[index]
            verdicts.append(
                self._judge(candidate, pending=bool(candidate.missing))
            )
        return self._delta(verdicts, [], [], final=True)

    def _delta(
        self,
        verdicts: list[VerdictRecord],
        new_defensive: list[BundleRecord],
        new_priority: list[BundleRecord],
        final: bool = False,
    ) -> ReportDelta:
        return ReportDelta(
            verdicts=tuple(verdicts),
            new_defensive=tuple(new_defensive),
            new_priority=tuple(new_priority),
            bundles_seen=self.bundles_seen,
            candidates_registered=self.candidates_registered,
            candidates_judged=self.candidates_judged,
            sandwiches=self.sandwiches,
            final=final,
        )
