"""The asyncio producer/consumer graph that analyzes while collecting.

Three stages connected by two :class:`~repro.stream.queues.BoundedStreamQueue`
instances::

    producer ──batches──▶ detector stage ──deltas──▶ report builder

The producer publishes :class:`~repro.stream.events.StreamBatch` messages
(from a live campaign's collector tap, or from an existing archive in
attach mode); the detector stage folds each batch through the
:class:`~repro.stream.detector.StreamingDetector`; the builder stage
accumulates the resulting deltas so the final
:class:`~repro.core.pipeline.AnalysisReport` is one cheap merge away the
moment the last batch lands.

Shutdown is cooperative and deadlock-free by construction: each stage
closes its downstream queue in a ``finally`` block (close is synchronous
and wakes every waiter), and the detector stage also closes its *upstream*
queue on failure so a producer blocked on a full queue is released
immediately instead of waiting out its stall timeout.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import Awaitable, Callable

from repro.archive.database import ArchiveDatabase
from repro.archive.schema import bundle_from_row, detail_from_row
from repro.core.pipeline import AnalysisReport
from repro.dex.oracle import PriceOracle
from repro.errors import ConfigError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.parallel.chunks import DetectorSpec
from repro.stream.deltas import IncrementalReportBuilder, ReportDelta
from repro.stream.detector import StreamingDetector
from repro.stream.events import END_OF_STREAM, StreamBatch
from repro.stream.queues import BoundedStreamQueue

#: Signature of a producer stage: fed the batch queue, must close it when done.
Producer = Callable[[BoundedStreamQueue], Awaitable[None]]

#: Optional observer invoked with every delta the builder folds.
DeltaObserver = Callable[[ReportDelta], None]


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs for the streaming pipeline.

    ``queue_size`` bounds both inter-stage queues (and therefore peak
    memory); ``put_timeout_seconds`` is the stall guard that turns a dead
    consumer into a loud :class:`~repro.stream.queues.StreamStallError`
    instead of a silent hang; ``window_slots`` sizes the detector's
    sliding slot windows; ``batch_bundles`` is the attach-mode read chunk.
    """

    queue_size: int = 64
    put_timeout_seconds: float | None = 30.0
    window_slots: int = 32
    batch_bundles: int = 256

    def validate(self) -> None:
        """Reject non-positive sizes before any queue is built."""
        if self.queue_size < 1:
            raise ConfigError(
                f"queue_size must be >= 1, got {self.queue_size}"
            )
        if self.batch_bundles < 1:
            raise ConfigError(
                f"batch_bundles must be >= 1, got {self.batch_bundles}"
            )
        if (
            self.put_timeout_seconds is not None
            and self.put_timeout_seconds <= 0
        ):
            raise ConfigError("put_timeout_seconds must be positive or None")


async def _detector_stage(
    batches: BoundedStreamQueue,
    deltas: BoundedStreamQueue,
    detector: StreamingDetector,
) -> None:
    """Fold batches into deltas until end of stream, then finalize."""
    try:
        while True:
            item = await batches.get()
            if item is END_OF_STREAM:
                await deltas.put(detector.finalize())
                return
            await deltas.put(detector.ingest(item))
    finally:
        # Order matters: releasing a blocked producer first (upstream
        # close) means nobody is left parked on a full queue while the
        # builder drains the deltas already emitted.
        batches.close()
        deltas.close()


async def _builder_stage(
    deltas: BoundedStreamQueue,
    builder: IncrementalReportBuilder,
    on_delta: DeltaObserver | None = None,
) -> None:
    """Fold deltas into the report builder until end of stream."""
    while True:
        item = await deltas.get()
        if item is END_OF_STREAM:
            return
        builder.apply(item)
        if on_delta is not None:
            on_delta(item)


async def run_stages(
    producer: Producer,
    detector: StreamingDetector,
    builder: IncrementalReportBuilder,
    config: StreamConfig | None = None,
    metrics: MetricsRegistry | None = None,
    on_delta: DeltaObserver | None = None,
) -> None:
    """Run the three-stage graph to completion on the current loop.

    On success the builder holds every verdict (``builder.finalized`` is
    True). On failure the first stage exception propagates after the
    close cascade has released all other stages.
    """
    config = config or StreamConfig()
    config.validate()
    metrics = metrics if metrics is not None else NULL_REGISTRY
    batches = BoundedStreamQueue(
        config.queue_size,
        name="batches",
        metrics=metrics,
        put_timeout=config.put_timeout_seconds,
    )
    deltas = BoundedStreamQueue(
        config.queue_size,
        name="deltas",
        metrics=metrics,
        put_timeout=config.put_timeout_seconds,
    )

    async def _produce() -> None:
        try:
            await producer(batches)
        finally:
            batches.close()

    await asyncio.gather(
        _produce(),
        _detector_stage(batches, deltas, detector),
        _builder_stage(deltas, builder, on_delta),
    )


def archive_producer(
    database: ArchiveDatabase, config: StreamConfig
) -> Producer:
    """A producer that replays an existing archive in ``seq`` order.

    ``seq`` order equals original insertion order, so attach-mode
    streaming sees records exactly as a live campaign would have
    published them.
    """

    async def produce(queue: BoundedStreamQueue) -> None:
        conn = database.connection
        pending: list = []
        for row in conn.execute("SELECT * FROM bundles ORDER BY seq"):
            pending.append(bundle_from_row(row))
            if len(pending) >= config.batch_bundles:
                await queue.put(StreamBatch(bundles=tuple(pending)))
                pending = []
        if pending:
            await queue.put(StreamBatch(bundles=tuple(pending)))
        details: list = []
        for row in conn.execute("SELECT * FROM transactions ORDER BY seq"):
            details.append(detail_from_row(row))
            if len(details) >= config.batch_bundles:
                await queue.put(StreamBatch(details=tuple(details)))
                details = []
        if details:
            await queue.put(StreamBatch(details=tuple(details)))

    return produce


def analyze_archive_stream(
    database: ArchiveDatabase | str | Path,
    spec: DetectorSpec | None = None,
    oracle: PriceOracle | None = None,
    config: StreamConfig | None = None,
    metrics: MetricsRegistry | None = None,
    on_delta: DeltaObserver | None = None,
) -> AnalysisReport:
    """Attach-mode analysis: stream an archive through the online pipeline.

    Produces a report byte-identical (per
    :func:`repro.parallel.merge.report_bytes`) to
    ``AnalysisPipeline().analyze_store(ArchiveBundleStore.resume(db))``
    with the equivalent detector configuration, without materialising an
    in-memory store.
    """
    config = config or StreamConfig()
    owns_database = not isinstance(database, ArchiveDatabase)
    if owns_database:
        database = ArchiveDatabase(database, read_only=True)
    try:
        detector = StreamingDetector(
            spec=spec,
            oracle=oracle,
            window_slots=config.window_slots,
            metrics=metrics,
        )
        builder = IncrementalReportBuilder(
            spec=detector.spec, oracle=detector.oracle
        )
        asyncio.run(
            run_stages(
                archive_producer(database, config),
                detector,
                builder,
                config=config,
                metrics=metrics,
                on_delta=on_delta,
            )
        )
    finally:
        if owns_database:
            database.close()
    return builder.build(poll_overlap_fraction=None)
