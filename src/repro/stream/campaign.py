"""Analyze-while-collecting: a measurement campaign on the streaming graph.

Wraps :class:`~repro.collector.campaign.MeasurementCampaign` without
changing its collection behaviour: a tap on the campaign's
:class:`~repro.collector.store.BundleStore` buffers every genuinely-new
record, and the producer stage drives the simulation block by block
(via :meth:`~repro.simulation.engine.SimulationEngine.iter_day_blocks`),
publishing one :class:`~repro.stream.events.StreamBatch` per block onto
the bounded queue. Because the producer *awaits* the put, a slow detector
stage exerts backpressure straight onto the simulation/collection loop —
collection pacing stretches rather than memory growing without bound.

The detector and builder stages run concurrently, so the final report is
ready the moment the campaign's last drain completes — and it is
byte-identical to what the batch path would compute over the same store,
a contract the conformance oracle's ``stream`` column enforces.
"""

from __future__ import annotations

import asyncio

from repro.collector.campaign import CampaignResult, MeasurementCampaign
from repro.collector.detail_fetcher import DetailFetcherConfig
from repro.collector.poller import PollerConfig
from repro.collector.store import BundleStore
from repro.core.pipeline import AnalysisReport
from repro.dex.oracle import PriceOracle
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.explorer.service import ExplorerConfig
from repro.faults.plan import FaultPlan
from repro.obs.registry import MetricsRegistry
from repro.parallel.chunks import DetectorSpec
from repro.simulation.config import ScenarioConfig
from repro.simulation.downtime import DowntimeSchedule
from repro.stream.deltas import IncrementalReportBuilder
from repro.stream.detector import StreamingDetector
from repro.stream.events import StreamBatch
from repro.stream.pipeline import DeltaObserver, StreamConfig, run_stages
from repro.stream.queues import BoundedStreamQueue


class CollectorTap:
    """Buffers a store's genuinely-new records between publish points.

    Attached via :meth:`~repro.collector.store.BundleStore.attach_tap`;
    the store invokes :meth:`bundles_added` / :meth:`details_added` after
    dedup, so every record crosses the tap exactly once and in insertion
    order. :meth:`take` hands the buffer over as one immutable batch.
    """

    def __init__(self) -> None:
        self._bundles: list[BundleRecord] = []
        self._details: list[TransactionRecord] = []

    def bundles_added(self, records: list[BundleRecord]) -> None:
        """Store callback: freshly inserted bundles."""
        self._bundles.extend(records)

    def details_added(self, records: list[TransactionRecord]) -> None:
        """Store callback: freshly inserted transaction details."""
        self._details.extend(records)

    def take(self) -> StreamBatch | None:
        """Drain the buffer into a batch; ``None`` when nothing arrived."""
        if not self._bundles and not self._details:
            return None
        batch = StreamBatch(
            bundles=tuple(self._bundles), details=tuple(self._details)
        )
        self._bundles.clear()
        self._details.clear()
        return batch


class StreamingCampaign:
    """A measurement campaign whose analysis runs while it collects."""

    def __init__(
        self,
        scenario: ScenarioConfig,
        downtime: DowntimeSchedule | None = None,
        poller_config: PollerConfig | None = None,
        fetcher_config: DetailFetcherConfig | None = None,
        explorer_config: ExplorerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        store: BundleStore | None = None,
        fault_plan: FaultPlan | None = None,
        spec: DetectorSpec | None = None,
        oracle: PriceOracle | None = None,
        stream_config: StreamConfig | None = None,
        on_delta: DeltaObserver | None = None,
    ) -> None:
        self.campaign = MeasurementCampaign(
            scenario,
            downtime=downtime,
            poller_config=poller_config,
            fetcher_config=fetcher_config,
            explorer_config=explorer_config,
            metrics=metrics,
            store=store,
            fault_plan=fault_plan,
        )
        self.stream_config = stream_config or StreamConfig()
        self.stream_config.validate()
        self.on_delta = on_delta
        self.detector = StreamingDetector(
            spec=spec,
            oracle=oracle,
            window_slots=self.stream_config.window_slots,
            metrics=self.campaign.metrics,
        )
        self.builder = IncrementalReportBuilder(
            spec=self.detector.spec, oracle=self.detector.oracle
        )
        self.tap = CollectorTap()
        # Attached after construction (and after any resume-time load), so
        # only records collected by *this* run flow through the stream.
        self.campaign.store.attach_tap(self.tap)
        self.result: CampaignResult | None = None
        self.report: AnalysisReport | None = None

    async def _produce(self, queue: BoundedStreamQueue) -> None:
        """Drive the simulation block by block, publishing after each.

        The ``await`` on every put is the backpressure seam: when the
        detector stage falls behind, the producer — and with it the
        simulated poller cadence — stalls until capacity frees, so queue
        depth (and memory) stays bounded no matter how bursty collection
        gets.
        """
        campaign = self.campaign
        for day in range(campaign.scenario.days):
            for _block in campaign.engine.iter_day_blocks(day):
                batch = self.tap.take()
                if batch is not None:
                    await queue.put(batch)
        # The final sweep (finish + last poll + detail drain) lands the
        # tail of the data; publish it as the closing batch.
        self.result = campaign.finalize()
        batch = self.tap.take()
        if batch is not None:
            await queue.put(batch)

    def _publish_detection_metrics(self, report: AnalysisReport) -> None:
        """Mirror the batch pipeline's detection counters for the report.

        The campaign report's "Pipeline health" section reads the same
        ``detector_*``/``defensive_*`` counter names the batch
        :class:`~repro.core.pipeline.AnalysisPipeline` publishes; the
        merged report carries identical tallies, so publishing from it
        keeps the rendered section truthful for streamed runs.
        """
        metrics = self.campaign.metrics
        stats = report.detection_stats
        metrics.counter(
            "detector_bundles_examined_total",
            "Bundles evaluated against the five criteria.",
        ).inc(stats.bundles_examined)
        metrics.counter(
            "detector_sandwiches_total", "Bundles confirmed as sandwiches."
        ).inc(len(report.quantified))
        rejections = metrics.counter(
            "detector_rejections_total",
            "Bundles rejected during detection, by failing criterion.",
        )
        for criterion, count in sorted(
            stats.rejections_by_criterion.items()
        ):
            if count:
                rejections.inc(count, criterion=criterion)
        defensive = metrics.counter(
            "defensive_bundles_total",
            "Length-one bundles classified, defensive vs priority.",
        )
        defensive.inc(
            len(report.defensive.defensive), classification="defensive"
        )
        defensive.inc(
            len(report.defensive.priority), classification="priority"
        )

    async def run_async(self) -> tuple[CampaignResult, AnalysisReport]:
        """Run collection and analysis concurrently on the current loop."""
        await run_stages(
            self._produce,
            self.detector,
            self.builder,
            config=self.stream_config,
            metrics=self.campaign.metrics,
            on_delta=self.on_delta,
        )
        assert self.result is not None  # producer completed
        report = self.builder.build(
            poll_overlap_fraction=self.result.coverage.overlap_fraction()
        )
        self._publish_detection_metrics(report)
        # Mirror the batch pipeline's duck-typed persistence so an
        # archive-backed streaming campaign leaves the same analysis
        # tables behind.
        recorder = getattr(self.campaign.store, "record_analysis", None)
        if recorder is not None:
            recorder(report)
        self.report = report
        return self.result, report

    def run(self) -> tuple[CampaignResult, AnalysisReport]:
        """Blocking wrapper around :meth:`run_async`."""
        return asyncio.run(self.run_async())
