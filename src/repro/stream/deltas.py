"""Monotone report deltas and the incremental report builder.

The streaming detector judges each detection candidate exactly once and
emits the verdicts as :class:`ReportDelta` messages whose counters only
ever grow. :class:`IncrementalReportBuilder` folds the deltas as they
arrive, so the moment the final delta lands the full report is one
(cheap) merge away — there is no end-of-campaign detection pass at all.

Byte-identity with the batch path is inherited, not re-proven: every
judged candidate becomes a single-candidate
:class:`~repro.parallel.worker.ChunkOutcome` in candidate (collection)
order, and the builder hands them to the parallel tier's
:func:`~repro.parallel.merge.merge_outcomes` — the same deterministic
reducer that already guarantees sharded analysis is byte-identical to
serial. A trailing outcome carries the defensive classification and the
campaign bundle count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregate import headline_stats, sandwiches_per_day
from repro.core.detector import DetectionStats
from repro.core.pipeline import AnalysisReport
from repro.core.quantify import QuantifiedSandwich
from repro.dex.oracle import PriceOracle
from repro.errors import ConformanceError
from repro.explorer.models import BundleRecord
from repro.parallel.chunks import DetectorSpec
from repro.parallel.merge import merge_outcomes
from repro.parallel.worker import ChunkOutcome


@dataclass(frozen=True)
class VerdictRecord:
    """One candidate bundle's final judgement.

    ``stats`` is the candidate's exact contribution to the batch
    detector's bookkeeping (captured from a fresh detector, so windowed
    multi-window examinations and skipped-incomplete counts match a
    monolithic pass to the digit); ``quantified`` holds the priced event
    when the candidate was a sandwich; ``pending`` marks candidates whose
    details never arrived.
    """

    index: int
    bundle_id: str
    stats: DetectionStats
    quantified: tuple[QuantifiedSandwich, ...] = ()
    pending: bool = False


@dataclass(frozen=True)
class ReportDelta:
    """One ingest step's newly judged work plus cumulative progress.

    The cumulative counters are monotone by construction — each delta's
    values are >= its predecessor's — so any consumer (a progress line,
    a live dashboard) can render the latest delta alone without
    replaying history.
    """

    verdicts: tuple[VerdictRecord, ...] = ()
    new_defensive: tuple[BundleRecord, ...] = ()
    new_priority: tuple[BundleRecord, ...] = ()
    bundles_seen: int = 0
    candidates_registered: int = 0
    candidates_judged: int = 0
    sandwiches: int = 0
    final: bool = False

    @property
    def empty(self) -> bool:
        """Whether this delta carries no new verdicts or classifications."""
        return not (
            self.verdicts or self.new_defensive or self.new_priority
        )


class IncrementalReportBuilder:
    """Folds report deltas into the final campaign report.

    ``apply`` is cheap (list appends and counter updates); ``build``
    performs the single deterministic merge. The builder never inspects
    bundle contents — everything report-shaped was already decided by the
    detector stage.
    """

    def __init__(
        self,
        spec: DetectorSpec | None = None,
        oracle: PriceOracle | None = None,
    ) -> None:
        self.spec = spec or DetectorSpec()
        if oracle is None:
            oracle = (
                PriceOracle(self.spec.usd_per_sol)
                if self.spec.usd_per_sol is not None
                else PriceOracle()
            )
        self.oracle = oracle
        self._verdicts: dict[int, VerdictRecord] = {}
        self._defensive: list[BundleRecord] = []
        self._priority: list[BundleRecord] = []
        self.bundles_seen = 0
        self.candidates_registered = 0
        self.sandwiches = 0
        self.deltas_applied = 0
        self.finalized = False

    def apply(self, delta: ReportDelta) -> None:
        """Fold one delta; duplicate candidate verdicts fail loudly."""
        for verdict in delta.verdicts:
            if verdict.index in self._verdicts:
                raise ConformanceError(
                    f"candidate {verdict.index} judged twice "
                    f"(bundle {verdict.bundle_id}); the stream would "
                    "double-count its stats"
                )
            self._verdicts[verdict.index] = verdict
        self._defensive.extend(delta.new_defensive)
        self._priority.extend(delta.new_priority)
        self.bundles_seen = max(self.bundles_seen, delta.bundles_seen)
        self.candidates_registered = max(
            self.candidates_registered, delta.candidates_registered
        )
        self.sandwiches = max(self.sandwiches, delta.sandwiches)
        self.deltas_applied += 1
        if delta.final:
            self.finalized = True

    @property
    def candidates_judged(self) -> int:
        """Candidates folded so far."""
        return len(self._verdicts)

    def build(
        self, poll_overlap_fraction: float | None = None
    ) -> AnalysisReport:
        """Merge every folded verdict into the campaign report.

        The output is byte-identical (per
        :func:`repro.parallel.merge.report_bytes`) to
        ``AnalysisPipeline().analyze_store(store)`` over the same
        collected store: candidate outcomes are contiguous in collection
        order, the trailing outcome carries the classifier's output in
        arrival order, and ``merge_outcomes`` restores the serial sort
        and stats-accumulation order.
        """
        outcomes = [
            ChunkOutcome(
                index=verdict.index,
                bundle_count=0,
                quantified=verdict.quantified,
                defensive=(),
                priority=(),
                stats=verdict.stats,
                pending_detail_ids=(
                    (verdict.bundle_id,) if verdict.pending else ()
                ),
                elapsed_seconds=0.0,
                worker="stream",
            )
            for verdict in sorted(
                self._verdicts.values(), key=lambda v: v.index
            )
        ]
        outcomes.append(
            ChunkOutcome(
                index=len(outcomes),
                bundle_count=self.bundles_seen,
                quantified=(),
                defensive=tuple(self._defensive),
                priority=tuple(self._priority),
                stats=DetectionStats(),
                pending_detail_ids=(),
                elapsed_seconds=0.0,
                worker="stream",
            )
        )
        merged = merge_outcomes(
            outcomes, threshold_lamports=self.spec.threshold_lamports
        )
        daily = sandwiches_per_day(merged.quantified, self.oracle)
        headline = headline_stats(
            merged.quantified,
            merged.defensive_report,
            bundles_collected=merged.bundle_count,
            oracle=self.oracle,
            poll_overlap_fraction=poll_overlap_fraction,
        )
        return AnalysisReport(
            quantified=merged.quantified,
            defensive=merged.defensive_report,
            daily=daily,
            headline=headline,
            detection_stats=merged.stats,
        )
