"""Blocks: the per-slot unit of the ledger."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.constants import SLOT_DURATION_MS
from repro.solana.bank import TransactionReceipt
from repro.solana.keys import Pubkey
from repro.solana.transaction import Transaction


@dataclass
class ExecutedTransaction:
    """A transaction paired with its execution receipt, as stored on-chain."""

    transaction: Transaction
    receipt: TransactionReceipt


@dataclass
class Block:
    """One produced slot: leader, timestamp, and the executed transactions.

    Crucially — as the paper stresses — a block records *no trace of Jito
    bundling*: transactions that entered via a bundle are indistinguishable
    from native ones on the final ledger. Bundle structure only exists in
    Jito-side records (see :mod:`repro.explorer`).
    """

    slot: int
    leader: Pubkey
    parent_hash: str
    unix_timestamp: float
    transactions: list[ExecutedTransaction] = field(default_factory=list)

    @property
    def blockhash(self) -> str:
        """Hash chaining this block to its parent and contents."""
        digest = hashlib.sha256()
        digest.update(self.parent_hash.encode())
        digest.update(str(self.slot).encode())
        digest.update(self.leader.to_base58().encode())
        for executed in self.transactions:
            digest.update(executed.receipt.transaction_id.encode())
        return digest.hexdigest()

    @property
    def transaction_count(self) -> int:
        """Number of transactions included in the block."""
        return len(self.transactions)

    def end_timestamp(self) -> float:
        """Unix time at which the 400 ms slot window closes."""
        return self.unix_timestamp + SLOT_DURATION_MS / 1000.0
