"""Solana ledger substrate: keys, transactions, programs, bank, and blocks.

This package implements, from scratch, the slice of Solana semantics the
paper's measurement pipeline depends on: accounts holding lamports, an
SPL-style token layer, atomic transaction execution with base + priority
fees, 400 ms slots with a stake-weighted leader schedule, and per-transaction
balance-change receipts (the raw material for sandwich detection).
"""

from repro.solana.accounts import Account
from repro.solana.bank import Bank, TransactionReceipt
from repro.solana.blocks import Block
from repro.solana.instruction import AccountMeta, Instruction
from repro.solana.keys import Keypair, Pubkey, Signature
from repro.solana.ledger import Ledger
from repro.solana.leader_schedule import LeaderSchedule, Validator
from repro.solana.tokens import Mint
from repro.solana.transaction import Message, Transaction

__all__ = [
    "Account",
    "AccountMeta",
    "Bank",
    "Block",
    "Instruction",
    "Keypair",
    "LeaderSchedule",
    "Ledger",
    "Message",
    "Mint",
    "Pubkey",
    "Signature",
    "Transaction",
    "TransactionReceipt",
    "Validator",
]
