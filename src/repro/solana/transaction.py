"""Messages and signed transactions.

Matches Solana's model where it matters to the paper's analysis: a message
names a fee payer and an ordered instruction list; every required signer must
attach a valid signature; the fee payer's signature is the transaction id.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import InvalidSignatureError, TransactionError
from repro.solana.instruction import Instruction
from repro.solana.keys import Keypair, Pubkey, Signature, verify


@dataclass(frozen=True)
class Message:
    """The signed payload of a transaction."""

    fee_payer: Pubkey
    instructions: tuple[Instruction, ...]
    recent_blockhash: str = ""

    def required_signers(self) -> list[Pubkey]:
        """Fee payer first, then every instruction-level signer, deduplicated."""
        seen: dict[Pubkey, None] = {self.fee_payer: None}
        for instruction in self.instructions:
            for key in instruction.signer_keys():
                seen.setdefault(key, None)
        return list(seen)

    def serialize(self) -> bytes:
        """Canonical byte serialization used for signing and hashing.

        Memoized: a message is serialized at signing time and again at
        verification; the instance is frozen, so the bytes never change.
        """
        cached = getattr(self, "_serialized", None)
        if cached is not None:
            return cached
        payload = {
            "fee_payer": self.fee_payer.to_base58(),
            "recent_blockhash": self.recent_blockhash,
            "instructions": [
                {
                    "program_id": ix.program_id.to_base58(),
                    "accounts": [
                        [m.pubkey.to_base58(), m.is_signer, m.is_writable]
                        for m in ix.accounts
                    ],
                    "data": ix.data.hex(),
                }
                for ix in self.instructions
            ],
        }
        serialized = json.dumps(
            payload, separators=(",", ":"), sort_keys=True
        ).encode()
        object.__setattr__(self, "_serialized", serialized)
        return serialized

    def hash(self) -> str:
        """Hex digest of the serialized message."""
        return hashlib.sha256(self.serialize()).hexdigest()


_nonce_counter = 0


def reset_nonce_counter() -> None:
    """Restart the auto-nonce sequence.

    Called when a fresh, isolated simulation world is created so that a
    given (seed, scenario) pair reproduces identical transaction ids no
    matter what ran earlier in the process. Running two simulation worlds
    *interleaved* in one process is unsupported (their auto-nonces could
    collide); sequential worlds are fine.
    """
    global _nonce_counter
    _nonce_counter = 0


def _next_nonce() -> str:
    """A process-unique nonce standing in for a recent blockhash.

    On Solana two otherwise-identical transactions differ by their recent
    blockhash; the simulator assigns a deterministic counter instead, so
    repeated identical trades still get distinct signatures and ids.
    """
    global _nonce_counter
    _nonce_counter += 1
    return f"nonce-{_nonce_counter}"


@dataclass
class Transaction:
    """A message plus the signatures that authorize it."""

    message: Message
    signatures: dict[Pubkey, Signature] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        fee_payer: Keypair,
        instructions: list[Instruction],
        extra_signers: list[Keypair] | None = None,
        recent_blockhash: str = "",
    ) -> "Transaction":
        """Construct and fully sign a transaction in one step.

        When ``recent_blockhash`` is empty a unique nonce is substituted, so
        repeat trades never collide on transaction id.
        """
        message = Message(
            fee_payer=fee_payer.pubkey,
            instructions=tuple(instructions),
            recent_blockhash=recent_blockhash or _next_nonce(),
        )
        tx = cls(message=message)
        tx.sign(fee_payer)
        for signer in extra_signers or []:
            tx.sign(signer)
        return tx

    def sign(self, keypair: Keypair) -> None:
        """Attach ``keypair``'s signature over the message."""
        self.signatures[keypair.pubkey] = keypair.sign(self.message.serialize())

    @property
    def transaction_id(self) -> str:
        """The fee payer's signature in base58 — Solana's transaction id.

        Raises:
            TransactionError: if the transaction has not been signed yet.
        """
        signature = self.signatures.get(self.message.fee_payer)
        if signature is None:
            raise TransactionError("transaction is missing the fee payer signature")
        return signature.to_base58()

    @property
    def signer(self) -> Pubkey:
        """The fee payer, which the paper treats as the transaction's sender."""
        return self.message.fee_payer

    def verify_signatures(self) -> None:
        """Check that every required signer has attached a valid signature.

        Raises:
            InvalidSignatureError: on any missing or non-verifying signature.
        """
        serialized = self.message.serialize()
        for required in self.message.required_signers():
            signature = self.signatures.get(required)
            if signature is None:
                raise InvalidSignatureError(
                    f"missing signature from {required.to_base58()}"
                )
            if not verify(required, serialized, signature):
                raise InvalidSignatureError(
                    f"signature from {required.to_base58()} does not verify"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            tx_id = self.transaction_id[:12]
        except TransactionError:
            tx_id = "<unsigned>"
        return (
            f"Transaction({tx_id}, payer={self.message.fee_payer.to_base58()[:8]}, "
            f"n_ix={len(self.message.instructions)})"
        )
