"""Public keys, keypairs, and simulation-grade signatures.

Solana uses ed25519; this simulator substitutes a deterministic hash-based
scheme that preserves the *interface* (sign/verify over a serialized message,
base58-rendered 32-byte public keys and 64-byte signatures) without the
cryptographic hardness. Within the simulation the private key is publicly
derivable from the public key, which is what makes offline verification
possible without carrying key material around.

This is explicitly NOT a secure signature scheme — it exists so the bank can
exercise a real verify-before-execute code path and so detectors can rely on
"signed by the same account" exactly as the paper's heuristics do.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.utils.base58 import b58decode, b58encode

PUBKEY_LENGTH = 32
SIGNATURE_LENGTH = 64


def _hash32(*parts: bytes) -> bytes:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.digest()


def _hash64(*parts: bytes) -> bytes:
    first = _hash32(*parts)
    return first + _hash32(first)


_PUBKEY_B58_CACHE: dict[bytes, str] = {}
"""Pubkeys repeat across millions of encodings (wallets, mints, pools);
memoizing their base58 form is one of the simulator's hottest wins."""


@dataclass(frozen=True, order=True)
class Pubkey:
    """A 32-byte account address, rendered in base58."""

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != PUBKEY_LENGTH:
            raise ValueError(
                f"pubkey must be {PUBKEY_LENGTH} bytes, got {len(self.raw)}"
            )

    @classmethod
    def from_seed(cls, seed: str) -> "Pubkey":
        """Derive a deterministic address from a human-readable seed.

        Used for well-known program addresses and test fixtures.
        """
        return cls(_hash32(b"pubkey-seed:", seed.encode()))

    @classmethod
    def from_base58(cls, encoded: str) -> "Pubkey":
        """Parse a base58-rendered address."""
        return cls(b58decode(encoded))

    def to_base58(self) -> str:
        """Render the address in base58 (the canonical display form)."""
        cached = _PUBKEY_B58_CACHE.get(self.raw)
        if cached is None:
            cached = b58encode(self.raw)
            _PUBKEY_B58_CACHE[self.raw] = cached
        return cached

    def __str__(self) -> str:
        return self.to_base58()

    def __repr__(self) -> str:
        return f"Pubkey({self.to_base58()!r})"


@dataclass(frozen=True)
class Signature:
    """A 64-byte transaction signature, rendered in base58.

    As on Solana, the fee payer's signature doubles as the transaction id —
    so the encoding is computed once and memoized on the instance.
    """

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != SIGNATURE_LENGTH:
            raise ValueError(
                f"signature must be {SIGNATURE_LENGTH} bytes, got {len(self.raw)}"
            )
        object.__setattr__(self, "_b58", None)

    def to_base58(self) -> str:
        """Render the signature in base58 (memoized)."""
        cached = self._b58
        if cached is None:
            cached = b58encode(self.raw)
            object.__setattr__(self, "_b58", cached)
        return cached

    def __str__(self) -> str:
        return self.to_base58()

    def __repr__(self) -> str:
        return f"Signature({self.to_base58()[:16]!r}...)"


def _derive_private(pubkey: Pubkey) -> bytes:
    """Simulation-grade private key derivation (publicly computable)."""
    return _hash32(b"private:", pubkey.raw)


class Keypair:
    """A signing identity.

    Create one deterministically from a seed string; every agent in the
    simulation owns one.
    """

    def __init__(self, seed: str) -> None:
        self._seed = seed
        self._pubkey = Pubkey(_hash32(b"keypair:", seed.encode()))
        self._private = _derive_private(self._pubkey)

    @property
    def pubkey(self) -> Pubkey:
        """The public address of this keypair."""
        return self._pubkey

    @property
    def seed(self) -> str:
        """The seed the keypair was derived from."""
        return self._seed

    def sign(self, message: bytes) -> Signature:
        """Sign a serialized message."""
        return Signature(_hash64(b"sig:", self._private, message))

    def __repr__(self) -> str:
        return f"Keypair({self._seed!r} -> {self._pubkey.to_base58()[:8]}...)"


def verify(pubkey: Pubkey, message: bytes, signature: Signature) -> bool:
    """Check that ``signature`` is ``pubkey``'s signature over ``message``."""
    expected = _hash64(b"sig:", _derive_private(pubkey), message)
    return signature.raw == expected
