"""Token mints.

The paper's detection criteria reason about "the same set of minted coins
being traded" across a bundle; a :class:`Mint` is the identity of one such
coin. SOL itself is represented by the sentinel :data:`SOL_MINT` so that
trade extraction can treat native and token legs uniformly (Solana does the
same via wrapped SOL).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.solana.keys import Pubkey


@dataclass(frozen=True)
class Mint:
    """A token type: address, display symbol, and decimal precision."""

    address: Pubkey
    symbol: str
    decimals: int = 9

    @classmethod
    def from_symbol(cls, symbol: str, decimals: int = 9) -> "Mint":
        """Derive a deterministic mint for a symbol (test/simulation use)."""
        return cls(
            address=Pubkey.from_seed(f"mint:{symbol}"),
            symbol=symbol,
            decimals=decimals,
        )

    def to_base_units(self, ui_amount: float) -> int:
        """Convert a UI amount (e.g. 1.5 SOL) to integer base units."""
        return int(round(ui_amount * 10**self.decimals))

    def to_ui_amount(self, base_units: int) -> float:
        """Convert integer base units to a UI amount."""
        return base_units / 10**self.decimals

    def __str__(self) -> str:
        return self.symbol


SOL_MINT = Mint(address=Pubkey.from_seed("mint:SOL-native"), symbol="SOL", decimals=9)
"""Sentinel mint for native SOL (analogous to wrapped SOL)."""
