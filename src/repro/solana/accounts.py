"""Account state held by the bank."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solana.instruction import SYSTEM_PROGRAM_ID
from repro.solana.keys import Pubkey


@dataclass
class Account:
    """A ledger account: a lamport balance plus an owning program.

    Token balances are tracked separately by the bank's token ledger (this
    simulator models associated token accounts implicitly, keyed by
    ``(owner, mint)``), so ``data`` is only used by programs that need
    scratch state.
    """

    lamports: int = 0
    owner: Pubkey = SYSTEM_PROGRAM_ID
    data: dict = field(default_factory=dict)

    def credit(self, amount: int) -> None:
        """Add lamports to the account."""
        if amount < 0:
            raise ValueError(f"credit must be non-negative, got {amount}")
        self.lamports += amount

    def debit(self, amount: int) -> None:
        """Remove lamports; the caller is responsible for balance checks."""
        if amount < 0:
            raise ValueError(f"debit must be non-negative, got {amount}")
        self.lamports -= amount
