"""Transaction fee model: base fee plus an optional priority fee.

Mirrors the structure the paper describes (Section 2.1): a 5,000-lamport base
fee, plus an optional priority fee paid to the validator for faster
acceptance. Priority fees are requested through compute-budget instructions,
as on mainnet.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.constants import BASE_FEE_LAMPORTS
from repro.solana.instruction import COMPUTE_BUDGET_PROGRAM_ID, Instruction
from repro.solana.transaction import Transaction

DEFAULT_COMPUTE_UNITS = 200_000
MICRO_LAMPORTS_PER_LAMPORT = 1_000_000


def set_compute_unit_price(micro_lamports: int) -> Instruction:
    """Build a compute-budget instruction requesting a priority fee."""
    if micro_lamports < 0:
        raise ValueError(f"compute unit price must be >= 0, got {micro_lamports}")
    payload = {"op": "set_compute_unit_price", "micro_lamports": micro_lamports}
    return Instruction(
        program_id=COMPUTE_BUDGET_PROGRAM_ID,
        data=json.dumps(payload, sort_keys=True).encode(),
    )


def set_compute_unit_limit(units: int) -> Instruction:
    """Build a compute-budget instruction capping compute units."""
    if units <= 0:
        raise ValueError(f"compute unit limit must be positive, got {units}")
    payload = {"op": "set_compute_unit_limit", "units": units}
    return Instruction(
        program_id=COMPUTE_BUDGET_PROGRAM_ID,
        data=json.dumps(payload, sort_keys=True).encode(),
    )


@dataclass(frozen=True)
class FeeBreakdown:
    """Fee components of one transaction."""

    base_fee: int
    priority_fee: int

    @property
    def total(self) -> int:
        """Total lamports charged to the fee payer."""
        return self.base_fee + self.priority_fee


class FeeSchedule:
    """Computes the fee owed by a transaction."""

    def __init__(self, base_fee_lamports: int = BASE_FEE_LAMPORTS) -> None:
        if base_fee_lamports < 0:
            raise ValueError(f"base fee must be >= 0, got {base_fee_lamports}")
        self._base_fee = base_fee_lamports

    @property
    def base_fee_lamports(self) -> int:
        """The flat per-transaction fee."""
        return self._base_fee

    def breakdown(self, tx: Transaction) -> FeeBreakdown:
        """Compute base and priority components for ``tx``.

        The priority fee is ``compute_units * unit_price`` (in micro-lamports,
        rounded up), using the transaction's requested limit or the default.
        """
        unit_price = 0
        units = DEFAULT_COMPUTE_UNITS
        for instruction in tx.message.instructions:
            if instruction.program_id != COMPUTE_BUDGET_PROGRAM_ID:
                continue
            payload = json.loads(instruction.data.decode())
            if payload.get("op") == "set_compute_unit_price":
                unit_price = int(payload["micro_lamports"])
            elif payload.get("op") == "set_compute_unit_limit":
                units = int(payload["units"])
        priority = -(-units * unit_price // MICRO_LAMPORTS_PER_LAMPORT)
        return FeeBreakdown(base_fee=self._base_fee, priority_fee=priority)
