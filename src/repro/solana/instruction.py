"""Instructions, account metas, and well-known program addresses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solana.keys import Pubkey

# Well-known program addresses (deterministic, simulation-local).
SYSTEM_PROGRAM_ID = Pubkey.from_seed("program:system")
TOKEN_PROGRAM_ID = Pubkey.from_seed("program:spl-token")
COMPUTE_BUDGET_PROGRAM_ID = Pubkey.from_seed("program:compute-budget")
DEX_PROGRAM_ID = Pubkey.from_seed("program:dex-amm")
MEMO_PROGRAM_ID = Pubkey.from_seed("program:memo")


@dataclass(frozen=True)
class AccountMeta:
    """One account referenced by an instruction."""

    pubkey: Pubkey
    is_signer: bool = False
    is_writable: bool = False


@dataclass(frozen=True)
class Instruction:
    """A single program invocation.

    ``data`` carries the program-specific payload; this simulator encodes
    payloads as UTF-8 JSON produced by each program's builder functions, so
    instructions remain introspectable in tests and stored records.
    """

    program_id: Pubkey
    accounts: tuple[AccountMeta, ...] = field(default_factory=tuple)
    data: bytes = b""

    def signer_keys(self) -> list[Pubkey]:
        """All accounts this instruction requires signatures from."""
        return [meta.pubkey for meta in self.accounts if meta.is_signer]

    def writable_keys(self) -> list[Pubkey]:
        """All accounts this instruction may mutate."""
        return [meta.pubkey for meta in self.accounts if meta.is_writable]
