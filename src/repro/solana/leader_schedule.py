"""Validators and the stake-weighted leader schedule.

The paper notes that over 97% of validators run a Jito-compatible client,
including every member of the super-minority. The schedule here models that
mix: each slot's leader is drawn stake-weighted, and each validator is
flagged as running Jito (bundle-accepting) or not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.solana.keys import Pubkey
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class Validator:
    """A block-producing identity with delegated stake."""

    identity: Pubkey
    stake_lamports: int
    runs_jito: bool = True
    name: str = ""


class LeaderSchedule:
    """Deterministic stake-weighted slot-to-leader assignment.

    Leaders are drawn per-slot with probability proportional to stake, using
    a named RNG substream so the schedule is stable across unrelated
    simulation changes.
    """

    def __init__(self, validators: list[Validator], rng: DeterministicRNG) -> None:
        if not validators:
            raise ConfigError("leader schedule requires at least one validator")
        total_stake = sum(v.stake_lamports for v in validators)
        if total_stake <= 0:
            raise ConfigError("total stake must be positive")
        self._validators = list(validators)
        self._weights = [v.stake_lamports / total_stake for v in validators]
        self._rng = rng.child("leader-schedule")
        self._cache: dict[int, Validator] = {}

    @property
    def validators(self) -> list[Validator]:
        """All validators in the schedule (a copy)."""
        return list(self._validators)

    def jito_stake_fraction(self) -> float:
        """Fraction of total stake held by Jito-running validators."""
        total = sum(v.stake_lamports for v in self._validators)
        jito = sum(v.stake_lamports for v in self._validators if v.runs_jito)
        return jito / total

    def leader_for_slot(self, slot: int) -> Validator:
        """The validator scheduled to produce ``slot`` (memoized, stable)."""
        if slot < 0:
            raise ConfigError(f"slot must be non-negative, got {slot}")
        leader = self._cache.get(slot)
        if leader is None:
            slot_rng = self._rng.child(f"slot:{slot}")
            threshold = slot_rng.random()
            cumulative = 0.0
            leader = self._validators[-1]
            for validator, weight in zip(self._validators, self._weights):
                cumulative += weight
                if threshold < cumulative:
                    leader = validator
                    break
            self._cache[slot] = leader
        return leader


def default_validator_set(
    count: int = 20,
    jito_fraction: float = 0.97,
    rng: DeterministicRNG | None = None,
) -> list[Validator]:
    """Build a plausible validator set: Zipf-ish stake, ~97% running Jito."""
    if count < 1:
        raise ConfigError(f"need at least one validator, got {count}")
    if not 0.0 <= jito_fraction <= 1.0:
        raise ConfigError(f"jito_fraction must be in [0, 1], got {jito_fraction}")
    rng = (rng or DeterministicRNG(0)).child("validator-set")
    validators = []
    non_jito_budget = round(count * (1.0 - jito_fraction))
    # The largest validators all run Jito (the paper: the entire
    # super-minority runs a Jito-compatible client); non-Jito validators
    # are drawn from the low-stake tail.
    for index in range(count):
        stake = int(1_000_000 * 10**9 / (index + 1))  # Zipf-like stake curve
        runs_jito = index < count - non_jito_budget
        validators.append(
            Validator(
                identity=Pubkey.from_seed(f"validator:{index}"),
                stake_lamports=stake,
                runs_jito=runs_jito,
                name=f"validator-{index}",
            )
        )
    return validators
