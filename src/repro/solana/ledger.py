"""The ledger: an append-only chain of blocks with lookup indexes."""

from __future__ import annotations

from typing import Iterator

from repro.errors import TransactionError
from repro.solana.blocks import Block, ExecutedTransaction

GENESIS_HASH = "genesis"


class Ledger:
    """Append-only block store with a transaction-id index.

    This is the "final Solana ledger" of the paper: the ground truth the
    detail endpoint serves transaction contents from, and the substrate the
    bundle-blind baseline detector scans.
    """

    def __init__(self) -> None:
        self._blocks: list[Block] = []
        self._by_slot: dict[int, Block] = {}
        self._tx_index: dict[str, tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def tip_hash(self) -> str:
        """Blockhash of the latest block (genesis sentinel when empty)."""
        return self._blocks[-1].blockhash if self._blocks else GENESIS_HASH

    @property
    def tip_slot(self) -> int:
        """Slot of the latest block (-1 when empty)."""
        return self._blocks[-1].slot if self._blocks else -1

    def append(self, block: Block) -> None:
        """Append a block; slots must strictly increase.

        Raises:
            TransactionError: on slot regression or duplicate transaction ids.
        """
        if block.slot <= self.tip_slot:
            raise TransactionError(
                f"block slot {block.slot} does not advance past {self.tip_slot}"
            )
        for position, executed in enumerate(block.transactions):
            tx_id = executed.receipt.transaction_id
            if tx_id in self._tx_index:
                raise TransactionError(f"duplicate transaction id {tx_id[:12]}")
            self._tx_index[tx_id] = (block.slot, position)
        self._blocks.append(block)
        self._by_slot[block.slot] = block

    def block_at_slot(self, slot: int) -> Block | None:
        """The block produced at ``slot``, or None for skipped slots."""
        return self._by_slot.get(slot)

    def blocks(self) -> Iterator[Block]:
        """Iterate blocks in chain order."""
        return iter(self._blocks)

    def get_transaction(self, tx_id: str) -> ExecutedTransaction | None:
        """Look up an executed transaction by id."""
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        slot, position = location
        return self._by_slot[slot].transactions[position]

    def transaction_count(self) -> int:
        """Total transactions across all blocks."""
        return len(self._tx_index)

    def executed_transactions(self) -> Iterator[ExecutedTransaction]:
        """Iterate every executed transaction in chain order."""
        for block in self._blocks:
            yield from block.transactions
