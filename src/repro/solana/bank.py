"""The bank: account state plus atomic transaction execution.

Produces per-transaction receipts carrying balance deltas and structured
events (swaps, transfers). Those receipts are exactly the artifact the
paper's detail-fetching step retrieves for length-three bundles and feeds to
the sandwich detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import (
    AccountNotFoundError,
    InsufficientFundsError,
    ProgramError,
    TransactionError,
)
from repro.solana.accounts import Account
from repro.solana.fees import FeeBreakdown, FeeSchedule
from repro.solana.instruction import (
    COMPUTE_BUDGET_PROGRAM_ID,
    SYSTEM_PROGRAM_ID,
    TOKEN_PROGRAM_ID,
)
from repro.solana.keys import Keypair, Pubkey
from repro.solana.program import ProgramProcessor
from repro.solana import system_program, token_program
from repro.solana.transaction import Transaction


@dataclass
class TransactionReceipt:
    """The observable outcome of one executed transaction.

    ``token_deltas`` maps owner base58 -> mint base58 -> signed base-unit
    change; ``lamport_deltas`` maps owner base58 -> signed lamport change
    (inclusive of fees and transfers). ``events`` holds structured program
    events such as DEX swaps and lamport transfers.
    """

    transaction_id: str
    slot: int
    success: bool
    error: str | None
    fee: FeeBreakdown
    fee_payer: str
    signers: list[str]
    token_deltas: dict[str, dict[str, int]] = field(default_factory=dict)
    lamport_deltas: dict[str, int] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    logs: list[str] = field(default_factory=list)


class Bank:
    """Executes transactions against in-memory account state.

    Individual transactions are atomic; :meth:`execute_atomic` additionally
    makes a *sequence* of transactions all-or-nothing, which is how the Jito
    block engine runs bundles.
    """

    def __init__(self, fee_schedule: FeeSchedule | None = None) -> None:
        self._accounts: dict[Pubkey, Account] = {}
        self._token_balances: dict[tuple[Pubkey, Pubkey], int] = {}
        self._fee_schedule = fee_schedule or FeeSchedule()
        self._fee_collector: Pubkey | None = None
        self._processors: dict[Pubkey, ProgramProcessor] = {
            SYSTEM_PROGRAM_ID: system_program.process,
            TOKEN_PROGRAM_ID: token_program.process,
        }
        self._slot = 0
        self._transactions_executed = 0
        # Per-transaction execution context. The journal records, in order,
        # the *pre-mutation* value of every balance a transaction touches;
        # it doubles as the rollback log and the delta baseline.
        self._journal: list[tuple] = []
        self._current_signers: frozenset[Pubkey] = frozenset()
        self._current_logs: list[str] = []
        self._current_events: list[dict] = []

    # --- configuration ---------------------------------------------------

    @property
    def fee_schedule(self) -> FeeSchedule:
        """The fee schedule applied to every transaction."""
        return self._fee_schedule

    @property
    def slot(self) -> int:
        """The slot stamped onto receipts (set by the block producer)."""
        return self._slot

    def set_slot(self, slot: int) -> None:
        """Advance the slot counter; receipts record the slot they ran in."""
        if slot < self._slot:
            raise TransactionError(
                f"slot cannot move backwards: {slot} < {self._slot}"
            )
        self._slot = slot

    @property
    def transactions_executed(self) -> int:
        """Count of successfully committed transactions."""
        return self._transactions_executed

    def set_fee_collector(self, collector: Pubkey | None) -> None:
        """Direct transaction fees to a validator identity (None burns them)."""
        self._fee_collector = collector

    def register_program(
        self, program_id: Pubkey, processor: ProgramProcessor
    ) -> None:
        """Install a program processor (e.g. the DEX AMM program)."""
        self._processors[program_id] = processor

    # --- account management -------------------------------------------------

    def create_account(self, pubkey: Pubkey, lamports: int = 0) -> Account:
        """Create (or top up) an account with an initial lamport balance."""
        account = self._accounts.get(pubkey)
        if account is None:
            account = Account(lamports=lamports)
            self._accounts[pubkey] = account
        else:
            account.credit(lamports)
        return account

    def fund(self, keypair_or_pubkey: Keypair | Pubkey, lamports: int) -> None:
        """Airdrop lamports to an account, creating it if needed."""
        pubkey = (
            keypair_or_pubkey.pubkey
            if isinstance(keypair_or_pubkey, Keypair)
            else keypair_or_pubkey
        )
        self.create_account(pubkey, lamports)

    def fund_tokens(self, owner: Pubkey, mint: Pubkey, amount: int) -> None:
        """Airdrop tokens to an owner (simulation seeding)."""
        if amount < 0:
            raise TransactionError(f"cannot fund negative tokens: {amount}")
        key = (owner, mint)
        self._token_balances[key] = self._token_balances.get(key, 0) + amount

    def account_exists(self, pubkey: Pubkey) -> bool:
        """Whether the bank knows this account."""
        return pubkey in self._accounts

    # --- BankView interface (used by program processors) ----------------------

    def lamport_balance(self, pubkey: Pubkey) -> int:
        """Lamports held by ``pubkey`` (0 for unknown accounts)."""
        account = self._accounts.get(pubkey)
        return account.lamports if account else 0

    def token_balance(self, owner: Pubkey, mint: Pubkey) -> int:
        """Base-unit token balance of ``owner`` for ``mint``."""
        return self._token_balances.get((owner, mint), 0)

    def is_signer(self, pubkey: Pubkey) -> bool:
        """Whether ``pubkey`` signed the currently executing transaction."""
        return pubkey in self._current_signers

    def log(self, message: str) -> None:
        """Append to the current transaction's log."""
        self._current_logs.append(message)

    def emit_event(self, event: dict) -> None:
        """Record a structured program event on the current receipt."""
        self._current_events.append(dict(event))

    def transfer_lamports(self, source: Pubkey, dest: Pubkey, lamports: int) -> None:
        """Journaled lamport transfer with balance enforcement."""
        if lamports < 0:
            raise ProgramError(f"negative lamport transfer: {lamports}")
        source_account = self._accounts.get(source)
        if source_account is None:
            raise AccountNotFoundError(f"unknown account {source.to_base58()}")
        if source_account.lamports < lamports:
            raise InsufficientFundsError(
                f"{source.to_base58()} has {source_account.lamports} lamports, "
                f"needs {lamports}"
            )
        dest_account = self._accounts.get(dest)
        if dest_account is None:
            dest_account = self.create_account(dest)
        self._journal_lamports(source)
        self._journal_lamports(dest)
        source_account.debit(lamports)
        dest_account.credit(lamports)

    def transfer_tokens(
        self, source: Pubkey, dest: Pubkey, mint: Pubkey, amount: int
    ) -> None:
        """Journaled token transfer with balance enforcement."""
        if amount < 0:
            raise ProgramError(f"negative token transfer: {amount}")
        source_key = (source, mint)
        balance = self._token_balances.get(source_key, 0)
        if balance < amount:
            raise InsufficientFundsError(
                f"{source.to_base58()} has {balance} of {mint.to_base58()[:8]}, "
                f"needs {amount}"
            )
        dest_key = (dest, mint)
        self._journal_tokens(source_key)
        self._journal_tokens(dest_key)
        self._token_balances[source_key] = balance - amount
        self._token_balances[dest_key] = (
            self._token_balances.get(dest_key, 0) + amount
        )

    def mint_tokens(self, dest: Pubkey, mint: Pubkey, amount: int) -> None:
        """Journaled token creation."""
        if amount < 0:
            raise ProgramError(f"cannot mint negative amount: {amount}")
        dest_key = (dest, mint)
        self._journal_tokens(dest_key)
        self._token_balances[dest_key] = (
            self._token_balances.get(dest_key, 0) + amount
        )

    # --- journal ------------------------------------------------------------------

    def _journal_lamports(self, pubkey: Pubkey) -> None:
        self._journal.append(("lamports", pubkey, self.lamport_balance(pubkey)))

    def _journal_tokens(self, key: tuple[Pubkey, Pubkey]) -> None:
        self._journal.append(("tokens", key, self._token_balances.get(key, 0)))

    def _checkpoint(self) -> int:
        return len(self._journal)

    def _rollback_to(self, checkpoint: int) -> None:
        while len(self._journal) > checkpoint:
            kind, key, old_value = self._journal.pop()
            if kind == "lamports":
                account = self._accounts.get(key)
                if account is None:
                    account = self.create_account(key)
                account.lamports = old_value
            else:
                self._token_balances[key] = old_value

    def _deltas_since(
        self, checkpoint: int
    ) -> tuple[dict[str, int], dict[str, dict[str, int]]]:
        """Balance changes since ``checkpoint``, derived from the journal.

        The first journal entry per key inside the window holds the true
        pre-transaction value, so deltas are exact even for accounts created
        mid-transaction.
        """
        first_lamports: dict[Pubkey, int] = {}
        first_tokens: dict[tuple[Pubkey, Pubkey], int] = {}
        for kind, key, old_value in self._journal[checkpoint:]:
            if kind == "lamports":
                first_lamports.setdefault(key, old_value)
            else:
                first_tokens.setdefault(key, old_value)
        lamport_deltas: dict[str, int] = {}
        for pubkey, pre in first_lamports.items():
            delta = self.lamport_balance(pubkey) - pre
            if delta:
                lamport_deltas[pubkey.to_base58()] = delta
        token_deltas: dict[str, dict[str, int]] = {}
        for (owner, mint), pre in first_tokens.items():
            delta = self._token_balances.get((owner, mint), 0) - pre
            if delta:
                token_deltas.setdefault(owner.to_base58(), {})[
                    mint.to_base58()
                ] = delta
        return lamport_deltas, token_deltas

    def finalize_out_of_band(self) -> None:
        """Commit direct (non-transaction) mutations by clearing the journal.

        Native programs run inside transactions, where the public execute
        methods manage the journal; protocol-level sweeps (the epoch tip
        distribution) mutate balances directly and must call this afterwards
        so the rollback log does not grow without bound. Never call it while
        a transaction is executing.
        """
        del self._journal[:]

    # --- execution ------------------------------------------------------------------

    def execute_transaction(self, tx: Transaction) -> TransactionReceipt:
        """Execute one transaction atomically.

        On any failure (bad signature, insufficient fee, program error) all
        effects including the fee are rolled back and the receipt reports
        ``success=False``.
        """
        receipt = self._execute(tx)
        if receipt.success:
            self._transactions_executed += 1
        del self._journal[:]  # committed (or rolled back): baseline no longer needed
        return receipt

    def execute_atomic(
        self, txs: Iterable[Transaction]
    ) -> list[TransactionReceipt]:
        """Execute a sequence all-or-nothing (Jito bundle semantics).

        If any transaction fails, every prior transaction in the sequence is
        rolled back and the partial receipt list (ending with the failing
        receipt) is returned with the bank state unchanged.
        """
        checkpoint = self._checkpoint()
        receipts: list[TransactionReceipt] = []
        committed = 0
        for tx in txs:
            receipt = self._execute(tx)
            receipts.append(receipt)
            if not receipt.success:
                self._rollback_to(checkpoint)
                return receipts
            committed += 1
        self._transactions_executed += committed
        del self._journal[checkpoint:]  # committed: baseline no longer needed
        return receipts

    def simulate_atomic(
        self, txs: Iterable[Transaction]
    ) -> list[TransactionReceipt]:
        """Dry-run a sequence atomically, then roll everything back.

        The equivalent of Jito's ``simulateBundle``: searchers check that a
        bundle would land before bidding tips on it. Receipts reflect what
        execution *would* have produced; bank state is untouched either way.
        """
        checkpoint = self._checkpoint()
        receipts: list[TransactionReceipt] = []
        for tx in txs:
            receipt = self._execute(tx)
            receipts.append(receipt)
            if not receipt.success:
                break
        self._rollback_to(checkpoint)
        return receipts

    def _execute(self, tx: Transaction) -> TransactionReceipt:
        self._current_logs = []
        self._current_events = []
        fee = self._fee_schedule.breakdown(tx)
        checkpoint = self._checkpoint()

        def make_receipt(success: bool, error: str | None) -> TransactionReceipt:
            lamport_deltas, token_deltas = self._deltas_since(checkpoint)
            return TransactionReceipt(
                transaction_id=tx.transaction_id,
                slot=self._slot,
                success=success,
                error=error,
                fee=fee,
                fee_payer=tx.message.fee_payer.to_base58(),
                signers=[k.to_base58() for k in tx.message.required_signers()],
                token_deltas=token_deltas,
                lamport_deltas=lamport_deltas,
                events=list(self._current_events),
                logs=list(self._current_logs),
            )

        try:
            tx.verify_signatures()
        except TransactionError as exc:
            return make_receipt(False, str(exc))

        self._current_signers = frozenset(tx.signatures)
        try:
            payer_account = self._accounts.get(tx.message.fee_payer)
            if payer_account is None:
                raise AccountNotFoundError(
                    f"fee payer {tx.message.fee_payer.to_base58()} does not exist"
                )
            if payer_account.lamports < fee.total:
                raise InsufficientFundsError(
                    f"fee payer has {payer_account.lamports} lamports, "
                    f"fee is {fee.total}"
                )
            self._journal_lamports(tx.message.fee_payer)
            payer_account.debit(fee.total)
            if self._fee_collector is not None:
                collector = self._accounts.get(self._fee_collector)
                if collector is None:
                    collector = self.create_account(self._fee_collector)
                self._journal_lamports(self._fee_collector)
                collector.credit(fee.total)

            for instruction in tx.message.instructions:
                if instruction.program_id == COMPUTE_BUDGET_PROGRAM_ID:
                    continue  # consumed by the fee schedule, not executed
                processor = self._processors.get(instruction.program_id)
                if processor is None:
                    raise ProgramError(
                        f"unknown program {instruction.program_id.to_base58()}"
                    )
                processor(self, instruction)
        except TransactionError as exc:
            self._rollback_to(checkpoint)
            receipt = make_receipt(False, str(exc))
            self._current_signers = frozenset()
            return receipt

        receipt = make_receipt(True, None)
        self._current_signers = frozenset()
        return receipt
