"""SPL-style token program: token transfers and minting.

The simulator models associated token accounts implicitly — balances are
keyed by ``(owner, mint)`` in the bank — which is the granularity the
paper's balance-delta analysis operates at.
"""

from __future__ import annotations

import json

from repro.errors import ProgramError
from repro.solana.instruction import TOKEN_PROGRAM_ID, AccountMeta, Instruction
from repro.solana.keys import Pubkey
from repro.solana.program import BankView


def transfer(source: Pubkey, dest: Pubkey, mint: Pubkey, amount: int) -> Instruction:
    """Build a token transfer instruction (source owner must sign)."""
    if amount <= 0:
        raise ValueError(f"token transfer amount must be positive, got {amount}")
    payload = {"op": "transfer", "mint": mint.to_base58(), "amount": amount}
    return Instruction(
        program_id=TOKEN_PROGRAM_ID,
        accounts=(
            AccountMeta(source, is_signer=True, is_writable=True),
            AccountMeta(dest, is_writable=True),
        ),
        data=json.dumps(payload, sort_keys=True).encode(),
    )


def mint_to(authority: Pubkey, dest: Pubkey, mint: Pubkey, amount: int) -> Instruction:
    """Build a mint instruction (simulation faucet; authority must sign)."""
    if amount <= 0:
        raise ValueError(f"mint amount must be positive, got {amount}")
    payload = {"op": "mint_to", "mint": mint.to_base58(), "amount": amount}
    return Instruction(
        program_id=TOKEN_PROGRAM_ID,
        accounts=(
            AccountMeta(authority, is_signer=True),
            AccountMeta(dest, is_writable=True),
        ),
        data=json.dumps(payload, sort_keys=True).encode(),
    )


def process(bank: BankView, instruction: Instruction) -> None:
    """Execute a token-program instruction.

    Raises:
        ProgramError: on malformed payloads, unknown ops, or missing signers.
    """
    try:
        payload = json.loads(instruction.data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProgramError(f"token program: malformed payload: {exc}") from exc

    op = payload.get("op")
    if len(instruction.accounts) != 2:
        raise ProgramError(
            f"token program expects 2 accounts, got {len(instruction.accounts)}"
        )
    first = instruction.accounts[0].pubkey
    second = instruction.accounts[1].pubkey
    mint = Pubkey.from_base58(payload["mint"])
    amount = int(payload["amount"])

    if op == "transfer":
        if not bank.is_signer(first):
            raise ProgramError(
                f"token transfer source {first.to_base58()} did not sign"
            )
        bank.transfer_tokens(first, second, mint, amount)
        bank.emit_event(
            {
                "type": "token_transfer",
                "source": first.to_base58(),
                "dest": second.to_base58(),
                "mint": payload["mint"],
                "amount": amount,
            }
        )
        bank.log(
            f"token: transfer {amount} of {payload['mint'][:8]} "
            f"{first.to_base58()[:8]} -> {second.to_base58()[:8]}"
        )
    elif op == "mint_to":
        if not bank.is_signer(first):
            raise ProgramError(
                f"mint authority {first.to_base58()} did not sign"
            )
        bank.mint_tokens(second, mint, amount)
        bank.log(
            f"token: mint {amount} of {payload['mint'][:8]} "
            f"to {second.to_base58()[:8]}"
        )
    else:
        raise ProgramError(f"token program: unknown op {op!r}")
