"""The system program: native lamport transfers.

Jito tips are plain system transfers to one of the canonical tip accounts,
so this program is on the hot path of both attack and defensive bundles.
"""

from __future__ import annotations

import json

from repro.errors import ProgramError
from repro.solana.instruction import SYSTEM_PROGRAM_ID, AccountMeta, Instruction
from repro.solana.keys import Pubkey
from repro.solana.program import BankView


def transfer(source: Pubkey, dest: Pubkey, lamports: int) -> Instruction:
    """Build a lamport transfer instruction (source must sign)."""
    if lamports <= 0:
        raise ValueError(f"transfer amount must be positive, got {lamports}")
    payload = {"op": "transfer", "lamports": lamports}
    return Instruction(
        program_id=SYSTEM_PROGRAM_ID,
        accounts=(
            AccountMeta(source, is_signer=True, is_writable=True),
            AccountMeta(dest, is_writable=True),
        ),
        data=json.dumps(payload, sort_keys=True).encode(),
    )


def process(bank: BankView, instruction: Instruction) -> None:
    """Execute a system-program instruction.

    Raises:
        ProgramError: on malformed payloads or missing signatures; balance
            failures surface as :class:`InsufficientFundsError` from the bank.
    """
    try:
        payload = json.loads(instruction.data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProgramError(f"system program: malformed payload: {exc}") from exc

    op = payload.get("op")
    if op != "transfer":
        raise ProgramError(f"system program: unknown op {op!r}")
    if len(instruction.accounts) != 2:
        raise ProgramError(
            f"system transfer expects 2 accounts, got {len(instruction.accounts)}"
        )

    source = instruction.accounts[0].pubkey
    dest = instruction.accounts[1].pubkey
    if not bank.is_signer(source):
        raise ProgramError(
            f"system transfer source {source.to_base58()} did not sign"
        )

    lamports = int(payload["lamports"])
    bank.transfer_lamports(source, dest, lamports)
    bank.emit_event(
        {
            "type": "transfer",
            "source": source.to_base58(),
            "dest": dest.to_base58(),
            "lamports": lamports,
        }
    )
    bank.log(
        f"system: transfer {lamports} lamports "
        f"{source.to_base58()[:8]} -> {dest.to_base58()[:8]}"
    )
