"""Program-side view of the bank, shared by all native programs.

Programs never touch bank internals; they act through :class:`BankView`,
which journals every mutation so failed transactions roll back atomically.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.solana.instruction import Instruction
from repro.solana.keys import Pubkey


class BankView(Protocol):
    """The mutation surface the bank exposes to program processors."""

    def lamport_balance(self, pubkey: Pubkey) -> int:
        """Lamports held by an account (0 if the account is unknown)."""

    def transfer_lamports(self, source: Pubkey, dest: Pubkey, lamports: int) -> None:
        """Move lamports between accounts, enforcing balance checks."""

    def token_balance(self, owner: Pubkey, mint: Pubkey) -> int:
        """Base-unit token balance of ``owner`` for ``mint``."""

    def transfer_tokens(
        self, source: Pubkey, dest: Pubkey, mint: Pubkey, amount: int
    ) -> None:
        """Move tokens between owners, enforcing balance checks."""

    def mint_tokens(self, dest: Pubkey, mint: Pubkey, amount: int) -> None:
        """Create new tokens (simulation-level faucet / pool seeding)."""

    def is_signer(self, pubkey: Pubkey) -> bool:
        """Whether ``pubkey`` signed the currently executing transaction."""

    def log(self, message: str) -> None:
        """Append a line to the transaction's execution log."""

    def emit_event(self, event: dict) -> None:
        """Record a structured event (swap, transfer) on the receipt."""


ProgramProcessor = Callable[[BankView, Instruction], None]
"""A native program entry point: execute one instruction against the bank."""
