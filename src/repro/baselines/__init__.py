"""Baseline detectors and the ground-truth comparison harness.

The paper's methodological claim is that Jito bundle data is *necessary* to
see sandwiching on Solana: the final ledger records no bundle structure.
These baselines quantify that claim:

- :class:`~repro.baselines.ledger_heuristic.LedgerOnlyDetector` scans raw
  blocks for consecutive-transaction sandwich shapes (what a full-node
  observer could do without Jito data);
- :class:`~repro.baselines.eth_heuristic.EthStyleDetector` ports the
  Ethereum-style front-run/back-run matcher (Qin et al. 2022) that does not
  require adjacency;
- :mod:`repro.baselines.comparison` scores any detector against the
  simulation's ground truth.
"""

from repro.baselines.comparison import DetectorScore, score_detection
from repro.baselines.eth_heuristic import EthStyleDetector
from repro.baselines.ledger_heuristic import LedgerOnlyDetector

__all__ = [
    "DetectorScore",
    "EthStyleDetector",
    "LedgerOnlyDetector",
    "score_detection",
]
