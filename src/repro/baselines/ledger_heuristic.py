"""Bundle-blind sandwich detection over the raw ledger.

A full-node observer sees only blocks: ordered transactions with no trace of
Jito bundling. This baseline slides a three-transaction window across each
block and applies the paper's content criteria (same attacker outer legs,
distinct victim, same mints, adverse rate move, attacker net gain) without
any bundle boundary or tip information.

Its failure modes motivate the paper's collection methodology: it cannot
measure tips or defensive bundling at all, and window positions that straddle
bundle boundaries can both miss true sandwiches and invent false ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trades import extract_trades, net_deltas_for, traded_mints
from repro.errors import DetectionError
from repro.explorer.models import TransactionRecord
from repro.explorer.service import record_from_receipt
from repro.solana.ledger import Ledger


@dataclass(frozen=True)
class LedgerCandidate:
    """A consecutive-transaction triple flagged as a sandwich."""

    slot: int
    attacker: str
    victim: str
    victim_transaction_id: str
    transaction_ids: tuple[str, str, str]


@dataclass
class LedgerScanStats:
    """Bookkeeping for one ledger scan."""

    blocks_scanned: int = 0
    windows_examined: int = 0
    candidates: int = 0
    rejections: dict[str, int] = field(default_factory=dict)


class LedgerOnlyDetector:
    """Scans blocks for sandwich-shaped consecutive transaction triples."""

    def __init__(self) -> None:
        self.stats = LedgerScanStats()

    def _reject(self, reason: str) -> None:
        self.stats.rejections[reason] = self.stats.rejections.get(reason, 0) + 1

    def _check_window(
        self, window: list[TransactionRecord]
    ) -> LedgerCandidate | None:
        first, second, third = window
        if first.signer != third.signer or second.signer == first.signer:
            self._reject("signers")
            return None
        mints = [traded_mints(record) for record in window]
        if not all(mints) or not (mints[0] == mints[1] == mints[2]):
            self._reject("mints")
            return None
        front_legs = extract_trades(first)
        victim_legs = extract_trades(second)
        if not front_legs or not victim_legs:
            self._reject("no_trades")
            return None
        front, victim = front_legs[0], victim_legs[0]
        if front.mint_in != victim.mint_in or front.mint_out != victim.mint_out:
            self._reject("direction")
            return None
        try:
            if victim.rate <= front.rate:
                self._reject("rate")
                return None
        except DetectionError:
            self._reject("rate")
            return None
        deltas = net_deltas_for([first, third], first.signer)
        quote_delta = deltas.get(front.mint_in, 0)
        token_delta = deltas.get(front.mint_out, 0)
        if not (quote_delta > 0 or (quote_delta == 0 and token_delta > 0)):
            self._reject("net_gain")
            return None
        return LedgerCandidate(
            slot=first.slot,
            attacker=first.signer,
            victim=second.signer,
            victim_transaction_id=second.transaction_id,
            transaction_ids=(
                first.transaction_id,
                second.transaction_id,
                third.transaction_id,
            ),
        )

    def detect(self, ledger: Ledger) -> list[LedgerCandidate]:
        """Scan every block; returns flagged triples in chain order."""
        candidates: list[LedgerCandidate] = []
        for block in ledger.blocks():
            self.stats.blocks_scanned += 1
            records = [
                record_from_receipt(executed.receipt, block.unix_timestamp)
                for executed in block.transactions
            ]
            for start in range(len(records) - 2):
                self.stats.windows_examined += 1
                candidate = self._check_window(records[start : start + 3])
                if candidate is not None:
                    candidates.append(candidate)
                    self.stats.candidates += 1
        return candidates
