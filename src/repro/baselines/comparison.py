"""Scoring detectors against the simulation's ground truth.

Every generated sandwich records its victim transaction id; a detector's
output is reduced to the set of victim transaction ids it implicates, and
scored as precision/recall/F1 against the set of victims that actually
landed on-chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import GroundTruth, Label
from repro.simulation.results import SimulationWorld


@dataclass(frozen=True)
class DetectorScore:
    """Precision/recall of one detector against ground truth."""

    name: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 on empty predictions."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there was nothing to find."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def true_victim_tx_ids(
    world: SimulationWorld,
    labels: tuple[Label, ...] = (Label.SANDWICH, Label.DISGUISED_SANDWICH),
) -> set[str]:
    """Victim transaction ids of sandwiches that actually landed on-chain."""
    landed = {
        outcome.bundle_id for outcome in world.block_engine.bundle_log
    }
    ground_truth: GroundTruth = world.ground_truth
    victims: set[str] = set()
    for label in labels:
        for bundle_id in ground_truth.bundle_ids_with_label(label):
            if bundle_id not in landed:
                continue
            generated = ground_truth.get(bundle_id)
            victim_tx = generated.metadata.get("victim_tx_id") if generated else None
            if victim_tx:
                victims.add(victim_tx)
    return victims


def score_detection(
    name: str,
    predicted_victim_tx_ids: set[str],
    world: SimulationWorld,
    labels: tuple[Label, ...] = (Label.SANDWICH, Label.DISGUISED_SANDWICH),
) -> DetectorScore:
    """Score a detector's implicated victims against the ground truth."""
    truth = true_victim_tx_ids(world, labels)
    true_positives = len(predicted_victim_tx_ids & truth)
    return DetectorScore(
        name=name,
        true_positives=true_positives,
        false_positives=len(predicted_victim_tx_ids - truth),
        false_negatives=len(truth - predicted_victim_tx_ids),
    )
