"""An Ethereum-style sandwich matcher, ported to Solana blocks.

Qin et al. (2022) detect sandwiches on Ethereum by matching a front-run buy
and a back-run sell by the same account on the same market within one block,
with a victim trade in between — *without* requiring the three transactions
to be adjacent. On Solana this is the best a bundle-blind observer can do,
and it trades precision for recall relative to the adjacent-window scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trades import TradeLeg, extract_trades
from repro.explorer.service import record_from_receipt
from repro.solana.ledger import Ledger


@dataclass(frozen=True)
class EthStyleCandidate:
    """A matched front-run / victim / back-run triple (non-adjacent)."""

    slot: int
    attacker: str
    victim: str
    victim_transaction_id: str
    frontrun_transaction_id: str
    backrun_transaction_id: str


@dataclass
class EthScanStats:
    """Bookkeeping for one scan."""

    blocks_scanned: int = 0
    trades_indexed: int = 0
    candidates: int = 0


@dataclass(frozen=True)
class _IndexedTrade:
    position: int
    transaction_id: str
    owner: str
    leg: TradeLeg


class EthStyleDetector:
    """Matches opposite-direction trade pairs straddling a victim trade."""

    def __init__(self, amount_tolerance: float = 0.10) -> None:
        if not 0.0 <= amount_tolerance < 1.0:
            raise ValueError(
                f"amount tolerance must be in [0, 1), got {amount_tolerance}"
            )
        self._tolerance = amount_tolerance
        self.stats = EthScanStats()

    def _amounts_match(self, bought: int, sold: int) -> bool:
        if bought <= 0 or sold <= 0:
            return False
        return abs(sold - bought) <= self._tolerance * bought

    def detect(self, ledger: Ledger) -> list[EthStyleCandidate]:
        """Scan each block for same-pool buy/sell pairs around a victim."""
        candidates: list[EthStyleCandidate] = []
        for block in ledger.blocks():
            self.stats.blocks_scanned += 1
            trades: list[_IndexedTrade] = []
            for position, executed in enumerate(block.transactions):
                record = record_from_receipt(
                    executed.receipt, block.unix_timestamp
                )
                for leg in extract_trades(record):
                    trades.append(
                        _IndexedTrade(
                            position=position,
                            transaction_id=record.transaction_id,
                            owner=record.signer,
                            leg=leg,
                        )
                    )
            self.stats.trades_indexed += len(trades)
            candidates.extend(self._match_block(block.slot, trades))
        return candidates

    def _match_block(
        self, slot: int, trades: list[_IndexedTrade]
    ) -> list[EthStyleCandidate]:
        matched: list[EthStyleCandidate] = []
        used_backruns: set[int] = set()
        for i, front in enumerate(trades):
            for j in range(i + 1, len(trades)):
                back = trades[j]
                if j in used_backruns:
                    continue
                if back.owner != front.owner:
                    continue
                if back.position == front.position:
                    continue
                # Opposite direction on the same pool, matching size.
                if (
                    back.leg.pool != front.leg.pool
                    or back.leg.mint_in != front.leg.mint_out
                    or back.leg.mint_out != front.leg.mint_in
                ):
                    continue
                if not self._amounts_match(
                    front.leg.amount_out, back.leg.amount_in
                ):
                    continue
                victim = self._find_victim(trades, front, back, i, j)
                if victim is None:
                    continue
                used_backruns.add(j)
                matched.append(
                    EthStyleCandidate(
                        slot=slot,
                        attacker=front.owner,
                        victim=victim.owner,
                        victim_transaction_id=victim.transaction_id,
                        frontrun_transaction_id=front.transaction_id,
                        backrun_transaction_id=back.transaction_id,
                    )
                )
                self.stats.candidates += 1
                break
        return matched

    def _find_victim(
        self,
        trades: list[_IndexedTrade],
        front: _IndexedTrade,
        back: _IndexedTrade,
        i: int,
        j: int,
    ) -> _IndexedTrade | None:
        for k in range(i + 1, j):
            candidate = trades[k]
            if candidate.owner == front.owner:
                continue
            if candidate.position <= front.position:
                continue
            if candidate.position >= back.position:
                continue
            if (
                candidate.leg.pool == front.leg.pool
                and candidate.leg.mint_in == front.leg.mint_in
            ):
                return candidate
        return None
