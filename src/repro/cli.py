"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``campaign`` — run a measurement campaign, persist the collected store,
  and write the rendered report (``--archive`` makes it checkpointed and
  ``--resume`` continues a killed run byte-identically; ``--scenario``
  runs a registered scenario pack and reports measurement bias instead);
- ``scenarios`` — list the registered scenario packs;
- ``analyze`` — re-analyze a persisted store offline; accepts either a
  JSONL store directory or an archive database (auto-detected);
- ``archive`` — maintain an archive database (import/export/stats/vacuum);
- ``query`` — run indexed queries and aggregations against an archive;
- ``serve`` — simulate a world and serve its Jito Explorer over HTTP (the
  *data source* a collector scrapes; for serving measurement *results*,
  see ``api``);
- ``api`` — serve a campaign archive's detections, financial aggregates,
  and integrity status over the versioned ``/v1/`` read API;
- ``scrape`` — collect from a running explorer over HTTP;
- ``chaos`` — run a fault-injected chaos campaign; every output file is a
  pure function of ``--seed`` and ``--plan``, so two identical invocations
  produce byte-identical fault logs and reports;
- ``metrics`` — render a saved metrics snapshot (table/Prometheus/JSON);
- ``selftest`` — run the conformance battery (golden corpus, differential
  oracle, metamorphic invariants) against fixed seeds; ``--bless``
  regenerates the golden corpus explicitly;
- ``table1`` — print the worked example sandwich.

All progress and result output flows through the structured event log
(:mod:`repro.obs.events`): the console sinks print bare messages, so the
terminal UX matches the historical ``print`` output, while ``--log-jsonl``
captures the same events as machine-readable records.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import AnalysisPipeline, MeasurementCampaign
from repro.analysis import build_table1
from repro.analysis.report import render_campaign_report
from repro.collector import (
    BundlePoller,
    BundleStore,
    CoverageEstimator,
    HttpExplorerClient,
    TxDetailFetcher,
)
from repro.collector.poller import PollerConfig
from repro.core import DefensiveBundlingClassifier, SandwichDetector
from repro.errors import ConfigError, ReproError
from repro.obs import (
    ConsoleSink,
    EventLog,
    JsonlSink,
    MetricsRegistry,
    load_snapshot,
    render_prometheus,
    render_summary,
    save_snapshot,
)
from repro.simulation import SimulationEngine, paper_scenario, small_scenario
from repro.utils.serialization import write_jsonl


def _build_logs(args: argparse.Namespace) -> tuple[EventLog, EventLog]:
    """The CLI's two event logs: diagnostics (stderr) and results (stdout).

    Both share an optional JSONL sink (``--log-jsonl``) so one file carries
    the full structured record of a run.
    """
    progress = EventLog(sinks=[ConsoleSink(stream=sys.stderr)])
    output = EventLog(sinks=[ConsoleSink(stream=sys.stdout)])
    log_path = getattr(args, "log_jsonl", None)
    if log_path:
        jsonl = JsonlSink(log_path)
        progress.add_sink(jsonl)
        output.add_sink(jsonl)
    return progress, output


def _scenario_from_args(args: argparse.Namespace):
    # ``campaign`` leaves --seed at None so pack runs can distinguish "use
    # the pack's own base seed" from an explicit override; plain campaigns
    # keep the historical 2025 default.
    seed = args.seed if args.seed is not None else 2025
    if args.small:
        return small_scenario(seed=seed, days=args.days or 5)
    return paper_scenario(seed=seed, days=args.days or 120)


def _export_figure_csvs(result, report, out: Path) -> None:
    """Best-effort CSV export of every buildable figure."""
    from repro.analysis import (
        build_figure1,
        build_figure2,
        build_figure3,
        build_figure4,
    )
    from repro.analysis.export import (
        export_figure1,
        export_figure2,
        export_figure3,
        export_figure4,
    )
    from repro.errors import ConfigError

    export_figure1(build_figure1(result), out / "figure1.csv")
    export_figure2(build_figure2(result, report), out / "figure2.csv")
    try:
        export_figure3(build_figure3(report), out / "figure3.csv")
        export_figure4(build_figure4(result, report), out / "figure4.csv")
    except ConfigError:
        pass  # tiny runs may lack priced sandwiches


def _run_scenario_pack(args: argparse.Namespace) -> int:
    """``campaign --scenario <pack>``: run one scenario-pack campaign."""
    from repro.scenarios import get_pack, run_pack_campaign

    progress, output = _build_logs(args)
    pack = get_pack(args.scenario)
    out = Path(args.out)
    seed = args.seed if args.seed is not None else pack.base.seed
    progress.info(
        "cli.campaign",
        f"running scenario pack {pack.name} ({pack.kind}, seed {seed})...",
        pack=pack.name,
        seed=seed,
    )
    evaluation = run_pack_campaign(pack, out, seed=args.seed)
    from repro.scenarios.campaign import pack_summary

    summary = pack_summary(evaluation)
    output.info(
        "cli.campaign", json.dumps(summary["totals"], indent=2), **summary["totals"]
    )
    output.info("cli.campaign", evaluation.bias.render())
    output.info(
        "cli.campaign",
        f"wrote {out}/truth.db, observed.db, report.txt, summary.json",
        out=str(out),
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a campaign; write store + report + summary under --out."""
    if getattr(args, "scenario", None):
        if args.stream or args.resume or args.archive:
            progress, _output = _build_logs(args)
            progress.error(
                "cli.campaign",
                "--scenario runs a self-contained pack campaign; it "
                "cannot combine with --stream/--resume/--archive",
            )
            return 2
        return _run_scenario_pack(args)
    progress, output = _build_logs(args)
    scenario = _scenario_from_args(args)
    out = Path(args.out)
    progress.info(
        "cli.campaign",
        f"running {scenario.days}-day campaign "
        f"(seed {scenario.seed}, ~{scenario.expected_bundles_per_day():.0f} "
        "bundles/day)...",
        days=scenario.days,
        seed=scenario.seed,
    )
    started = time.time()
    checkpointed = None
    streaming = None
    report = None
    if args.stream:
        if args.resume:
            progress.error(
                "cli.campaign",
                "--stream cannot resume a checkpointed campaign; finish "
                "the batch resume first or start a fresh streaming run",
            )
            return 2
        from repro.obs.registry import MetricsRegistry
        from repro.stream import StreamConfig, StreamingCampaign

        # One registry shared by collection, the archive writer, and the
        # streaming stages, so the report's pipeline-health section sees
        # the whole run (store dedup, archive flushes, stream_* series).
        stream_metrics = MetricsRegistry()
        stream_store = None
        if args.archive:
            from repro.archive import ArchiveBundleStore

            stream_store = ArchiveBundleStore(
                args.archive, metrics=stream_metrics
            )
        streaming = StreamingCampaign(
            scenario,
            metrics=stream_metrics,
            store=stream_store,
            stream_config=StreamConfig(queue_size=args.queue_size),
        )
        result, report = streaming.run()
        progress.info(
            "cli.campaign",
            f"streaming report ready: "
            f"{streaming.builder.candidates_judged} candidates judged "
            f"across {streaming.builder.deltas_applied} deltas",
            candidates_judged=streaming.builder.candidates_judged,
            deltas=streaming.builder.deltas_applied,
        )
    elif args.archive:
        from repro.archive import CheckpointedCampaign

        if args.resume:
            checkpointed = CheckpointedCampaign.resume(
                scenario,
                args.archive,
                checkpoint_every_days=args.checkpoint_every,
            )
            progress.info(
                "cli.campaign",
                f"resuming from checkpoint: day {checkpointed.start_day} "
                f"of {scenario.days}",
                start_day=checkpointed.start_day,
            )
        else:
            checkpointed = CheckpointedCampaign(
                scenario,
                args.archive,
                checkpoint_every_days=args.checkpoint_every,
            )
        result = checkpointed.run()
    elif args.resume:
        progress.error(
            "cli.campaign", "--resume requires --archive (the database "
            "holding the campaign's checkpoints)"
        )
        return 2
    else:
        result = MeasurementCampaign(scenario).run()
    if streaming is not None:
        pass  # the report streamed in alongside collection
    elif checkpointed is not None and args.jobs is not None and args.jobs > 1:
        # Archived campaigns can fan post-processing out to the sharded
        # engine; the report is byte-identical to the serial pipeline's.
        from repro.parallel import ParallelAnalysisEngine

        checkpointed.store.flush()
        engine = ParallelAnalysisEngine(
            checkpointed.store.database,
            jobs=args.jobs,
            metrics=result.metrics,
        )
        report = engine.analyze(
            poll_overlap_fraction=result.coverage.overlap_fraction()
        )
    else:
        report = AnalysisPipeline().analyze_campaign(result)
    elapsed = time.time() - started

    out.mkdir(parents=True, exist_ok=True)
    result.store.save(out)
    (out / "report.txt").write_text(
        render_campaign_report(result, report, scenario) + "\n"
    )
    _export_figure_csvs(result, report, out)
    summary = {
        "elapsed_seconds": round(elapsed, 2),
        "collection": result.summary(),
        "sandwiches": report.sandwich_count,
        "victim_loss_usd": report.headline.victim_loss_usd,
        "attacker_gain_usd": report.headline.attacker_gain_usd,
        "defensive_bundles": report.headline.defensive_bundles,
        "defensive_spend_usd": report.headline.defensive_spend_usd,
    }
    (out / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    if checkpointed is not None:
        checkpointed.store.close()
        progress.info(
            "cli.campaign",
            f"archive committed at {args.archive}",
            archive=str(args.archive),
        )
    if streaming is not None and args.archive:
        streaming.campaign.store.close()
        progress.info(
            "cli.campaign",
            f"archive committed at {args.archive}",
            archive=str(args.archive),
        )
    if args.metrics_out:
        save_snapshot(result.metrics, args.metrics_out)
        progress.info(
            "cli.campaign",
            f"wrote metrics snapshot to {args.metrics_out}",
            path=str(args.metrics_out),
        )
    output.info("cli.campaign", json.dumps(summary, indent=2), **summary)
    output.info(
        "cli.campaign",
        f"wrote {out}/bundles.jsonl, transactions.jsonl, report.txt",
        out=str(out),
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a fault-injected campaign; all outputs are seed-deterministic.

    Unlike ``campaign``, the summary deliberately carries no wall-clock
    timing: ``diff -r`` between two runs of the same seed and plan must
    come back clean, which is how CI verifies chaos replayability.
    """
    from repro.analysis.integrity import build_collection_integrity
    from repro.collector.detail_fetcher import DetailFetcherConfig
    from repro.faults import load_plan

    progress, output = _build_logs(args)
    scenario = _scenario_from_args(args)
    plan = load_plan(args.plan)
    out = Path(args.out)
    progress.info(
        "cli.chaos",
        f"running {scenario.days}-day chaos campaign "
        f"(seed {scenario.seed}, plan {plan.name!r})...",
        days=scenario.days,
        seed=scenario.seed,
        plan=plan.name,
    )
    campaign = MeasurementCampaign(
        scenario,
        # Chaos runs get in-cycle retries so a batch survives transient
        # storms; the paper-faithful default (retry next slot) stays the
        # plain campaign's behavior.
        fetcher_config=DetailFetcherConfig(max_retries=2),
        fault_plan=plan,
    )
    result = campaign.run()
    report = AnalysisPipeline().analyze_campaign(result)
    integrity = build_collection_integrity(result)
    assert result.faults is not None  # fault_plan was passed

    out.mkdir(parents=True, exist_ok=True)
    (out / "plan.json").write_text(plan.dumps())
    write_jsonl(out / "fault_log.jsonl", result.faults.fault_log_json())
    (out / "report.txt").write_text(
        render_campaign_report(result, report, scenario) + "\n"
    )
    summary = {
        "plan": plan.name,
        "plan_fingerprint": plan.fingerprint(),
        "seed": scenario.seed,
        "days": scenario.days,
        "requests_intercepted": result.faults.requests_seen,
        "faults_injected": result.faults.counts_by_kind(),
        "coverage_gaps": len(integrity.gaps),
        "gap_seconds": integrity.gap_seconds,
        "collection": result.summary(),
        "sandwiches": report.sandwich_count,
    }
    (out / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    output.info(
        "cli.chaos",
        json.dumps(summary, indent=2, sort_keys=True),
        plan=plan.name,
        seed=scenario.seed,
        sandwiches=report.sandwich_count,
    )
    output.info(
        "cli.chaos",
        f"wrote {out}/plan.json, fault_log.jsonl, report.txt, summary.json",
        out=str(out),
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Re-analyze a persisted store (no simulation).

    ``--store`` accepts either layout, auto-detected: a JSONL store
    directory (``bundles.jsonl`` + ``transactions.jsonl``) or an archive
    database file (``archive.db``). Against an archive, ``--incremental``
    re-detects only rows newer than the last analyzed watermark.
    """
    from repro.archive.database import is_archive_path
    from repro.core import WindowedSandwichDetector

    progress, output = _build_logs(args)
    emit = lambda message, **fields: output.info(  # noqa: E731
        "cli.analyze", message, **fields
    )
    store_path = Path(args.store)
    if not store_path.exists():
        # Guard before is_archive_path: opening a missing path as SQLite
        # would silently create an empty archive and "analyze" zero rows.
        progress.error(
            "cli.analyze",
            f"store {store_path} does not exist (expected an archive "
            "database or a JSONL store directory)",
            store=str(store_path),
        )
        return 2
    if args.jobs is not None and args.jobs < 1:
        # Validated up front so a bad --jobs fails the same way on JSONL
        # stores (which otherwise ignore the flag) as on archives.
        raise ConfigError(f"jobs must be >= 1, got {args.jobs}")
    if args.chunk_size is not None and args.chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {args.chunk_size}")
    if args.prefetch is not None and args.prefetch < 0:
        raise ConfigError(f"prefetch must be >= 0, got {args.prefetch}")
    is_archive = is_archive_path(store_path)
    detector = (
        WindowedSandwichDetector() if args.windowed else SandwichDetector()
    )
    classifier = DefensiveBundlingClassifier(
        threshold_lamports=args.threshold
    )
    if is_archive:
        from repro.archive import ArchiveDatabase, IncrementalAnalyzer
        from repro.parallel import (
            DetectorSpec,
            ParallelAnalysisEngine,
            default_jobs,
        )

        jobs = args.jobs if args.jobs is not None else default_jobs()
        spec = DetectorSpec(
            kind="windowed" if args.windowed else "standard",
            threshold_lamports=args.threshold,
        )
        if args.incremental:
            if args.profile:
                progress.info(
                    "cli.analyze",
                    "--profile covers full archive passes only; "
                    "incremental deltas are too small to profile "
                    "meaningfully, flag ignored",
                )
            analyzer = IncrementalAnalyzer(
                ArchiveDatabase(store_path),
                detector_factory=(
                    WindowedSandwichDetector
                    if args.windowed
                    else SandwichDetector
                ),
                classifier=classifier,
                jobs=jobs,
                chunk_size=args.chunk_size,
                spec=spec,
                engine=args.engine,
                prefetch=args.prefetch,
            )
            outcome = analyzer.analyze()
            report = outcome.report
            if outcome.no_op:
                emit(
                    "incremental pass:   no new rows past the watermark; "
                    "archive left untouched (no-op)",
                    no_op=True,
                )
            else:
                emit(
                    f"incremental pass:   {outcome.new_bundles} new "
                    f"bundles, {outcome.new_sandwiches} new sandwiches, "
                    f"{outcome.pending_detail_bundles} awaiting details "
                    f"({jobs} jobs)",
                    new_bundles=outcome.new_bundles,
                    new_sandwiches=outcome.new_sandwiches,
                    jobs=jobs,
                )
            store_size = report.headline.bundles_collected
        else:
            engine_kwargs = (
                {} if args.prefetch is None else {"prefetch": args.prefetch}
            )
            engine = ParallelAnalysisEngine(
                ArchiveDatabase(store_path),
                jobs=jobs,
                chunk_size=args.chunk_size,
                spec=spec,
                engine=args.engine,
                **engine_kwargs,
            )
            report = engine.analyze()
            store_size = report.headline.bundles_collected
            if args.profile:
                profile = engine.stage_profile
                emit(
                    "stage breakdown (wall-clock seconds per stage; "
                    "overlapped stages can sum past elapsed time):",
                    stage_profile=profile.as_dict(),
                )
                for line in profile.render_table().splitlines():
                    emit("  " + line)
    elif (store_path / "bundles.jsonl").is_file():
        if args.jobs is not None and args.jobs > 1:
            progress.info(
                "cli.analyze",
                "JSONL stores have no chunk cursor; --jobs ignored, "
                "analyzing serially",
            )
        if args.engine != "object":
            progress.info(
                "cli.analyze",
                "JSONL stores have no columnar projections; --engine "
                "ignored, analyzing with the object pipeline",
            )
        if args.profile:
            progress.info(
                "cli.analyze",
                "JSONL stores run the serial pipeline, which has no "
                "stage-profiled chunk path; --profile ignored",
            )
        if args.incremental:
            progress.error(
                "cli.analyze",
                "--incremental needs an archive database; JSONL stores "
                "have no analysis watermark",
            )
            return 2
        store = BundleStore.load(args.store)
        pipeline = AnalysisPipeline(detector=detector, classifier=classifier)
        report = pipeline.analyze_store(store)
        store_size = len(store)
    else:
        progress.error(
            "cli.analyze",
            f"{args.store} is neither an archive database (a SQLite file "
            "such as archive.db) nor a JSONL store directory (one holding "
            "bundles.jsonl and transactions.jsonl)",
            store=str(args.store),
        )
        return 2
    headline = report.headline
    emit(f"bundles:            {store_size}", bundles=store_size)
    emit(
        f"sandwiches:         {headline.sandwich_count}",
        sandwiches=headline.sandwich_count,
    )
    emit(f"  non-SOL fraction: {headline.non_sol_fraction():.1%}")
    emit(f"victim losses:      ${headline.victim_loss_usd:,.2f}")
    emit(f"attacker gains:     ${headline.attacker_gain_usd:,.2f}")
    if headline.median_victim_loss_usd is not None:
        emit(f"median loss:        ${headline.median_victim_loss_usd:.2f}")
    emit(
        f"defensive bundles:  {headline.defensive_bundles} "
        f"({headline.defensive_fraction_of_length_one:.1%} of length-1, "
        f"threshold {args.threshold:,} lamports)"
    )
    emit(f"defensive spend:    ${headline.defensive_spend_usd:,.4f}")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Attach-mode streaming: replay an archive through the online analyzer.

    Reads an existing archive database in insertion (``seq``) order,
    streams it through the bounded-queue pipeline, and prints the same
    headline figures as ``repro analyze`` — byte-identically, which
    ``--report-out`` makes checkable: it writes the canonical report JSON
    (the exact bytes the conformance oracle compares).
    """
    from repro.archive.database import is_archive_path
    from repro.parallel import DetectorSpec
    from repro.parallel.merge import report_bytes
    from repro.stream import StreamConfig, analyze_archive_stream

    progress, output = _build_logs(args)
    emit = lambda message, **fields: output.info(  # noqa: E731
        "cli.stream", message, **fields
    )
    db_path = Path(args.db)
    if not db_path.exists() or not is_archive_path(db_path):
        progress.error(
            "cli.stream",
            f"{db_path} is not an archive database (expected a SQLite "
            "file such as archive.db)",
            db=str(db_path),
        )
        return 2
    spec = DetectorSpec(
        kind="windowed" if args.windowed else "standard",
        threshold_lamports=args.threshold,
    )
    config = StreamConfig(
        queue_size=args.queue_size, batch_bundles=args.batch_size
    )

    def on_delta(delta) -> None:
        if delta.verdicts or delta.final:
            progress.info(
                "cli.stream",
                f"delta: {delta.candidates_judged}/"
                f"{delta.candidates_registered} candidates judged, "
                f"{delta.sandwiches} sandwiches"
                + (" (final)" if delta.final else ""),
                judged=delta.candidates_judged,
                registered=delta.candidates_registered,
                sandwiches=delta.sandwiches,
                final=delta.final,
            )

    report = analyze_archive_stream(
        db_path, spec=spec, config=config, on_delta=on_delta
    )
    if args.report_out:
        Path(args.report_out).write_bytes(report_bytes(report))
        progress.info(
            "cli.stream",
            f"wrote canonical report to {args.report_out}",
            path=str(args.report_out),
        )
    headline = report.headline
    emit(
        f"bundles:            {headline.bundles_collected}",
        bundles=headline.bundles_collected,
    )
    emit(
        f"sandwiches:         {headline.sandwich_count}",
        sandwiches=headline.sandwich_count,
    )
    emit(f"victim losses:      ${headline.victim_loss_usd:,.2f}")
    emit(f"attacker gains:     ${headline.attacker_gain_usd:,.2f}")
    emit(
        f"defensive bundles:  {headline.defensive_bundles} "
        f"(threshold {args.threshold:,} lamports)"
    )
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    """Archive maintenance: JSONL import/export, stats, vacuum."""
    from repro.archive import ArchiveBundleStore, ArchiveDatabase

    progress, output = _build_logs(args)
    emit = lambda message, **fields: output.info(  # noqa: E731
        "cli.archive", message, **fields
    )
    if args.archive_command == "stats":
        with ArchiveDatabase(args.db) as db:
            info = {
                "path": str(db.path),
                "schema_version": db.schema_version,
                "file_size_bytes": db.file_size_bytes(),
                "tables": db.table_counts(),
            }
            row = db.connection.execute(
                "SELECT checkpoint_id, completed_days, created_sim_time "
                "FROM checkpoints ORDER BY checkpoint_id DESC LIMIT 1"
            ).fetchone()
            if row is not None:
                info["latest_checkpoint"] = {
                    "checkpoint_id": row["checkpoint_id"],
                    "completed_days": row["completed_days"],
                    "created_sim_time": row["created_sim_time"],
                }
        emit(json.dumps(info, indent=2, sort_keys=True), **info["tables"])
        return 0
    if args.archive_command == "import-jsonl":
        store_dir = Path(args.store)
        if not (store_dir / "bundles.jsonl").is_file():
            progress.error(
                "cli.archive",
                f"{store_dir} is not a JSONL store directory "
                "(bundles.jsonl not found)",
            )
            return 2
        source = BundleStore.load(store_dir)
        with ArchiveBundleStore(args.db) as archive:
            archive.add_bundles(list(source.bundles()))
            archive.add_details(list(source.details()))
            counts = archive.database.table_counts()
        emit(
            f"imported {len(source)} bundles, "
            f"{source.detail_count()} details into {args.db}",
            bundles=counts["bundles"],
            transactions=counts["transactions"],
        )
        return 0
    if args.archive_command == "export-jsonl":
        store = ArchiveBundleStore.resume(args.db)
        out = Path(args.out)
        store.save(out)
        store.database.close()
        emit(
            f"exported {len(store)} bundles, {store.detail_count()} "
            f"details to {out}/bundles.jsonl, transactions.jsonl",
            bundles=len(store),
            out=str(out),
        )
        return 0
    # vacuum
    with ArchiveDatabase(args.db) as db:
        before = db.file_size_bytes()
        db.checkpoint_wal()
        db.vacuum()
        after = db.file_size_bytes()
    emit(
        f"vacuumed {args.db}: {before} -> {after} bytes",
        before_bytes=before,
        after_bytes=after,
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Indexed queries and aggregations against an archive database."""
    from repro.archive import (
        ArchiveDatabase,
        ArchiveQuery,
        BundleFilter,
        SandwichFilter,
    )
    from repro.explorer.wire import bundle_record_to_json

    _progress, output = _build_logs(args)
    emit = lambda message, **fields: output.info(  # noqa: E731
        "cli.query", message, **fields
    )
    with ArchiveDatabase(args.db) as db:
        query = ArchiveQuery(db)
        if args.query_command == "bundles":
            where = BundleFilter(
                slot_min=args.slot_min,
                slot_max=args.slot_max,
                length=args.length,
                tip_min=args.tip_min,
                tip_max=args.tip_max,
                date_from=args.date_from,
                date_to=args.date_to,
            )
            if args.count:
                emit(str(query.count_bundles(where)))
            else:
                for record in query.bundles(
                    where,
                    order_by=args.order_by,
                    descending=args.desc,
                    limit=args.limit,
                    offset=args.offset,
                ):
                    emit(
                        json.dumps(
                            bundle_record_to_json(record), sort_keys=True
                        )
                    )
        elif args.query_command == "sandwiches":
            where = SandwichFilter(
                attacker=args.attacker,
                victim=args.victim,
                slot_min=args.slot_min,
                slot_max=args.slot_max,
                date_from=args.date_from,
                date_to=args.date_to,
                priced_only=args.priced_only,
            )
            if args.count:
                emit(str(query.count_sandwiches(where)))
            else:
                for item in query.sandwiches(
                    where,
                    order_by=args.order_by,
                    descending=args.desc,
                    limit=args.limit,
                    offset=args.offset,
                ):
                    event = item.event
                    emit(
                        json.dumps(
                            {
                                "bundleId": event.bundle_id,
                                "slot": event.bundle.slot,
                                "landedAt": event.landed_at,
                                "tipLamports": event.tip_lamports,
                                "attacker": event.attacker,
                                "victim": event.victim,
                                "victimLossUsd": item.victim_loss_usd,
                                "attackerGainUsd": item.attacker_gain_usd,
                            },
                            sort_keys=True,
                        )
                    )
        elif args.query_command == "tips":
            emit(
                json.dumps(
                    query.tip_histogram(
                        bucket_lamports=args.bucket, length=args.length
                    ),
                    sort_keys=True,
                )
            )
        elif args.query_command == "lengths":
            emit(json.dumps(query.length_histogram(), sort_keys=True))
        elif args.query_command == "daily":
            emit(
                json.dumps(
                    {
                        "bundles": query.bundle_counts_by_day(),
                        "sandwiches": query.sandwiches_per_day(),
                    },
                    sort_keys=True,
                )
            )
        elif args.query_command == "attackers":
            emit(json.dumps(query.top_attackers(args.limit), sort_keys=True))
        else:  # defensive
            emit(json.dumps(query.defensive_summary(), sort_keys=True))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Simulate a world, then serve its explorer over HTTP until killed.

    This is the *data source* side of the pipeline — the simulated Jito
    Explorer a collector scrapes. Measurement *results* are served by
    ``repro api`` instead. The server exposes ``GET /metrics``, so the
    registry wired here is scrapeable for the lifetime of the process.
    """
    from repro.explorer.http_server import ThreadedExplorerServer
    from repro.explorer.service import ExplorerConfig, ExplorerService
    from repro.serve.runner import run_until_interrupt

    progress, output = _build_logs(args)
    scenario = _scenario_from_args(args)
    metrics = MetricsRegistry()
    progress.info(
        "cli.serve", f"simulating {scenario.days} days...", days=scenario.days
    )
    world = SimulationEngine(scenario, metrics=metrics).run()
    metrics.set_time_fn(world.clock.now)
    service = ExplorerService(
        world.block_engine,
        world.ledger,
        world.clock,
        config=ExplorerConfig(
            requests_per_second=args.rps, burst_capacity=max(args.rps * 5, 5)
        ),
        metrics=metrics,
    )
    server = ThreadedExplorerServer(service, host=args.host, port=args.port)

    def announce(port: int) -> None:
        output.info(
            "cli.serve",
            f"simulated explorer (data source) serving "
            f"{world.bundles_landed} bundles on "
            f"http://{args.host}:{port} (Ctrl-C to stop)",
            bundles=world.bundles_landed,
            port=port,
        )

    run_until_interrupt(server, announce)
    return 0


def cmd_api(args: argparse.Namespace) -> int:
    """Serve a campaign archive's results over the ``/v1/`` read API.

    The counterpart to ``repro serve``: where that command serves the
    *simulated data source*, this one serves the *measurement results* —
    detections, financial aggregates, paper-figure series, and
    collection-integrity status — from an archive database, read-only.
    A collector or incremental analyzer may keep writing to the same
    archive; responses pick up new rows the moment the watermark moves.
    """
    from repro.serve import ApiConfig, ArchiveApiApp, ThreadedApiServer
    from repro.serve.runner import run_until_interrupt

    progress, output = _build_logs(args)
    db_path = Path(args.db)
    if not db_path.exists():
        progress.error(
            "cli.api",
            f"archive {db_path} does not exist (build one with "
            "'repro campaign --archive ...')",
            db=str(db_path),
        )
        return 2
    metrics = MetricsRegistry()
    app = ArchiveApiApp(
        ApiConfig(
            db_path=db_path,
            host=args.host,
            port=args.port,
            requests_per_second=args.rps,
            burst_capacity=args.burst if args.burst else max(args.rps * 4, 4),
            cache_entries=args.cache_entries,
        ),
        metrics=metrics,
    )
    server = ThreadedApiServer(app)

    def announce(port: int) -> None:
        output.info(
            "cli.api",
            f"archive api (results) serving {db_path} on "
            f"http://{args.host}:{port} (Ctrl-C to stop)",
            db=str(db_path),
            port=port,
        )

    run_until_interrupt(server, announce)
    if args.metrics_out:
        save_snapshot(metrics, args.metrics_out)
        progress.info(
            "cli.api",
            f"wrote metrics snapshot to {args.metrics_out}",
            path=str(args.metrics_out),
        )
    return 0


def cmd_scrape(args: argparse.Namespace) -> int:
    """Collect from a live explorer over HTTP, then persist the store."""
    progress, output = _build_logs(args)
    client = HttpExplorerClient(args.host, args.port)
    if not client.health():
        progress.error(
            "cli.scrape",
            f"no explorer at {args.host}:{args.port}",
            host=args.host,
            port=args.port,
        )
        return 1
    from repro.utils.simtime import SimClock

    clock = SimClock()
    metrics = MetricsRegistry(time_fn=clock.now)
    store = BundleStore(metrics=metrics)
    coverage = CoverageEstimator()
    poller = BundlePoller(
        client,
        store,
        coverage,
        clock,
        config=PollerConfig(window_limit=args.window),
        metrics=metrics,
    )
    for index in range(args.polls):
        result = poller.poll_once()
        output.info(
            "cli.scrape",
            f"poll {index + 1}/{args.polls}: {result.returned} returned, "
            f"{result.new_bundles} new, overlap={result.overlapped}",
            poll=index + 1,
            returned=result.returned,
            new_bundles=result.new_bundles,
        )
        clock.advance(120)
    fetcher = TxDetailFetcher(client, store, clock, metrics=metrics)
    stored = fetcher.drain()
    output.info(
        "cli.scrape", f"fetched {stored} transaction details", stored=stored
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    store.save(out)
    write_jsonl(
        out / "coverage.jsonl",
        [
            {
                "poll_time": p.poll_time,
                "overlapped": p.overlapped,
                "new_bundles": p.new_bundles,
            }
            for p in coverage.pairs
        ],
    )
    if args.metrics_out:
        save_snapshot(metrics, args.metrics_out)
        progress.info(
            "cli.scrape",
            f"wrote metrics snapshot to {args.metrics_out}",
            path=str(args.metrics_out),
        )
    output.info(
        "cli.scrape",
        f"wrote {len(store)} bundles to {out}",
        bundles=len(store),
        out=str(out),
    )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a saved metrics snapshot."""
    _progress, output = _build_logs(args)
    snapshot = load_snapshot(args.snapshot)
    if args.format == "prometheus":
        rendered = render_prometheus(snapshot).rstrip("\n")
    elif args.format == "json":
        rendered = json.dumps(snapshot, indent=2, sort_keys=True)
    else:
        rendered = render_summary(snapshot)
    output.info("cli.metrics", rendered, snapshot=str(args.snapshot))
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """Run the conformance battery; optionally re-bless the golden corpus.

    Exit code 0 when every check passes, 1 on any failing check; config
    mistakes (unknown level, empty corpus) surface as :class:`ReproError`
    one-liners via :func:`main`.
    """
    from repro.conformance.golden import bless_corpus, default_corpus_dir
    from repro.conformance.selftest import DEFAULT_SEEDS, run_selftest

    progress, output = _build_logs(args)
    corpus = Path(args.corpus) if args.corpus else default_corpus_dir()
    seeds = tuple(args.seed) if args.seed else DEFAULT_SEEDS
    if args.bless:
        written = bless_corpus(corpus)
        for path in written:
            progress.info(
                "cli.selftest", f"blessed {path}", fixture=str(path)
            )
    metrics = MetricsRegistry()
    report = run_selftest(
        level=args.level,
        seeds=seeds,
        corpus_dir=corpus,
        jobs=args.jobs,
        metrics=metrics,
        emit=lambda line: output.info("cli.selftest", line),
    )
    if args.metrics_out:
        save_snapshot(metrics, args.metrics_out)
        progress.info(
            "cli.selftest",
            f"wrote metrics snapshot to {args.metrics_out}",
            path=str(args.metrics_out),
        )
    verdict = "PASS" if report.passed else "FAIL"
    output.info(
        "cli.selftest",
        f"selftest: {verdict} "
        f"({len(report.checks) - len(report.failures)}/"
        f"{len(report.checks)} checks passed)",
        level=report.level,
        passed=report.passed,
        checks=len(report.checks),
        failures=len(report.failures),
    )
    return 0 if report.passed else 1


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List the registered scenario packs (``repro scenarios list``)."""
    from repro.scenarios import list_packs

    _progress, output = _build_logs(args)
    packs = list_packs()
    if getattr(args, "json", False):
        output.info(
            "cli.scenarios",
            json.dumps(
                [pack.to_json() for pack in packs], indent=2, sort_keys=True
            ),
        )
        return 0
    lines = [
        f"{'name':<28} {'kind':<22} {'fingerprint':<18} description",
        "-" * 96,
    ]
    for pack in packs:
        lines.append(
            f"{pack.name:<28} {pack.kind:<22} "
            f"{pack.fingerprint():<18} {pack.description}"
        )
    output.info("cli.scenarios", "\n".join(lines), packs=len(packs))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Print the paper's Table 1, executed for real."""
    _progress, output = _build_logs(args)
    table = build_table1(
        victim_trade_sol=args.victim_sol, victim_slippage_bps=args.slippage_bps
    )
    output.info("cli.table1", table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sandwiching MEV on Jito — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run a measurement campaign")
    campaign.add_argument("--days", type=int, default=None)
    campaign.add_argument(
        "--seed",
        type=int,
        default=None,
        help="simulation seed (default 2025; with --scenario, reseeds the "
        "pack's base campaign)",
    )
    campaign.add_argument("--small", action="store_true")
    campaign.add_argument("--out", default="campaign-output")
    campaign.add_argument(
        "--scenario",
        default=None,
        metavar="PACK",
        help="run a registered scenario pack instead of the default market "
        "structure (see: repro scenarios list); writes truth/observed "
        "archives and the measurement-bias report",
    )
    campaign.add_argument(
        "--metrics-out",
        default=None,
        help="write the pipeline's metrics snapshot (JSON) to this path",
    )
    campaign.add_argument(
        "--archive",
        default=None,
        help="collect into this archive database with per-day checkpoints "
        "(e.g. out/archive.db)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed campaign from the archive's latest "
        "checkpoint (requires --archive and the same --seed/--days)",
    )
    campaign.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="days between checkpoints when --archive is set (default 1)",
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for post-campaign analysis (archived "
        "campaigns only; default: analyze serially)",
    )
    campaign.add_argument(
        "--stream",
        action="store_true",
        help="analyze while collecting: run detection over the live "
        "stream so the report is ready the moment collection ends "
        "(byte-identical to the batch pipeline)",
    )
    campaign.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded stream-queue capacity with --stream (default 64)",
    )
    campaign.add_argument(
        "--log-jsonl",
        default=None,
        help="also append structured events to this JSONL file",
    )
    campaign.set_defaults(func=cmd_campaign)

    chaos = sub.add_parser(
        "chaos", help="run a fault-injected chaos campaign"
    )
    chaos.add_argument("--days", type=int, default=None)
    chaos.add_argument("--seed", type=int, default=2025)
    chaos.add_argument("--small", action="store_true")
    chaos.add_argument(
        "--plan",
        default="flaky",
        help="preset name (calm/flaky/storm/outage/corrupt/skew) or a "
        "fault-plan JSON file",
    )
    chaos.add_argument("--out", default="chaos-output")
    chaos.add_argument(
        "--log-jsonl",
        default=None,
        help="also append structured events to this JSONL file",
    )
    chaos.set_defaults(func=cmd_chaos)

    analyze = sub.add_parser("analyze", help="re-analyze a persisted store")
    analyze.add_argument(
        "--store",
        required=True,
        help="JSONL store directory or archive database (auto-detected)",
    )
    analyze.add_argument("--threshold", type=int, default=100_000)
    analyze.add_argument(
        "--windowed",
        action="store_true",
        help="scan lengths 3-5 with the windowed detector (needs details "
        "for those lengths in the store)",
    )
    analyze.add_argument(
        "--incremental",
        action="store_true",
        help="archive stores only: re-detect only rows newer than the "
        "last analyzed watermark",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for archive analysis (default: all cores "
        "but one; 1 analyzes in-process)",
    )
    analyze.add_argument(
        "--chunk-size",
        type=int,
        default=2_048,
        help="bundles per analysis chunk when sharding an archive "
        "(default 2048)",
    )
    analyze.add_argument(
        "--engine",
        choices=("object", "columnar"),
        default="object",
        help="archive chunk analyzer: per-bundle objects (default) or "
        "the vectorized columnar path (needs numpy; byte-identical "
        "reports either way)",
    )
    analyze.add_argument(
        "--prefetch",
        type=int,
        default=None,
        help="loaded chunks a background reader keeps in flight ahead of "
        "the analyzing thread (default 2; 0 disables prefetching — "
        "reports are byte-identical at any depth)",
    )
    analyze.add_argument(
        "--profile",
        action="store_true",
        help="archive full passes only: print the per-stage wall-time "
        "breakdown (load/intern/detect/quantify/merge) after analysis",
    )
    analyze.set_defaults(func=cmd_analyze)

    stream = sub.add_parser(
        "stream",
        help="stream an existing archive through the online analyzer",
    )
    stream.add_argument(
        "--db", required=True, help="archive database to replay"
    )
    stream.add_argument("--threshold", type=int, default=100_000)
    stream.add_argument(
        "--windowed",
        action="store_true",
        help="scan lengths 3-5 with the windowed detector",
    )
    stream.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded stream-queue capacity (default 64)",
    )
    stream.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="archive rows per published batch (default 256)",
    )
    stream.add_argument(
        "--report-out",
        default=None,
        help="write the canonical report JSON (oracle byte format) here",
    )
    stream.add_argument(
        "--log-jsonl",
        default=None,
        help="also append structured events to this JSONL file",
    )
    stream.set_defaults(func=cmd_stream)

    archive = sub.add_parser("archive", help="maintain an archive database")
    archive_sub = archive.add_subparsers(dest="archive_command", required=True)
    archive_stats = archive_sub.add_parser(
        "stats", help="row counts, schema version, latest checkpoint"
    )
    archive_import = archive_sub.add_parser(
        "import-jsonl", help="load a JSONL store directory into an archive"
    )
    archive_import.add_argument(
        "--store", required=True, help="directory holding bundles.jsonl"
    )
    archive_export = archive_sub.add_parser(
        "export-jsonl", help="write an archive back out as JSONL"
    )
    archive_export.add_argument("--out", required=True)
    archive_sub.add_parser(
        "vacuum", help="fold the WAL and reclaim free pages"
    )
    for archive_cmd in (
        archive_stats,
        archive_import,
        archive_export,
        archive_sub.choices["vacuum"],
    ):
        archive_cmd.add_argument(
            "--db", required=True, help="archive database path"
        )
    archive.set_defaults(func=cmd_archive)

    query = sub.add_parser("query", help="query an archive database")
    query_sub = query.add_subparsers(dest="query_command", required=True)
    query_bundles = query_sub.add_parser(
        "bundles", help="filtered bundle listings"
    )
    query_bundles.add_argument("--slot-min", type=int, default=None)
    query_bundles.add_argument("--slot-max", type=int, default=None)
    query_bundles.add_argument("--length", type=int, default=None)
    query_bundles.add_argument("--tip-min", type=int, default=None)
    query_bundles.add_argument("--tip-max", type=int, default=None)
    query_bundles.add_argument("--order-by", default="seq")
    query_sandwiches = query_sub.add_parser(
        "sandwiches", help="filtered detection listings"
    )
    query_sandwiches.add_argument("--attacker", default=None)
    query_sandwiches.add_argument("--victim", default=None)
    query_sandwiches.add_argument("--slot-min", type=int, default=None)
    query_sandwiches.add_argument("--slot-max", type=int, default=None)
    query_sandwiches.add_argument(
        "--priced-only",
        action="store_true",
        help="only sandwiches with USD quantification",
    )
    query_sandwiches.add_argument("--order-by", default="seq")
    for listing in (query_bundles, query_sandwiches):
        listing.add_argument("--date-from", default=None)
        listing.add_argument("--date-to", default=None)
        listing.add_argument("--desc", action="store_true")
        listing.add_argument("--limit", type=int, default=None)
        listing.add_argument("--offset", type=int, default=0)
        listing.add_argument(
            "--count",
            action="store_true",
            help="print the match count instead of rows",
        )
    query_tips = query_sub.add_parser(
        "tips", help="tip histogram (lamport buckets)"
    )
    query_tips.add_argument("--bucket", type=int, default=100_000)
    query_tips.add_argument("--length", type=int, default=None)
    query_sub.add_parser("lengths", help="bundle counts by length")
    query_sub.add_parser("daily", help="per-day bundle and sandwich series")
    query_attackers = query_sub.add_parser(
        "attackers", help="attackers ranked by extracted USD"
    )
    query_attackers.add_argument("--limit", type=int, default=10)
    query_sub.add_parser(
        "defensive", help="defensive/priority classification summary"
    )
    for query_cmd in query_sub.choices.values():
        query_cmd.add_argument(
            "--db", required=True, help="archive database path"
        )
    query.set_defaults(func=cmd_query)

    serve = sub.add_parser(
        "serve",
        help="serve a simulated Jito explorer (the data source; "
        "for serving campaign results, see 'api')",
        description="Simulate a world and serve its Jito Explorer over "
        "HTTP — the data source a collector scrapes. To serve measurement "
        "results from a campaign archive, use 'repro api' instead.",
    )
    serve.add_argument("--days", type=int, default=None)
    serve.add_argument("--seed", type=int, default=2025)
    serve.add_argument("--small", action="store_true")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--rps", type=float, default=100.0)
    serve.set_defaults(func=cmd_serve)

    api = sub.add_parser(
        "api",
        help="serve a campaign archive's results over the /v1/ read API",
        description="Serve detections, financial aggregates, and "
        "collection-integrity status from a campaign archive over a "
        "versioned read-only HTTP API. The counterpart to 'repro serve', "
        "which serves the simulated data source.",
    )
    api.add_argument("--db", required=True, help="archive database path")
    api.add_argument("--host", default="127.0.0.1")
    api.add_argument("--port", type=int, default=0)
    api.add_argument(
        "--rps",
        type=float,
        default=50.0,
        help="per-client sustained requests/second (token-bucket rate)",
    )
    api.add_argument(
        "--burst",
        type=float,
        default=None,
        help="per-client burst capacity (default: 4x --rps)",
    )
    api.add_argument(
        "--cache-entries",
        type=int,
        default=1_024,
        help="response-cache capacity (entries per watermark generation)",
    )
    api.add_argument(
        "--metrics-out",
        default=None,
        help="write the API's metrics snapshot (JSON) to this path on exit",
    )
    api.add_argument(
        "--log-jsonl",
        default=None,
        help="also append structured events to this JSONL file",
    )
    api.set_defaults(func=cmd_api)

    scrape = sub.add_parser("scrape", help="collect from a live explorer")
    scrape.add_argument("--host", default="127.0.0.1")
    scrape.add_argument("--port", type=int, required=True)
    scrape.add_argument("--polls", type=int, default=10)
    scrape.add_argument("--window", type=int, default=1_000)
    scrape.add_argument("--out", default="scrape-output")
    scrape.add_argument(
        "--metrics-out",
        default=None,
        help="write the collector's metrics snapshot (JSON) to this path",
    )
    scrape.add_argument(
        "--log-jsonl",
        default=None,
        help="also append structured events to this JSONL file",
    )
    scrape.set_defaults(func=cmd_scrape)

    metrics = sub.add_parser(
        "metrics", help="render a saved metrics snapshot"
    )
    metrics.add_argument("--snapshot", required=True)
    metrics.add_argument(
        "--format",
        choices=("table", "prometheus", "json"),
        default="table",
        help="rendering: aligned table (default), Prometheus text, or JSON",
    )
    metrics.set_defaults(func=cmd_metrics)

    selftest = sub.add_parser(
        "selftest", help="run the pipeline conformance battery"
    )
    selftest.add_argument(
        "--level",
        choices=("quick", "full"),
        default="quick",
        help="quick: CI-sized campaigns; full: adds large and stress "
        "scenarios (nightly)",
    )
    selftest.add_argument(
        "--seed",
        type=int,
        action="append",
        default=None,
        help="differential/metamorphic seed (repeatable; default: "
        "11, 77, 20250806)",
    )
    selftest.add_argument(
        "--corpus",
        default=None,
        help="golden corpus directory (default: tests/golden, or "
        "$REPRO_GOLDEN_DIR)",
    )
    selftest.add_argument(
        "--bless",
        action="store_true",
        help="regenerate every golden fixture before checking — the only "
        "way frozen expectations ever change",
    )
    selftest.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the sharded leg of the differential "
        "matrix (default 4)",
    )
    selftest.add_argument(
        "--metrics-out",
        default=None,
        help="write the selftest's metrics snapshot (JSON) to this path",
    )
    selftest.add_argument(
        "--log-jsonl",
        default=None,
        help="also append structured events to this JSONL file",
    )
    selftest.set_defaults(func=cmd_selftest)

    scenarios = sub.add_parser(
        "scenarios",
        help="list the registered scenario packs (see campaign --scenario)",
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command")
    scenarios_list = scenarios_sub.add_parser(
        "list", help="one line per registered pack"
    )
    scenarios_list.add_argument(
        "--json",
        action="store_true",
        help="emit the full pack recipes as JSON instead of the table",
    )
    scenarios.add_argument(
        "--log-jsonl",
        default=None,
        help="also append structured events to this JSONL file",
    )
    scenarios.set_defaults(func=cmd_scenarios, scenarios_command="list")

    table1 = sub.add_parser("table1", help="print the example sandwich")
    table1.add_argument("--victim-sol", type=float, default=25.0)
    table1.add_argument("--slippage-bps", type=int, default=200)
    table1.set_defaults(func=cmd_table1)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Operator mistakes (bad flags, missing/corrupt stores, empty
        # corpus) get a one-line diagnostic, never a traceback.
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a good
        # unix citizen.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
