"""Financial quantification of detected sandwiches (paper Section 4.1).

Victim loss: compare the rate at which the attacker's first leg traded with
the rate the victim was forced into; multiplying the attacker's rate by the
victim's traded quantity gives the price the victim *would* have paid.
Attacker gain: the attacker's net quote-currency position across their two
legs. Both are only converted to USD when the trade touches SOL; everything
else is counted but excluded from totals, making the USD figures a lower
bound exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import LAMPORTS_PER_SOL
from repro.core.events import SandwichEvent
from repro.dex.oracle import PriceOracle
from repro.solana.tokens import SOL_MINT

_SOL_ADDRESS = SOL_MINT.address.to_base58()


@dataclass(frozen=True)
class QuantifiedSandwich:
    """A detected sandwich with its financial impact attached.

    Quote-currency amounts are in base units of the victim's ``mint_in``.
    USD figures are ``None`` when the attacked pair does not include SOL.
    """

    event: SandwichEvent
    victim_loss_quote: float
    attacker_gain_quote: float
    victim_loss_usd: float | None
    attacker_gain_usd: float | None

    @property
    def priced(self) -> bool:
        """Whether this sandwich contributes to USD totals."""
        return self.victim_loss_usd is not None


class LossQuantifier:
    """Computes victim losses and attacker gains for sandwich events."""

    def __init__(self, oracle: PriceOracle | None = None) -> None:
        self._oracle = oracle or PriceOracle()

    @property
    def oracle(self) -> PriceOracle:
        """The SOL/USD conversion oracle."""
        return self._oracle

    def victim_loss_quote(self, event: SandwichEvent) -> float:
        """Victim loss in units of the victim's input currency.

        The victim paid ``amount_in`` for ``amount_out``; at the attacker's
        first-leg rate they would have paid ``rate_A * amount_out`` for the
        same quantity. The difference is the skimmed amount.
        """
        victim = event.victim_trade
        attacker_rate = event.frontrun.rate
        would_have_paid = attacker_rate * victim.amount_out
        return victim.amount_in - would_have_paid

    def attacker_gain_quote(self, event: SandwichEvent) -> float:
        """Attacker gain in the same quote currency: sell-leg output minus
        buy-leg input (both legs trade the quote against the token)."""
        return event.backrun.amount_out - event.frontrun.amount_in

    def _to_usd(self, event: SandwichEvent, quote_amount: float) -> float | None:
        if not event.involves_sol:
            return None
        if event.quote_mint == _SOL_ADDRESS:
            lamports = quote_amount
        else:
            # SOL is the *output* side (victim sells token for SOL): express
            # the quote-side loss in SOL using the victim's realized rate.
            victim = event.victim_trade
            if victim.amount_in == 0:
                return None
            lamports = quote_amount * (victim.amount_out / victim.amount_in)
        return lamports / LAMPORTS_PER_SOL * self._oracle.usd_per_sol

    def quantify(self, event: SandwichEvent) -> QuantifiedSandwich:
        """Attach loss/gain figures to one detected sandwich."""
        loss_quote = self.victim_loss_quote(event)
        gain_quote = self.attacker_gain_quote(event)
        return QuantifiedSandwich(
            event=event,
            victim_loss_quote=loss_quote,
            attacker_gain_quote=gain_quote,
            victim_loss_usd=self._to_usd(event, loss_quote),
            attacker_gain_usd=self._to_usd(event, gain_quote),
        )

    def quantify_all(self, events: list[SandwichEvent]) -> list[QuantifiedSandwich]:
        """Quantify a batch of events, preserving order."""
        return [self.quantify(event) for event in events]
