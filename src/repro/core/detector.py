"""The sandwich detector: applies the five criteria to collected bundles."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collector.store import BundleStore
from repro.core.criteria import (
    BundleView,
    compile_criteria,
    evaluate_compiled,
)
from repro.core.events import SandwichEvent
from repro.errors import DetectionError
from repro.explorer.models import BundleRecord


@dataclass
class DetectionStats:
    """Bookkeeping across one detection pass."""

    bundles_examined: int = 0
    bundles_detected: int = 0
    bundles_skipped_incomplete: int = 0
    rejections_by_criterion: dict[str, int] = field(default_factory=dict)


class SandwichDetector:
    """Detects Sandwiching MEV in length-three bundles (paper Section 3.2).

    ``skip_criteria`` disables named criteria — the ablation study's knob.
    """

    def __init__(self, skip_criteria: frozenset[str] | set[str] = frozenset()) -> None:
        self._skip = frozenset(skip_criteria)
        # The skip set is resolved once here, not per bundle in the hot loop.
        self._compiled = compile_criteria(self._skip)
        self.stats = DetectionStats()

    @property
    def skipped_criteria(self) -> frozenset[str]:
        """Criteria this detector bypasses."""
        return self._skip

    def detect_view(self, view: BundleView) -> SandwichEvent | None:
        """Evaluate one bundle view; returns the event if all criteria pass."""
        self.stats.bundles_examined += 1
        results = evaluate_compiled(view, self._compiled)
        failed = next((r for r in results if not r.passed), None)
        if failed is not None:
            self.stats.rejections_by_criterion[failed.name] = (
                self.stats.rejections_by_criterion.get(failed.name, 0) + 1
            )
            return None

        frontrun = view.first_trade(0)
        victim_trade = view.first_trade(1)
        backrun = view.first_trade(2)
        if frontrun is None or victim_trade is None or backrun is None:
            # Possible only when criteria that guarantee trades are skipped
            # (ablation); such bundles cannot form an event.
            self.stats.rejections_by_criterion["no_trades"] = (
                self.stats.rejections_by_criterion.get("no_trades", 0) + 1
            )
            return None
        self.stats.bundles_detected += 1
        return SandwichEvent(
            bundle=view.bundle,
            attacker=view.records[0].signer,
            victim=view.records[1].signer,
            frontrun=frontrun,
            victim_trade=victim_trade,
            backrun=backrun,
        )

    def detect_bundle(
        self, bundle: BundleRecord, store: BundleStore
    ) -> SandwichEvent | None:
        """Evaluate one collected bundle, resolving details from the store."""
        records = []
        for tx_id in bundle.transaction_ids:
            record = store.get_detail(tx_id)
            if record is None:
                self.stats.bundles_skipped_incomplete += 1
                return None
            records.append(record)
        try:
            view = BundleView.build(bundle, records)
        except DetectionError:
            self.stats.bundles_skipped_incomplete += 1
            return None
        return self.detect_view(view)

    def detect_all(self, store: BundleStore) -> list[SandwichEvent]:
        """Scan every fully-detailed length-three bundle in the store.

        Only length-three bundles are examined — the paper fetches details
        for no other length, so (as it acknowledges) disguised longer
        sandwiches are missed and the result is a lower bound.
        """
        events: list[SandwichEvent] = []
        for bundle in store.bundles_of_length(3):
            event = self.detect_bundle(bundle, store)
            if event is not None:
                events.append(event)
        events.sort(key=lambda e: e.landed_at)
        return events


class WindowedSandwichDetector(SandwichDetector):
    """Extension of the paper's methodology to longer bundles.

    The paper acknowledges its counts are a lower bound: an attacker can
    disguise a sandwich by padding the bundle to length four or five, and a
    length-three-only methodology never sees it. This detector slides a
    three-transaction window across bundles of the configured lengths and
    applies the same five criteria to each window, quantifying the gap
    rather than asserting it.

    The extra recall has a collection price: details must be fetched for
    every covered length, not just 2.77% of bundles.
    """

    def __init__(
        self,
        lengths: tuple[int, ...] = (3, 4, 5),
        skip_criteria: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        super().__init__(skip_criteria=skip_criteria)
        if any(length < 3 for length in lengths):
            raise DetectionError("windowed detection needs lengths >= 3")
        self._lengths = tuple(sorted(set(lengths)))

    @property
    def lengths(self) -> tuple[int, ...]:
        """Bundle lengths this detector scans."""
        return self._lengths

    def detect_bundle(
        self, bundle: BundleRecord, store: BundleStore
    ) -> SandwichEvent | None:
        """Return the first sandwich window found inside ``bundle``."""
        records = []
        for tx_id in bundle.transaction_ids:
            record = store.get_detail(tx_id)
            if record is None:
                self.stats.bundles_skipped_incomplete += 1
                return None
            records.append(record)
        for start in range(len(records) - 2):
            window_records = records[start : start + 3]
            window_bundle = BundleRecord(
                bundle_id=bundle.bundle_id,
                slot=bundle.slot,
                landed_at=bundle.landed_at,
                tip_lamports=bundle.tip_lamports,
                transaction_ids=tuple(
                    record.transaction_id for record in window_records
                ),
            )
            try:
                view = BundleView.build(window_bundle, window_records)
            except DetectionError:  # pragma: no cover - defensive
                continue
            event = self.detect_view(view)
            if event is not None:
                return event
        return None

    def detect_all(self, store: BundleStore) -> list[SandwichEvent]:
        """Scan every fully-detailed bundle of the configured lengths.

        Bundles are visited in store insertion (collection) order, not
        length-major order, so ties in the final ``landed_at`` sort resolve
        identically whether a store is scanned whole or in sharded chunks —
        the invariant the parallel engine's merge relies on.
        """
        wanted = set(self._lengths)
        events: list[SandwichEvent] = []
        for bundle in store.bundles():
            if bundle.num_transactions not in wanted:
                continue
            event = self.detect_bundle(bundle, store)
            if event is not None:
                events.append(event)
        events.sort(key=lambda e: e.landed_at)
        return events
