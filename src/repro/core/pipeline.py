"""The end-to-end analysis pipeline.

Takes what the collector gathered (the :class:`BundleStore`, plus optional
coverage stats) and produces everything the paper's Section 4 reports:
detected sandwiches, quantified losses, defensive classification, daily
series, and headline statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collector.campaign import CampaignResult
from repro.collector.store import BundleStore
from repro.core.aggregate import (
    DailySandwichStats,
    HeadlineStats,
    headline_stats,
    sandwiches_per_day,
)
from repro.core.defensive import DefensiveBundlingClassifier, DefensiveReport
from repro.core.detector import DetectionStats, SandwichDetector
from repro.core.quantify import LossQuantifier, QuantifiedSandwich
from repro.dex.oracle import PriceOracle
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


@dataclass
class AnalysisReport:
    """All pipeline outputs for one campaign."""

    quantified: list[QuantifiedSandwich]
    defensive: DefensiveReport
    daily: dict[str, DailySandwichStats]
    headline: HeadlineStats
    detection_stats: DetectionStats

    @property
    def sandwich_count(self) -> int:
        """Number of detected sandwiches."""
        return len(self.quantified)


class AnalysisPipeline:
    """Detector + quantifier + defensive classifier + aggregation."""

    def __init__(
        self,
        oracle: PriceOracle | None = None,
        detector: SandwichDetector | None = None,
        classifier: DefensiveBundlingClassifier | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.oracle = oracle or PriceOracle()
        self.detector = detector or SandwichDetector()
        self.quantifier = LossQuantifier(self.oracle)
        self.classifier = classifier or DefensiveBundlingClassifier()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._recorded_examined = 0
        self._recorded_rejections: dict[str, int] = {}

    def _record_metrics(
        self, stats: DetectionStats, report: AnalysisReport
    ) -> None:
        """Publish one analysis pass's tallies into the registry.

        Detector stats accumulate across passes, so counters record the
        per-pass deltas — repeated analyses never double count.
        """
        self.metrics.counter(
            "detector_bundles_examined_total",
            "Bundles evaluated against the five criteria.",
        ).inc(stats.bundles_examined - self._recorded_examined)
        self._recorded_examined = stats.bundles_examined
        self.metrics.counter(
            "detector_sandwiches_total", "Bundles confirmed as sandwiches."
        ).inc(len(report.quantified))
        rejections = self.metrics.counter(
            "detector_rejections_total",
            "Bundles rejected during detection, by failing criterion.",
        )
        for criterion, count in sorted(stats.rejections_by_criterion.items()):
            delta = count - self._recorded_rejections.get(criterion, 0)
            if delta:
                rejections.inc(delta, criterion=criterion)
            self._recorded_rejections[criterion] = count
        defensive = self.metrics.counter(
            "defensive_bundles_total",
            "Length-one bundles classified, defensive vs priority.",
        )
        defensive.inc(
            len(report.defensive.defensive), classification="defensive"
        )
        defensive.inc(
            len(report.defensive.priority), classification="priority"
        )

    def analyze_store(
        self,
        store: BundleStore,
        poll_overlap_fraction: float | None = None,
    ) -> AnalysisReport:
        """Run the full analysis over a collected store."""
        with self.metrics.span("analysis.pipeline"):
            events = self.detector.detect_all(store)
            quantified = self.quantifier.quantify_all(events)
            defensive_report = self.classifier.classify(store)
            daily = sandwiches_per_day(quantified, self.oracle)
            headline = headline_stats(
                quantified,
                defensive_report,
                bundles_collected=len(store),
                oracle=self.oracle,
                poll_overlap_fraction=poll_overlap_fraction,
            )
            report = AnalysisReport(
                quantified=quantified,
                defensive=defensive_report,
                daily=daily,
                headline=headline,
                detection_stats=self.detector.stats,
            )
        self._record_metrics(self.detector.stats, report)
        # Archive-backed stores persist detections; duck-typed so this
        # module never imports repro.archive (which imports repro.core).
        recorder = getattr(store, "record_analysis", None)
        if recorder is not None:
            recorder(report)
        return report

    def analyze_campaign(self, result: CampaignResult) -> AnalysisReport:
        """Analyze a finished measurement campaign.

        When the pipeline was built without its own registry, the campaign's
        registry is adopted so detection metrics land in the same snapshot
        as collection metrics.
        """
        if self.metrics is NULL_REGISTRY and result.metrics.enabled:
            self.metrics = result.metrics
        return self.analyze_store(
            result.store,
            poll_overlap_fraction=result.coverage.overlap_fraction(),
        )
