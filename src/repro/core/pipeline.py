"""The end-to-end analysis pipeline.

Takes what the collector gathered (the :class:`BundleStore`, plus optional
coverage stats) and produces everything the paper's Section 4 reports:
detected sandwiches, quantified losses, defensive classification, daily
series, and headline statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collector.campaign import CampaignResult
from repro.collector.store import BundleStore
from repro.core.aggregate import (
    DailySandwichStats,
    HeadlineStats,
    headline_stats,
    sandwiches_per_day,
)
from repro.core.defensive import DefensiveBundlingClassifier, DefensiveReport
from repro.core.detector import DetectionStats, SandwichDetector
from repro.core.quantify import LossQuantifier, QuantifiedSandwich
from repro.dex.oracle import PriceOracle


@dataclass
class AnalysisReport:
    """All pipeline outputs for one campaign."""

    quantified: list[QuantifiedSandwich]
    defensive: DefensiveReport
    daily: dict[str, DailySandwichStats]
    headline: HeadlineStats
    detection_stats: DetectionStats

    @property
    def sandwich_count(self) -> int:
        """Number of detected sandwiches."""
        return len(self.quantified)


class AnalysisPipeline:
    """Detector + quantifier + defensive classifier + aggregation."""

    def __init__(
        self,
        oracle: PriceOracle | None = None,
        detector: SandwichDetector | None = None,
        classifier: DefensiveBundlingClassifier | None = None,
    ) -> None:
        self.oracle = oracle or PriceOracle()
        self.detector = detector or SandwichDetector()
        self.quantifier = LossQuantifier(self.oracle)
        self.classifier = classifier or DefensiveBundlingClassifier()

    def analyze_store(
        self,
        store: BundleStore,
        poll_overlap_fraction: float | None = None,
    ) -> AnalysisReport:
        """Run the full analysis over a collected store."""
        events = self.detector.detect_all(store)
        quantified = self.quantifier.quantify_all(events)
        defensive_report = self.classifier.classify(store)
        daily = sandwiches_per_day(quantified, self.oracle)
        headline = headline_stats(
            quantified,
            defensive_report,
            bundles_collected=len(store),
            oracle=self.oracle,
            poll_overlap_fraction=poll_overlap_fraction,
        )
        return AnalysisReport(
            quantified=quantified,
            defensive=defensive_report,
            daily=daily,
            headline=headline,
            detection_stats=self.detector.stats,
        )

    def analyze_campaign(self, result: CampaignResult) -> AnalysisReport:
        """Analyze a finished measurement campaign."""
        return self.analyze_store(
            result.store,
            poll_overlap_fraction=result.coverage.overlap_fraction(),
        )
