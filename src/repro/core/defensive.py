"""Defensive-bundling classification (paper Section 3.3).

A length-one bundle whose Jito tip is at or below 100,000 lamports cannot be
buying meaningful priority — the paper's experiments with Jupiter put the
floor of priority-relevant tips above that — so such bundles are classified
as MEV protection. Everything above the threshold is priority-seeking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import DEFENSIVE_TIP_THRESHOLD_LAMPORTS, LAMPORTS_PER_SOL
from repro.collector.store import BundleStore
from repro.dex.oracle import PriceOracle
from repro.errors import ConfigError
from repro.explorer.models import BundleRecord
from repro.utils.simtime import unix_to_date


@dataclass
class DefensiveReport:
    """Classification results over all collected length-one bundles."""

    threshold_lamports: int
    defensive: list[BundleRecord] = field(default_factory=list)
    priority: list[BundleRecord] = field(default_factory=list)

    @property
    def length_one_total(self) -> int:
        """All length-one bundles classified."""
        return len(self.defensive) + len(self.priority)

    @property
    def defensive_fraction(self) -> float:
        """Share of length-one bundles classified defensive (paper: ~86%)."""
        total = self.length_one_total
        return len(self.defensive) / total if total else 0.0

    @property
    def defensive_tips_lamports(self) -> int:
        """Total lamports spent on defensive tips."""
        return sum(record.tip_lamports for record in self.defensive)

    def defensive_spend_usd(self, oracle: PriceOracle) -> float:
        """Cumulative USD spent on defensive bundling (paper: ~$2.42M)."""
        return oracle.lamports_to_usd(self.defensive_tips_lamports)

    def average_defensive_tip_usd(self, oracle: PriceOracle) -> float:
        """Mean defensive tip in USD (paper: ~$0.0028)."""
        if not self.defensive:
            return 0.0
        return oracle.lamports_to_usd(
            self.defensive_tips_lamports / len(self.defensive)
        )

    def average_defensive_tip_sol(self) -> float:
        """Mean defensive tip in SOL."""
        if not self.defensive:
            return 0.0
        return (
            self.defensive_tips_lamports / len(self.defensive) / LAMPORTS_PER_SOL
        )

    def defensive_per_day(self) -> dict[str, int]:
        """Defensive bundle count per UTC date (the Figure 2 top series)."""
        counts: dict[str, int] = {}
        for record in self.defensive:
            date = unix_to_date(record.landed_at)
            counts[date] = counts.get(date, 0) + 1
        return dict(sorted(counts.items()))


class DefensiveBundlingClassifier:
    """Splits length-one bundles into defensive vs priority by tip size."""

    def __init__(
        self, threshold_lamports: int = DEFENSIVE_TIP_THRESHOLD_LAMPORTS
    ) -> None:
        if threshold_lamports < 0:
            raise ConfigError(
                f"threshold must be >= 0, got {threshold_lamports}"
            )
        self._threshold = threshold_lamports

    @property
    def threshold_lamports(self) -> int:
        """The defensive/priority tip boundary."""
        return self._threshold

    def is_defensive(self, record: BundleRecord) -> bool:
        """Whether one bundle matches the defensive signature."""
        return (
            record.num_transactions == 1
            and record.tip_lamports <= self._threshold
        )

    def classify(self, store: BundleStore) -> DefensiveReport:
        """Classify every collected length-one bundle."""
        report = DefensiveReport(threshold_lamports=self._threshold)
        for record in store.bundles_of_length(1):
            if self.is_defensive(record):
                report.defensive.append(record)
            else:
                report.priority.append(record)
        return report
