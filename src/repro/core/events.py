"""Detection output datatypes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trades import TradeLeg
from repro.explorer.models import BundleRecord
from repro.solana.tokens import SOL_MINT

_SOL_ADDRESS = SOL_MINT.address.to_base58()


@dataclass(frozen=True)
class SandwichEvent:
    """A detected Sandwiching-MEV attack: one length-three bundle.

    ``frontrun`` / ``victim_trade`` / ``backrun`` are the three swap legs in
    bundle order; the attacker signs legs one and three, the victim leg two.
    """

    bundle: BundleRecord
    attacker: str
    victim: str
    frontrun: TradeLeg
    victim_trade: TradeLeg
    backrun: TradeLeg

    @property
    def bundle_id(self) -> str:
        """The attacked bundle's id."""
        return self.bundle.bundle_id

    @property
    def landed_at(self) -> float:
        """Unix time the bundle landed."""
        return self.bundle.landed_at

    @property
    def tip_lamports(self) -> int:
        """The bundle's Jito tip."""
        return self.bundle.tip_lamports

    @property
    def traded_mints(self) -> frozenset[str]:
        """The mint pair under attack."""
        return self.victim_trade.mints

    @property
    def involves_sol(self) -> bool:
        """Whether SOL is one side of the attacked pair.

        Only these events can be priced in USD (paper Section 3.2); the rest
        are counted but excluded from financial totals.
        """
        return _SOL_ADDRESS in self.traded_mints

    @property
    def quote_mint(self) -> str:
        """The currency the victim pays with (their ``mint_in``)."""
        return self.victim_trade.mint_in
