"""Trade extraction from collected transaction records.

Turns a :class:`~repro.explorer.models.TransactionRecord` into the analyst's
view of the trade it performed: which mints moved, in which direction, at
what realized exchange rate — the inputs to every detection criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DetectionError
from repro.explorer.models import TransactionRecord
from repro.jito.tips import is_tip_account


@dataclass(frozen=True)
class TradeLeg:
    """One DEX swap performed by a transaction."""

    owner: str
    pool: str
    mint_in: str
    mint_out: str
    amount_in: int
    amount_out: int

    @property
    def rate(self) -> float:
        """Realized price: units of ``mint_in`` paid per unit of ``mint_out``.

        Raises:
            DetectionError: on a zero-output swap (cannot appear on-chain).
        """
        if self.amount_out <= 0:
            raise DetectionError(
                f"swap with non-positive output: {self.amount_out}"
            )
        return self.amount_in / self.amount_out

    @property
    def mints(self) -> frozenset[str]:
        """The unordered mint pair this leg traded."""
        return frozenset((self.mint_in, self.mint_out))


def _memoized_trades(record: TransactionRecord) -> tuple[TradeLeg, ...]:
    """The record's swap legs, parsed once and cached on the instance.

    Records are immutable, so the parsed legs are stashed in the frozen
    dataclass's ``__dict__`` (the same trick :class:`~repro.solana.keys.
    Signature` uses for its base58 form). Detection evaluates several
    criteria per record, and the windowed detector revisits the same record
    across overlapping windows — each re-parse of the event payload is pure
    waste.
    """
    cached = record.__dict__.get("_trades")
    if cached is not None:
        return cached
    legs = tuple(
        TradeLeg(
            owner=str(event["owner"]),
            pool=str(event["pool"]),
            mint_in=str(event["mint_in"]),
            mint_out=str(event["mint_out"]),
            amount_in=int(event["amount_in"]),
            amount_out=int(event["amount_out"]),
        )
        for event in record.events
        if event.get("type") == "swap"
    )
    object.__setattr__(record, "_trades", legs)
    return legs


def extract_trades(record: TransactionRecord) -> list[TradeLeg]:
    """All swap legs a transaction executed, in program order."""
    return list(_memoized_trades(record))


def traded_mints(record: TransactionRecord) -> frozenset[str]:
    """The set of mints the transaction's swaps touched (cached per record)."""
    cached = record.__dict__.get("_mints")
    if cached is not None:
        return cached
    mints: set[str] = set()
    for leg in _memoized_trades(record):
        mints |= leg.mints
    result = frozenset(mints)
    object.__setattr__(record, "_mints", result)
    return result


def net_deltas_for(
    records: list[TransactionRecord], owner: str
) -> dict[str, int]:
    """Net token balance change of ``owner`` summed across ``records``.

    This is the paper's "net change in currencies as a result of all
    transactions within the bundle" for one account, with zero entries
    dropped.
    """
    totals: dict[str, int] = {}
    for record in records:
        for mint, delta in record.token_deltas.get(owner, {}).items():
            totals[mint] = totals.get(mint, 0) + delta
    return {mint: delta for mint, delta in totals.items() if delta != 0}


def is_tip_only_record(record: TransactionRecord) -> bool:
    """Whether a collected transaction did nothing but tip Jito.

    Mirrors :func:`repro.jito.tips.is_tip_only_transaction`, but evaluated on
    the *collected record* (events), since the detector never holds the
    original transaction object.
    """
    if any(event.get("type") == "swap" for event in record.events):
        return False
    if any(event.get("type") == "token_transfer" for event in record.events):
        return False
    transfers = [e for e in record.events if e.get("type") == "transfer"]
    if not transfers:
        return False
    return all(is_tip_account(str(e.get("dest", ""))) for e in transfers)


def tip_paid_by_record(record: TransactionRecord) -> int:
    """Lamports this transaction paid to Jito tip accounts."""
    return sum(
        int(event.get("lamports", 0))
        for event in record.events
        if event.get("type") == "transfer"
        and is_tip_account(str(event.get("dest", "")))
    )
