"""The five Sandwiching-MEV criteria of paper Section 3.2.

Each criterion is an independently testable predicate over a
:class:`BundleView` (a length-three bundle plus its collected transaction
details). The detector requires all five; the ablation bench drops them one
at a time to measure each one's contribution to precision.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.trades import (
    TradeLeg,
    _memoized_trades,
    is_tip_only_record,
    net_deltas_for,
    traded_mints,
)
from repro.errors import DetectionError
from repro.explorer.models import BundleRecord, TransactionRecord


class _ViewCache:
    """A bounded LRU of built :class:`BundleView`\\ s, keyed by identity.

    Keys are the ``id()``s of the bundle and detail records passed to
    :meth:`BundleView.build`. Identity keys are normally unsound (CPython
    recycles addresses), but every entry pins strong references to exactly
    the objects whose ids form its key — an id in a live key therefore
    cannot be recycled, so a key match proves the caller passed the very
    same objects. Eviction drops the pins along with the entry.
    """

    def __init__(self, maxsize: int = 4_096) -> None:
        self._maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> "BundleView | None":
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: tuple, view: "BundleView", pinned: tuple) -> None:
        # ``pinned`` must cover every object whose id is in the key: the
        # bundle and the *input* records (build may drop inputs that are
        # not members of the bundle, so ``view.records`` is not enough).
        self._entries[key] = (view, pinned)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        """Hit/miss/size tallies (feeds the engine's cache gauges)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_VIEW_CACHE = _ViewCache()


def view_cache_stats() -> dict[str, int]:
    """Process-wide :meth:`BundleView.build` cache tallies."""
    return _VIEW_CACHE.stats()


def view_cache_clear() -> None:
    """Drop the process-wide view cache (tests, long-lived processes)."""
    _VIEW_CACHE.clear()


@dataclass(frozen=True)
class BundleView:
    """A candidate bundle with details and pre-extracted trades."""

    bundle: BundleRecord
    records: tuple[TransactionRecord, ...]
    trades: tuple[tuple[TradeLeg, ...], ...] = field(init=False)

    def __post_init__(self) -> None:
        if len(self.records) != len(self.bundle.transaction_ids):
            raise DetectionError(
                f"bundle {self.bundle.bundle_id[:10]} has "
                f"{len(self.bundle.transaction_ids)} transactions but "
                f"{len(self.records)} detail records"
            )
        object.__setattr__(
            self,
            "trades",
            tuple(_memoized_trades(record) for record in self.records),
        )

    @classmethod
    def build(
        cls, bundle: BundleRecord, records: list[TransactionRecord]
    ) -> "BundleView":
        """Order ``records`` to match the bundle and build the view.

        Repeated builds over the same objects (re-analysis passes, ablation
        sweeps, incremental re-feeds of pending bundles) hit a bounded LRU
        keyed by object identity — see :class:`_ViewCache` for why identity
        keys are safe here.

        Raises:
            DetectionError: if any member transaction lacks a detail record.
        """
        key = (id(bundle),) + tuple(id(record) for record in records)
        cached = _VIEW_CACHE.get(key)
        if cached is not None:
            return cached
        by_id = {record.transaction_id: record for record in records}
        ordered = []
        for tx_id in bundle.transaction_ids:
            record = by_id.get(tx_id)
            if record is None:
                raise DetectionError(
                    f"missing detail record for transaction {tx_id[:12]}"
                )
            ordered.append(record)
        view = cls(bundle=bundle, records=tuple(ordered))
        _VIEW_CACHE.put(key, view, (bundle, *records))
        return view

    def first_trade(self, index: int) -> TradeLeg | None:
        """The first swap leg of transaction ``index`` (None if no swap)."""
        legs = self.trades[index]
        return legs[0] if legs else None


# --- the five criteria ------------------------------------------------------------


def same_attacker_distinct_victim(view: BundleView) -> bool:
    """Criterion 1: txs 1 and 3 share a signer A; tx 2 is signed by B != A."""
    if len(view.records) != 3:
        return False
    first, second, third = (record.signer for record in view.records)
    return first == third and second != first


def same_mint_set(view: BundleView) -> bool:
    """Criterion 2: the same set of minted coins trades in all three txs."""
    mint_sets = [traded_mints(record) for record in view.records]
    if not all(mint_sets):
        return False
    return mint_sets[0] == mint_sets[1] == mint_sets[2]


def rate_increases_for_victim(view: BundleView) -> bool:
    """Criterion 3: A's first trade moves the exchange rate against B.

    Evaluated by comparing realized rates: A front-runs in the victim's
    direction, so the victim's units-paid-per-unit-received must exceed the
    attacker's on the same pair — the attacker bought cheaper than the
    victim was forced to.
    """
    frontrun = view.first_trade(0)
    victim = view.first_trade(1)
    if frontrun is None or victim is None:
        return False
    if frontrun.mint_in != victim.mint_in or frontrun.mint_out != victim.mint_out:
        return False
    try:
        return victim.rate > frontrun.rate
    except DetectionError:
        return False


def attacker_net_gain(view: BundleView) -> bool:
    """Criterion 4: across the bundle, A nets currency with no payment.

    A's combined token deltas must show a positive position in the quote
    currency (the MEV profit) without paying in any other mint — or, when
    the attacker's back-run sold more than the front-run bought, a net gain
    in the quote currency alone (footnote 7 of the paper).
    """
    if len(view.records) != 3:
        return False
    attacker = view.records[0].signer
    frontrun = view.first_trade(0)
    if frontrun is None:
        return False
    deltas = net_deltas_for(
        [view.records[0], view.records[2]], attacker
    )
    quote_delta = deltas.get(frontrun.mint_in, 0)
    token_delta = deltas.get(frontrun.mint_out, 0)
    if quote_delta > 0:
        return True
    return quote_delta == 0 and token_delta > 0


def not_tip_only_tail(view: BundleView) -> bool:
    """Criterion 5: exclude bundles whose final tx only tips a validator."""
    return not is_tip_only_record(view.records[-1])


@dataclass(frozen=True)
class CriterionResult:
    """The verdict of one criterion on one bundle."""

    name: str
    passed: bool


CRITERIA: tuple[tuple[str, callable], ...] = (
    ("same_attacker_distinct_victim", same_attacker_distinct_victim),
    ("same_mint_set", same_mint_set),
    ("rate_increases_for_victim", rate_increases_for_victim),
    ("attacker_net_gain", attacker_net_gain),
    ("not_tip_only_tail", not_tip_only_tail),
)
"""All five criteria, in the paper's order."""


#: A skip-set resolved once: ``(name, predicate-or-None)`` per criterion,
#: where ``None`` marks a skipped criterion. Hot loops evaluate this instead
#: of re-testing membership in the skip set for every bundle.
CompiledCriteria = tuple


def compile_criteria(skip: frozenset[str] = frozenset()) -> CompiledCriteria:
    """Resolve the skip set against :data:`CRITERIA` once, at setup time."""
    return tuple(
        (name, None if name in skip else predicate)
        for name, predicate in CRITERIA
    )


_DEFAULT_COMPILED = compile_criteria()


def evaluate_compiled(
    view: BundleView, compiled: CompiledCriteria
) -> list[CriterionResult]:
    """Evaluate precompiled criteria, short-circuiting on failure."""
    results: list[CriterionResult] = []
    for name, predicate in compiled:
        if predicate is None:
            results.append(CriterionResult(name=name, passed=True))
            continue
        passed = bool(predicate(view))
        results.append(CriterionResult(name=name, passed=passed))
        if not passed:
            break
    return results


def evaluate_criteria(
    view: BundleView, skip: frozenset[str] = frozenset()
) -> list[CriterionResult]:
    """Evaluate every (non-skipped) criterion, short-circuiting on failure.

    ``skip`` names criteria to bypass (for ablation studies); skipped
    criteria are reported as passed.
    """
    compiled = _DEFAULT_COMPILED if not skip else compile_criteria(skip)
    return evaluate_compiled(view, compiled)
