"""Daily aggregation and headline statistics (paper Section 4)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import LAMPORTS_PER_SOL
from repro.core.defensive import DefensiveReport
from repro.core.quantify import QuantifiedSandwich
from repro.dex.oracle import PriceOracle
from repro.utils.simtime import unix_to_date


@dataclass
class DailySandwichStats:
    """One day of attack activity."""

    date: str
    attacks: int = 0
    victim_loss_sol: float = 0.0
    attacker_gain_sol: float = 0.0


def sandwiches_per_day(
    quantified: list[QuantifiedSandwich], oracle: PriceOracle
) -> dict[str, DailySandwichStats]:
    """Aggregate detected sandwiches into per-UTC-day stats.

    Loss/gain series include only SOL-denominated events, as in Figure 2
    (bottom); counts include everything.
    """
    table: dict[str, DailySandwichStats] = {}
    for item in quantified:
        date = unix_to_date(item.event.landed_at)
        stats = table.setdefault(date, DailySandwichStats(date=date))
        stats.attacks += 1
        if item.victim_loss_usd is not None:
            stats.victim_loss_sol += item.victim_loss_usd / oracle.usd_per_sol
        if item.attacker_gain_usd is not None:
            stats.attacker_gain_sol += item.attacker_gain_usd / oracle.usd_per_sol
    return dict(sorted(table.items()))


@dataclass
class HeadlineStats:
    """The paper's Section 4 headline numbers, computed from one campaign."""

    sandwich_count: int
    non_sol_sandwiches: int
    victim_loss_usd: float
    attacker_gain_usd: float
    median_victim_loss_usd: float | None
    bundles_collected: int
    sandwich_bundle_fraction: float
    defensive_bundles: int
    defensive_fraction_of_length_one: float
    defensive_spend_usd: float
    average_defensive_tip_usd: float
    poll_overlap_fraction: float | None = None
    losses_usd: list[float] = field(default_factory=list)

    def non_sol_fraction(self) -> float:
        """Share of sandwiches that never touch SOL (paper: 28%)."""
        if self.sandwich_count == 0:
            return 0.0
        return self.non_sol_sandwiches / self.sandwich_count


def headline_stats(
    quantified: list[QuantifiedSandwich],
    defensive_report: DefensiveReport,
    bundles_collected: int,
    oracle: PriceOracle,
    poll_overlap_fraction: float | None = None,
) -> HeadlineStats:
    """Assemble the headline statistics from pipeline outputs."""
    losses = [
        item.victim_loss_usd
        for item in quantified
        if item.victim_loss_usd is not None
    ]
    gains = [
        item.attacker_gain_usd
        for item in quantified
        if item.attacker_gain_usd is not None
    ]
    positive_losses = sorted(loss for loss in losses if loss > 0)
    median_loss = (
        positive_losses[len(positive_losses) // 2] if positive_losses else None
    )
    return HeadlineStats(
        sandwich_count=len(quantified),
        non_sol_sandwiches=sum(1 for q in quantified if not q.priced),
        victim_loss_usd=sum(losses),
        attacker_gain_usd=sum(gains),
        median_victim_loss_usd=median_loss,
        bundles_collected=bundles_collected,
        sandwich_bundle_fraction=(
            len(quantified) / bundles_collected if bundles_collected else 0.0
        ),
        defensive_bundles=len(defensive_report.defensive),
        defensive_fraction_of_length_one=defensive_report.defensive_fraction,
        defensive_spend_usd=defensive_report.defensive_spend_usd(oracle),
        average_defensive_tip_usd=defensive_report.average_defensive_tip_usd(
            oracle
        ),
        poll_overlap_fraction=poll_overlap_fraction,
        losses_usd=[loss for loss in losses if loss > 0],
    )


def total_loss_sol(quantified: list[QuantifiedSandwich], oracle: PriceOracle) -> float:
    """Total victim losses in SOL across priced sandwiches."""
    return (
        sum(q.victim_loss_usd for q in quantified if q.victim_loss_usd is not None)
        / oracle.usd_per_sol
    )


def lamports_to_sol(lamports: float) -> float:
    """Convenience conversion used across analyses."""
    return lamports / LAMPORTS_PER_SOL
