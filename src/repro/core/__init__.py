"""The paper's core contribution: Sandwiching-MEV detection and analysis.

- :mod:`repro.core.trades` — trade extraction from transaction records
- :mod:`repro.core.criteria` — the five detection criteria (Section 3.2)
- :mod:`repro.core.detector` — :class:`SandwichDetector`
- :mod:`repro.core.quantify` — victim-loss / attacker-gain quantification
- :mod:`repro.core.defensive` — defensive-bundling classification (3.3)
- :mod:`repro.core.aggregate` — daily series and headline statistics
- :mod:`repro.core.pipeline` — the end-to-end analysis pipeline
"""

from repro.core.criteria import (
    CRITERIA,
    BundleView,
    CriterionResult,
    evaluate_criteria,
)
from repro.core.defensive import DefensiveBundlingClassifier, DefensiveReport
from repro.core.detector import (
    DetectionStats,
    SandwichDetector,
    WindowedSandwichDetector,
)
from repro.core.events import SandwichEvent
from repro.core.pipeline import AnalysisPipeline, AnalysisReport
from repro.core.quantify import LossQuantifier, QuantifiedSandwich
from repro.core.trades import TradeLeg, extract_trades, net_deltas_for

__all__ = [
    "CRITERIA",
    "AnalysisPipeline",
    "AnalysisReport",
    "BundleView",
    "CriterionResult",
    "DefensiveBundlingClassifier",
    "DefensiveReport",
    "DetectionStats",
    "LossQuantifier",
    "QuantifiedSandwich",
    "SandwichDetector",
    "SandwichEvent",
    "WindowedSandwichDetector",
    "TradeLeg",
    "evaluate_criteria",
    "extract_trades",
    "net_deltas_for",
]
