"""repro.parallel: the work-sharded analysis engine.

Detection, quantification, and defensive classification are embarrassingly
parallel per bundle, so the engine streams an archived campaign in bounded
``seq``-range chunks (:meth:`repro.archive.query.ArchiveQuery.iter_chunks`),
fans the chunks out to a ``multiprocessing`` pool whose workers re-open the
archive read-only, and folds the per-chunk results back together with a
deterministic, order-independent reducer — serial and parallel runs produce
byte-identical reports.

- :mod:`repro.parallel.chunks` — picklable task/spec datatypes
- :mod:`repro.parallel.worker` — per-chunk analysis (pool or in-process)
- :mod:`repro.parallel.merge` — the deterministic reducer
- :mod:`repro.parallel.engine` — :class:`ParallelAnalysisEngine`

``jobs=1`` runs every chunk in-process on the caller's connection and never
imports :mod:`multiprocessing`, keeping tests and single-core hosts
hermetic.
"""

from repro.parallel.chunks import ChunkTask, DetectorSpec, plan_chunks
from repro.parallel.engine import ParallelAnalysisEngine, default_jobs
from repro.parallel.merge import (
    MergedAnalysis,
    merge_outcomes,
    report_to_jsonable,
)
from repro.parallel.worker import ChunkOutcome, analyze_chunk

__all__ = [
    "ChunkOutcome",
    "ChunkTask",
    "DetectorSpec",
    "MergedAnalysis",
    "ParallelAnalysisEngine",
    "analyze_chunk",
    "default_jobs",
    "merge_outcomes",
    "plan_chunks",
    "report_to_jsonable",
]
