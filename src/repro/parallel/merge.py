"""The deterministic, order-independent reducer.

Chunks complete in whatever order the pool schedules them; the reducer
first restores chunk order (each outcome carries its plan ``index``), then
folds the per-chunk lists together. Determinism rests on two invariants:

1. every chunk is analyzed in collection (``seq``) order internally, and
   chunk ``index`` order equals ``seq`` order across chunks — so the
   concatenation of per-chunk lists equals the serial pass's pre-sort
   order; and
2. the only sort applied afterwards (events by ``landed_at``) is stable,
   so ties resolve by that same collection order, exactly as they do in
   :meth:`SandwichDetector.detect_all`.

Together these make the merged quantified list, defensive report, and
detection stats byte-identical to a single-threaded pass.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.core.defensive import DefensiveReport
from repro.core.detector import DetectionStats
from repro.core.pipeline import AnalysisReport
from repro.core.quantify import QuantifiedSandwich
from repro.errors import ConformanceError
from repro.parallel.worker import ChunkOutcome


@dataclass
class MergedAnalysis:
    """The reducer's output: campaign-wide analysis inputs."""

    quantified: list[QuantifiedSandwich] = field(default_factory=list)
    defensive_report: DefensiveReport = None  # type: ignore[assignment]
    stats: DetectionStats = field(default_factory=DetectionStats)
    pending_detail_ids: list[str] = field(default_factory=list)
    bundle_count: int = 0


def merge_stats(outcomes: list[ChunkOutcome]) -> DetectionStats:
    """Sum detector bookkeeping across chunk outcomes (in chunk order).

    Rejection criteria keep their first-appearance order across the
    ordered chunks — the same dict insertion order a serial detector
    produces.
    """
    merged = DetectionStats()
    for outcome in outcomes:
        stats = outcome.stats
        merged.bundles_examined += stats.bundles_examined
        merged.bundles_detected += stats.bundles_detected
        merged.bundles_skipped_incomplete += stats.bundles_skipped_incomplete
        for criterion, count in stats.rejections_by_criterion.items():
            merged.rejections_by_criterion[criterion] = (
                merged.rejections_by_criterion.get(criterion, 0) + count
            )
    return merged


def merge_outcomes(
    outcomes: list[ChunkOutcome], threshold_lamports: int
) -> MergedAnalysis:
    """Fold chunk outcomes into campaign-wide analysis results.

    Raises:
        ConformanceError: when the outcomes' plan indexes are not
            contiguous — a duplicated or dropped chunk would silently
            break the byte-identity guarantee, so it fails loudly
            instead. (The sequence need not start at 0: incremental
            deltas reserve index 0 for the pending-detail worklist and
            omit it when that worklist is empty.)
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.index)
    indexes = [outcome.index for outcome in ordered]
    start = indexes[0] if indexes else 0
    expected = list(range(start, start + len(indexes)))
    if indexes != expected:
        raise ConformanceError(
            "merge received a broken chunk sequence (expected contiguous "
            f"indexes {expected}, got {indexes}); a duplicated or "
            "dropped chunk would corrupt the deterministic merge",
            diff={"expected": expected, "actual": indexes},
        )
    quantified: list[QuantifiedSandwich] = []
    report = DefensiveReport(threshold_lamports=threshold_lamports)
    pending: list[str] = []
    bundles = 0
    for outcome in ordered:
        quantified.extend(outcome.quantified)
        report.defensive.extend(outcome.defensive)
        report.priority.extend(outcome.priority)
        pending.extend(outcome.pending_detail_ids)
        bundles += outcome.bundle_count
    # Stable: ties keep collection order, matching the serial detector.
    quantified.sort(key=lambda item: item.event.landed_at)
    return MergedAnalysis(
        quantified=quantified,
        defensive_report=report,
        stats=merge_stats(ordered),
        pending_detail_ids=pending,
        bundle_count=bundles,
    )


def report_to_jsonable(report: AnalysisReport) -> dict:
    """A canonical JSON-able form of a report, for byte-identity checks.

    Every nested dataclass is flattened with :func:`dataclasses.asdict`;
    serializing the result with ``json.dumps(..., sort_keys=True)`` yields
    a stable byte string two runs can be compared on.
    """
    return {
        "quantified": [asdict(item) for item in report.quantified],
        "defensive": asdict(report.defensive),
        "daily": {date: asdict(day) for date, day in report.daily.items()},
        "headline": asdict(report.headline),
        "detection_stats": asdict(report.detection_stats),
    }


def report_bytes(report: AnalysisReport) -> bytes:
    """The canonical serialized report (the byte-identity artifact)."""
    return json.dumps(
        report_to_jsonable(report), sort_keys=True, separators=(",", ":")
    ).encode()
