"""Per-chunk analysis: the function that runs inside pool workers.

Each worker process opens the archive exactly once, read-only, in its pool
initializer, then analyzes every chunk it is handed over that connection.
The same :func:`analyze_chunk` also serves the ``jobs=1`` in-process path —
the engine calls it directly on its own connection, so single-job runs
execute byte-for-byte the same analysis code without any
:mod:`multiprocessing` import.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.archive.schema import bundle_from_row
from repro.collector.store import BundleStore
from repro.core.criteria import view_cache_stats
from repro.core.detector import DetectionStats
from repro.core.quantify import LossQuantifier, QuantifiedSandwich
from repro.dex.oracle import PriceOracle
from repro.explorer.models import BundleRecord
from repro.parallel.chunks import ChunkTask
from repro.utils.base58 import b58_cache_stats

#: The worker process's lazily-opened read-only archive handle.
_WORKER_DB: ArchiveDatabase | None = None


@dataclass(frozen=True)
class ChunkOutcome:
    """Everything one chunk's analysis produced, ready to merge.

    All fields are picklable; per-chunk lists are already in the chunk's
    deterministic (collection-order) form, so the reducer only needs to
    concatenate outcomes by ``index`` and re-sort globally.
    """

    index: int
    bundle_count: int
    quantified: tuple[QuantifiedSandwich, ...]
    defensive: tuple[BundleRecord, ...]
    priority: tuple[BundleRecord, ...]
    stats: DetectionStats
    pending_detail_ids: tuple[str, ...]
    elapsed_seconds: float
    worker: str
    view_cache_hits: int = 0
    view_cache_misses: int = 0
    b58_cache_hits: int = 0
    b58_cache_misses: int = 0


def init_worker(archive_path: str) -> None:
    """Pool initializer: open the archive read-only, once per process."""
    global _WORKER_DB
    _WORKER_DB = ArchiveDatabase(archive_path, read_only=True)


def run_chunk(task: ChunkTask) -> ChunkOutcome:
    """Pool entry point: analyze one chunk on this worker's connection."""
    global _WORKER_DB
    if _WORKER_DB is None:  # pragma: no cover - initializer normally ran
        _WORKER_DB = ArchiveDatabase(task.archive_path, read_only=True)
    return dispatch_chunk(_WORKER_DB, task)


def dispatch_chunk(database: ArchiveDatabase, task: ChunkTask) -> ChunkOutcome:
    """Route one task to the engine it names (object or columnar).

    The columnar import is deferred so object-only runs never touch
    :mod:`repro.columnar` (or numpy) at all.
    """
    if task.engine == "columnar":
        from repro.columnar.engine import analyze_chunk_columnar

        return analyze_chunk_columnar(database, task)
    return analyze_chunk(database, task)


def _load_mini_store(database: ArchiveDatabase, task: ChunkTask) -> BundleStore:
    """The chunk's working set: its bundles plus detection-length details."""
    query = ArchiveQuery(database)
    mini = BundleStore()
    if task.bundle_ids:
        # Explicit worklist (incremental pending bundles): preserve the
        # given order — it is the serial analyzer's insertion order.
        bundles = [
            bundle
            for bundle in (
                query.bundle(bundle_id) for bundle_id in task.bundle_ids
            )
            if bundle is not None
        ]
    else:
        chunk = task.chunk
        rows = database.connection.execute(
            "SELECT * FROM bundles WHERE seq >= ? AND seq <= ? ORDER BY seq",
            (chunk.seq_lo, chunk.seq_hi),
        ).fetchall()
        bundles = [bundle_from_row(row) for row in rows]
    mini.add_bundles(bundles)
    for length in task.spec.detail_lengths:
        for bundle in mini.bundles_of_length(length):
            mini.add_details(query.details_for_bundle(bundle))
    return mini


def analyze_chunk(database: ArchiveDatabase, task: ChunkTask) -> ChunkOutcome:
    """Run the full detection stack over one chunk of the archive.

    This is deliberately the same sequence the serial pipeline runs —
    detector, quantifier, classifier, in collection order — restricted to
    the chunk's bundles. Determinism of the merged result follows from
    each chunk being analyzed in collection order and the reducer
    preserving chunk order.
    """
    task.validate()
    started = time.perf_counter()
    views_before = view_cache_stats()
    b58_before = b58_cache_stats()

    mini = _load_mini_store(database, task)
    spec = task.spec
    detector = spec.build_detector()
    events = detector.detect_all(mini)
    oracle = (
        PriceOracle(spec.usd_per_sol)
        if spec.usd_per_sol is not None
        else PriceOracle()
    )
    quantified = LossQuantifier(oracle).quantify_all(events)
    classification = spec.build_classifier().classify(mini)
    # Pending ids are reported in the chunk's collection order, so the
    # incremental analyzer's merged pending list is order-identical to a
    # serial pass over the same working set.
    wanted = set(spec.detail_lengths)
    pending = tuple(
        bundle.bundle_id
        for bundle in mini.bundles()
        if bundle.num_transactions in wanted and mini.missing_details(bundle)
    )

    views_after = view_cache_stats()
    b58_after = b58_cache_stats()
    return ChunkOutcome(
        index=task.index,
        bundle_count=len(mini),
        quantified=tuple(quantified),
        defensive=tuple(classification.defensive),
        priority=tuple(classification.priority),
        stats=detector.stats,
        pending_detail_ids=pending,
        elapsed_seconds=time.perf_counter() - started,
        worker=f"pid-{os.getpid()}",
        view_cache_hits=views_after["hits"] - views_before["hits"],
        view_cache_misses=views_after["misses"] - views_before["misses"],
        b58_cache_hits=b58_after["hits"] - b58_before["hits"],
        b58_cache_misses=b58_after["misses"] - b58_before["misses"],
    )
