"""Per-chunk analysis: the function that runs inside pool workers.

Each worker process opens the archive exactly once, read-only, in its pool
initializer, then analyzes every chunk it is handed over that connection.
The same :func:`analyze_chunk` also serves the ``jobs=1`` in-process path —
the engine calls it directly on its own connection, so single-job runs
execute byte-for-byte the same analysis code without any
:mod:`multiprocessing` import.

Every chunk's work is split at the I/O boundary into a *load* stage
(:func:`load_task`, all SQLite round-trips) and a *compute* stage
(:func:`compute_task`, pure in-memory detection). :func:`iter_batch_outcomes`
threads a bounded prefetcher between the two so chunk N+1's loads overlap
chunk N's compute; :func:`run_chunk_batch` is the pool entry point that
runs that same pipeline inside a worker process over a
:class:`~repro.parallel.chunks.ChunkBatch`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.archive.schema import bundle_from_row
from repro.collector.store import BundleStore
from repro.core.criteria import view_cache_stats
from repro.core.detector import DetectionStats
from repro.core.quantify import LossQuantifier, QuantifiedSandwich
from repro.dex.oracle import PriceOracle
from repro.explorer.models import BundleRecord
from repro.parallel.chunks import ChunkBatch, ChunkTask
from repro.utils.base58 import b58_cache_stats

#: The worker process's lazily-opened read-only archive handle.
_WORKER_DB: ArchiveDatabase | None = None

#: The worker process's cross-chunk interning pool (columnar runs only).
_WORKER_INTERN = None


@dataclass(frozen=True)
class ChunkOutcome:
    """Everything one chunk's analysis produced, ready to merge.

    All fields are picklable; per-chunk lists are already in the chunk's
    deterministic (collection-order) form, so the reducer only needs to
    concatenate outcomes by ``index`` and re-sort globally.
    ``stage_seconds`` carries the chunk's wall-time split as
    ``(stage, seconds)`` pairs — purely observational, never merged into
    the report itself.
    """

    index: int
    bundle_count: int
    quantified: tuple[QuantifiedSandwich, ...]
    defensive: tuple[BundleRecord, ...]
    priority: tuple[BundleRecord, ...]
    stats: DetectionStats
    pending_detail_ids: tuple[str, ...]
    elapsed_seconds: float
    worker: str
    view_cache_hits: int = 0
    view_cache_misses: int = 0
    b58_cache_hits: int = 0
    b58_cache_misses: int = 0
    stage_seconds: tuple[tuple[str, float], ...] = ()


@dataclass
class ObjectChunkPayload:
    """The object path's loaded working set, ready for pure compute."""

    mini: BundleStore
    load_seconds: float = 0.0
    cache_deltas: dict = field(default_factory=dict)


def _counters() -> dict:
    """Snapshot the hot-path cache counters the outcome reports."""
    views = view_cache_stats()
    b58 = b58_cache_stats()
    return {
        "view_cache_hits": views["hits"],
        "view_cache_misses": views["misses"],
        "b58_cache_hits": b58["hits"],
        "b58_cache_misses": b58["misses"],
    }


def init_worker(archive_path: str) -> None:
    """Pool initializer: open the archive read-only, once per process."""
    global _WORKER_DB
    _WORKER_DB = ArchiveDatabase(archive_path, read_only=True)


def _worker_db(archive_path: str) -> ArchiveDatabase:
    """This worker's connection, opened on first use if the initializer
    did not run (in-process fallbacks in tests)."""
    global _WORKER_DB
    if _WORKER_DB is None:  # pragma: no cover - initializer normally ran
        _WORKER_DB = ArchiveDatabase(archive_path, read_only=True)
    return _WORKER_DB


def _worker_intern():
    """This worker's cross-chunk :class:`InternPool`, created lazily."""
    global _WORKER_INTERN
    if _WORKER_INTERN is None:
        from repro.columnar.blocks import InternPool

        _WORKER_INTERN = InternPool()
    return _WORKER_INTERN


def run_chunk(task: ChunkTask) -> ChunkOutcome:
    """Pool entry point: analyze one chunk on this worker's connection."""
    database = _worker_db(task.archive_path)
    if task.engine == "columnar":
        return dispatch_chunk(database, task, intern=_worker_intern())
    return dispatch_chunk(database, task)


def run_chunk_batch(batch: ChunkBatch) -> list[ChunkOutcome]:
    """Pool entry point: run one worker's task group through the pipeline.

    Each worker receives a round-robin slice of the chunk sequence as a
    :class:`~repro.parallel.chunks.ChunkBatch` and overlaps its own loads
    with its own compute via :func:`iter_batch_outcomes` — prefetching
    composes with process parallelism instead of competing with it.
    """
    database = _worker_db(batch.archive_path)
    return list(
        iter_batch_outcomes(database, batch.tasks, prefetch=batch.prefetch)
    )


def dispatch_chunk(
    database: ArchiveDatabase, task: ChunkTask, intern=None
) -> ChunkOutcome:
    """Route one task to the engine it names (object or columnar).

    The columnar import is deferred so object-only runs never touch
    :mod:`repro.columnar` (or numpy) at all.
    """
    if task.engine == "columnar":
        from repro.columnar.engine import analyze_chunk_columnar

        return analyze_chunk_columnar(database, task, intern=intern)
    return analyze_chunk(database, task)


def load_task(database: ArchiveDatabase, task: ChunkTask):
    """Run one task's *load* stage (every SQLite round-trip it needs).

    The returned payload is engine-specific but always self-contained:
    :func:`compute_task` never touches the database, which is what lets a
    prefetch thread run this stage on its own read-only connection while
    the analyzing thread computes the previous chunk.
    """
    if task.engine == "columnar":
        from repro.columnar.engine import load_chunk_columnar

        return load_chunk_columnar(ArchiveQuery(database), task)
    task.validate()
    started = time.perf_counter()
    before = _counters()
    mini = _load_mini_store(database, task)
    after = _counters()
    return ObjectChunkPayload(
        mini=mini,
        load_seconds=time.perf_counter() - started,
        cache_deltas={key: after[key] - before[key] for key in after},
    )


def compute_task(task: ChunkTask, payload, intern=None) -> ChunkOutcome:
    """Run one task's *compute* stage over an already-loaded payload."""
    if task.engine == "columnar":
        from repro.columnar.engine import compute_chunk_columnar

        return compute_chunk_columnar(task, payload, intern=intern)
    return _compute_object_chunk(task, payload)


def iter_batch_outcomes(
    database: ArchiveDatabase,
    tasks: Iterable[ChunkTask],
    prefetch: int,
    intern=None,
) -> Iterator[ChunkOutcome]:
    """Yield outcomes for ``tasks`` in order, loads overlapped with compute.

    With ``prefetch > 0`` a bounded background reader (its own read-only
    connection) keeps up to ``prefetch`` loaded payloads in flight while
    this thread computes; with ``prefetch <= 0`` the stages simply
    alternate on ``database``. Either way the outcomes are the same
    objects in the same order — the pipeline only changes *when* loads
    happen, never what they return.
    """
    tasks = list(tasks)
    if intern is None and any(task.engine == "columnar" for task in tasks):
        from repro.columnar.blocks import InternPool

        intern = InternPool()
    if prefetch <= 0 or len(tasks) <= 1:
        for task in tasks:
            yield compute_task(task, load_task(database, task), intern=intern)
        return
    from repro.pipeline.prefetch import ChunkPrefetcher

    prefetcher = ChunkPrefetcher(
        tasks[0].archive_path, tasks, depth=prefetch, load=load_task
    )
    with prefetcher:
        for task, payload in prefetcher:
            yield compute_task(task, payload, intern=intern)


def _load_mini_store(database: ArchiveDatabase, task: ChunkTask) -> BundleStore:
    """The chunk's working set: its bundles plus detection-length details."""
    query = ArchiveQuery(database)
    mini = BundleStore()
    if task.bundle_ids:
        # Explicit worklist (incremental pending bundles): preserve the
        # given order — it is the serial analyzer's insertion order.
        bundles = [
            bundle
            for bundle in (
                query.bundle(bundle_id) for bundle_id in task.bundle_ids
            )
            if bundle is not None
        ]
    else:
        chunk = task.chunk
        rows = database.connection.execute(
            "SELECT * FROM bundles WHERE seq >= ? AND seq <= ? ORDER BY seq",
            (chunk.seq_lo, chunk.seq_hi),
        ).fetchall()
        bundles = [bundle_from_row(row) for row in rows]
    mini.add_bundles(bundles)
    for length in task.spec.detail_lengths:
        for bundle in mini.bundles_of_length(length):
            mini.add_details(query.details_for_bundle(bundle))
    return mini


def _compute_object_chunk(
    task: ChunkTask, payload: ObjectChunkPayload
) -> ChunkOutcome:
    """Detector, quantifier, classifier over a loaded object working set.

    This is deliberately the same sequence the serial pipeline runs — in
    collection order, restricted to the chunk's bundles. Determinism of
    the merged result follows from each chunk being analyzed in
    collection order and the reducer preserving chunk order.
    """
    mini = payload.mini
    spec = task.spec
    before = _counters()

    detect_started = time.perf_counter()
    detector = spec.build_detector()
    events = detector.detect_all(mini)
    detect_seconds = time.perf_counter() - detect_started

    quantify_started = time.perf_counter()
    oracle = (
        PriceOracle(spec.usd_per_sol)
        if spec.usd_per_sol is not None
        else PriceOracle()
    )
    quantified = LossQuantifier(oracle).quantify_all(events)
    classification = spec.build_classifier().classify(mini)
    # Pending ids are reported in the chunk's collection order, so the
    # incremental analyzer's merged pending list is order-identical to a
    # serial pass over the same working set.
    wanted = set(spec.detail_lengths)
    pending = tuple(
        bundle.bundle_id
        for bundle in mini.bundles()
        if bundle.num_transactions in wanted and mini.missing_details(bundle)
    )
    quantify_seconds = time.perf_counter() - quantify_started

    after = _counters()
    deltas = payload.cache_deltas
    return ChunkOutcome(
        index=task.index,
        bundle_count=len(mini),
        quantified=tuple(quantified),
        defensive=tuple(classification.defensive),
        priority=tuple(classification.priority),
        stats=detector.stats,
        pending_detail_ids=pending,
        elapsed_seconds=(
            payload.load_seconds + detect_seconds + quantify_seconds
        ),
        worker=f"pid-{os.getpid()}",
        view_cache_hits=(
            after["view_cache_hits"]
            - before["view_cache_hits"]
            + deltas.get("view_cache_hits", 0)
        ),
        view_cache_misses=(
            after["view_cache_misses"]
            - before["view_cache_misses"]
            + deltas.get("view_cache_misses", 0)
        ),
        b58_cache_hits=(
            after["b58_cache_hits"]
            - before["b58_cache_hits"]
            + deltas.get("b58_cache_hits", 0)
        ),
        b58_cache_misses=(
            after["b58_cache_misses"]
            - before["b58_cache_misses"]
            + deltas.get("b58_cache_misses", 0)
        ),
        stage_seconds=(
            ("load", payload.load_seconds),
            ("detect", detect_seconds),
            ("quantify", quantify_seconds),
        ),
    )


def analyze_chunk(database: ArchiveDatabase, task: ChunkTask) -> ChunkOutcome:
    """Run the full detection stack over one chunk of the archive."""
    return _compute_object_chunk(task, load_task(database, task))
