"""Picklable chunk tasks and detector specifications.

Worker processes cannot receive live detector or classifier objects (the
general factories are arbitrary callables), so the engine ships a small
declarative :class:`DetectorSpec` instead and each worker builds its own
detector from it. Everything in this module must stay picklable and cheap
to serialize — tasks cross a process boundary once per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archive.query import ArchiveChunk, ArchiveQuery, BundleFilter
from repro.constants import DEFENSIVE_TIP_THRESHOLD_LAMPORTS
from repro.core.defensive import DefensiveBundlingClassifier
from repro.core.detector import SandwichDetector, WindowedSandwichDetector
from repro.errors import ConfigError

#: Default bundles per chunk. Large enough to amortize per-chunk overhead
#: (process dispatch, result pickling, SQLite query setup), small enough
#: that a 50k-bundle archive still spreads across a 4-worker pool.
DEFAULT_CHUNK_SIZE = 2_048

#: Default loaded-chunks-in-flight bound for the prefetching pipeline.
#: One chunk being computed plus two loaded-ahead keeps the reader busy
#: without holding more than a few chunks' columns in memory; 0 disables
#: prefetching entirely (loads and computes alternate on one thread).
DEFAULT_PREFETCH_DEPTH = 2


@dataclass(frozen=True)
class DetectorSpec:
    """A declarative, picklable recipe for the per-chunk analysis stack.

    ``kind`` selects the detector class (``"standard"`` scans length-three
    bundles, ``"windowed"`` slides a window over ``lengths``);
    ``usd_per_sol`` parameterizes the quantifier's oracle so workers price
    events identically to the parent process.
    """

    kind: str = "standard"
    lengths: tuple[int, ...] = (3, 4, 5)
    skip_criteria: frozenset[str] = frozenset()
    threshold_lamports: int = DEFENSIVE_TIP_THRESHOLD_LAMPORTS
    usd_per_sol: float | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical settings."""
        if self.kind not in {"standard", "windowed"}:
            raise ConfigError(
                f"detector kind must be standard or windowed, "
                f"got {self.kind!r}"
            )

    @property
    def detail_lengths(self) -> tuple[int, ...]:
        """Bundle lengths whose details a chunk loader must resolve."""
        if self.kind == "windowed":
            return tuple(sorted(set(self.lengths)))
        return (3,)

    def build_detector(self) -> SandwichDetector:
        """A fresh detector configured per this spec."""
        if self.kind == "windowed":
            return WindowedSandwichDetector(
                lengths=self.lengths, skip_criteria=self.skip_criteria
            )
        return SandwichDetector(skip_criteria=self.skip_criteria)

    def build_classifier(self) -> DefensiveBundlingClassifier:
        """A fresh defensive classifier per this spec."""
        return DefensiveBundlingClassifier(
            threshold_lamports=self.threshold_lamports
        )


#: Chunk execution engines: per-bundle Python objects, or the vectorized
#: struct-of-arrays path of :mod:`repro.columnar`.
CHUNK_ENGINES = ("object", "columnar")


@dataclass(frozen=True)
class ChunkTask:
    """One unit of pool work: analyze one slice of one archive.

    Either ``chunk`` (a contiguous ``seq`` range) or ``bundle_ids`` (an
    explicit worklist, used for the incremental analyzer's carried-over
    pending bundles) selects the slice. ``index`` orders results during the
    merge regardless of completion order. ``engine`` picks the per-chunk
    implementation — both produce byte-identical outcomes, so tasks with
    different engines may even be mixed within one run.
    """

    index: int
    archive_path: str
    spec: DetectorSpec
    chunk: ArchiveChunk | None = None
    bundle_ids: tuple[str, ...] = field(default_factory=tuple)
    engine: str = "object"

    def validate(self) -> None:
        """Raise :class:`ConfigError` when the slice selector is ambiguous."""
        if (self.chunk is None) == (not self.bundle_ids):
            raise ConfigError(
                "a chunk task needs exactly one of chunk or bundle_ids"
            )
        if self.engine not in CHUNK_ENGINES:
            raise ConfigError(
                f"chunk engine must be one of {CHUNK_ENGINES}, "
                f"got {self.engine!r}"
            )


@dataclass(frozen=True)
class ChunkBatch:
    """One worker's ordered task group, pipelined inside the worker.

    Under ``--jobs`` with prefetching, the engine deals the chunk
    sequence round-robin into one batch per worker; each worker then
    overlaps its own loads with its own compute via
    :func:`repro.parallel.worker.iter_batch_outcomes`. Outcomes still
    carry their tasks' global ``index`` values, so the deterministic
    merge is indifferent to the batching.
    """

    tasks: tuple[ChunkTask, ...]
    prefetch: int

    @property
    def archive_path(self) -> str:
        """The archive every task in the batch reads."""
        return self.tasks[0].archive_path

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an empty or mixed-archive batch."""
        if not self.tasks:
            raise ConfigError("a chunk batch needs at least one task")
        paths = {task.archive_path for task in self.tasks}
        if len(paths) != 1:
            raise ConfigError(
                f"a chunk batch must target one archive, got {sorted(paths)}"
            )


def plan_chunks(
    query: ArchiveQuery,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    where: BundleFilter | None = None,
    seq_min: int | None = None,
) -> list[ArchiveChunk]:
    """Materialize the chunk plan for an archive in one window-function
    pass (:meth:`~repro.archive.query.ArchiveQuery.chunk_bounds`), rather
    than the keyset walk of ``iter_chunks`` — same chunks, one query."""
    return query.chunk_bounds(
        chunk_size=chunk_size, where=where, seq_min=seq_min
    )
