"""The work-sharded analysis engine.

:class:`ParallelAnalysisEngine` is the archive-native counterpart of
:class:`~repro.core.pipeline.AnalysisPipeline`: instead of materializing a
whole campaign in memory, it streams the archive in bounded chunks, fans
them out to a process pool (or analyzes them in-process at ``jobs=1``), and
reduces the results deterministically. Serial and parallel runs emit
byte-identical reports — see :mod:`repro.parallel.merge` for the argument.

The ``jobs=1`` path never imports :mod:`multiprocessing`; the import lives
inside :meth:`ParallelAnalysisEngine._run_pool` and only executes when a
pool is actually wanted.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterable

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.archive.store import ArchiveBundleStore
from repro.core.aggregate import headline_stats, sandwiches_per_day
from repro.core.pipeline import AnalysisReport
from repro.dex.oracle import PriceOracle
from repro.errors import ConfigError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.parallel.chunks import (
    CHUNK_ENGINES,
    DEFAULT_CHUNK_SIZE,
    DEFAULT_PREFETCH_DEPTH,
    ChunkBatch,
    ChunkTask,
    DetectorSpec,
    plan_chunks,
)
from repro.parallel.merge import MergedAnalysis, merge_outcomes
from repro.parallel.worker import (
    ChunkOutcome,
    init_worker,
    iter_batch_outcomes,
    run_chunk,
    run_chunk_batch,
)
from repro.pipeline.profile import StageProfile, StageTimer

#: Histogram buckets for per-chunk wall-clock (seconds).
_CHUNK_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


def default_jobs() -> int:
    """The engine's default worker count: all cores but one, at least 1."""
    return max(1, (os.cpu_count() or 1) - 1)


class ParallelAnalysisEngine:
    """Chunked, multi-process analysis over one archive database."""

    def __init__(
        self,
        database: ArchiveDatabase | str | Path,
        jobs: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        spec: DetectorSpec | None = None,
        oracle: PriceOracle | None = None,
        metrics: MetricsRegistry | None = None,
        engine: str = "object",
        prefetch: int = DEFAULT_PREFETCH_DEPTH,
    ) -> None:
        self.database = (
            database
            if isinstance(database, ArchiveDatabase)
            else ArchiveDatabase(database)
        )
        self.jobs = default_jobs() if jobs is None else jobs
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        if prefetch < 0:
            raise ConfigError(f"prefetch must be >= 0, got {prefetch}")
        self.prefetch = prefetch
        self.oracle = oracle or PriceOracle()
        spec = spec or DetectorSpec()
        spec.validate()
        if engine not in CHUNK_ENGINES:
            raise ConfigError(
                f"engine must be one of {CHUNK_ENGINES}, got {engine!r}"
            )
        if engine == "columnar":
            # Fail fast, in the parent process, with an actionable message
            # — not lazily inside a pool worker.
            from repro.columnar.engine import require_columnar_spec

            require_columnar_spec(spec)
        self.engine = engine
        # Workers rebuild the oracle from the spec; pin the rate so pool
        # and in-process quantification price events identically.
        self.spec = (
            spec
            if spec.usd_per_sol is not None
            else replace(spec, usd_per_sol=self.oracle.usd_per_sol)
        )
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.query = ArchiveQuery(self.database, metrics=self.metrics)
        self._chunk_seconds = self.metrics.histogram(
            "parallel_chunk_seconds",
            "Wall-clock seconds per analyzed chunk, by worker.",
            buckets=_CHUNK_BUCKETS,
        )
        self._chunks_metric = self.metrics.counter(
            "parallel_chunks_total", "Chunks analyzed by the engine."
        )
        self._pending_gauge = self.metrics.gauge(
            "parallel_chunks_pending",
            "Chunks submitted to the engine but not yet reduced.",
        )
        self._jobs_gauge = self.metrics.gauge(
            "parallel_jobs", "Worker processes the engine fans out to."
        )
        self._cache_hits = self.metrics.counter(
            "hotpath_cache_hits_total",
            "Hot-path memo hits observed during chunk analysis, by cache.",
        )
        self._cache_misses = self.metrics.counter(
            "hotpath_cache_misses_total",
            "Hot-path memo misses observed during chunk analysis, by cache.",
        )
        self._stage_seconds = self.metrics.histogram(
            "analyze_stage_seconds",
            "Wall-clock seconds per pipeline stage "
            "(load/intern/detect/quantify/merge), by stage.",
            buckets=_CHUNK_BUCKETS,
        )
        #: Accumulated stage breakdown of the most recent run — reset by
        #: :meth:`analyze`, folded into by every observed outcome.
        self.stage_profile = StageProfile()

    # --- task execution ----------------------------------------------------

    def _observe(self, outcome: ChunkOutcome, remaining: int) -> None:
        self._chunks_metric.inc()
        self._pending_gauge.set(remaining)
        self._chunk_seconds.observe(
            outcome.elapsed_seconds, worker=outcome.worker
        )
        self.stage_profile.add_outcome(outcome)
        for stage, elapsed in outcome.stage_seconds:
            self._stage_seconds.observe(elapsed, stage=stage)
        for cache, hits, misses in (
            ("view", outcome.view_cache_hits, outcome.view_cache_misses),
            ("b58", outcome.b58_cache_hits, outcome.b58_cache_misses),
        ):
            if hits:
                self._cache_hits.inc(hits, cache=cache)
            if misses:
                self._cache_misses.inc(misses, cache=cache)

    def _run_in_process(self, tasks: list[ChunkTask]) -> list[ChunkOutcome]:
        outcomes: list[ChunkOutcome] = []
        pipelined = iter_batch_outcomes(
            self.database, tasks, prefetch=self.prefetch
        )
        for position, outcome in enumerate(pipelined):
            self._observe(outcome, remaining=len(tasks) - position - 1)
            outcomes.append(outcome)
        return outcomes

    def _run_pool(self, tasks: list[ChunkTask]) -> list[ChunkOutcome]:
        import multiprocessing

        workers = min(self.jobs, len(tasks))
        outcomes: list[ChunkOutcome] = []
        pool = multiprocessing.Pool(
            processes=workers,
            initializer=init_worker,
            initargs=(str(self.database.path),),
        )
        try:
            if self.prefetch > 0 and len(tasks) > workers:
                # Deal the chunk sequence round-robin into one batch per
                # worker; each worker pipelines its own loads against its
                # own compute. Outcomes keep their global index, so the
                # deterministic merge is indifferent to the dealing.
                batches = [
                    ChunkBatch(
                        tasks=tuple(tasks[offset::workers]),
                        prefetch=self.prefetch,
                    )
                    for offset in range(workers)
                ]
                for batch_outcomes in pool.imap_unordered(
                    run_chunk_batch, batches
                ):
                    for outcome in batch_outcomes:
                        self._observe(
                            outcome, remaining=len(tasks) - len(outcomes) - 1
                        )
                        outcomes.append(outcome)
            else:
                for outcome in pool.imap_unordered(run_chunk, tasks):
                    self._observe(
                        outcome, remaining=len(tasks) - len(outcomes) - 1
                    )
                    outcomes.append(outcome)
        finally:
            pool.close()
            pool.join()
        return outcomes

    def run_tasks(self, tasks: Iterable[ChunkTask]) -> list[ChunkOutcome]:
        """Analyze chunk tasks with the configured parallelism.

        Also the incremental analyzer's entry point for sharding its
        delta. Outcomes are returned in completion order; reducers must
        order by ``outcome.index`` (— :func:`merge_outcomes` does).
        """
        tasks = list(tasks)
        self._jobs_gauge.set(self.jobs)
        self._pending_gauge.set(len(tasks))
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            return self._run_in_process(tasks)
        return self._run_pool(tasks)

    # --- the full pass -----------------------------------------------------

    def tasks_for_chunks(
        self, chunks: Iterable, first_index: int = 0
    ) -> list[ChunkTask]:
        """Wrap archive chunks in picklable tasks for this engine's spec."""
        return [
            ChunkTask(
                index=first_index + offset,
                archive_path=str(self.database.path),
                spec=self.spec,
                chunk=chunk,
                engine=self.engine,
            )
            for offset, chunk in enumerate(chunks)
        ]

    def analyze(
        self,
        persist: bool = True,
        poll_overlap_fraction: float | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> AnalysisReport:
        """Analyze the whole archive and assemble the campaign report.

        With ``persist`` (the default) the merged detections and
        classifications are written back to the archive, mirroring what
        the serial pipeline's ``record_analysis`` hook does.
        """
        with self.metrics.span("parallel.analyze"):
            self.stage_profile = StageProfile()
            chunks = plan_chunks(self.query, chunk_size=self.chunk_size)
            tasks = self.tasks_for_chunks(chunks)
            outcomes = self.run_tasks(tasks)
            if progress is not None:
                progress(len(outcomes), len(tasks))
            with StageTimer(
                self.stage_profile, "merge", histogram=self._stage_seconds
            ):
                merged = merge_outcomes(
                    outcomes,
                    threshold_lamports=self.spec.threshold_lamports,
                )
                report = self.build_report(
                    merged, poll_overlap_fraction=poll_overlap_fraction
                )
            if persist:
                self.persist(report)
        return report

    def build_report(
        self,
        merged: MergedAnalysis,
        poll_overlap_fraction: float | None = None,
    ) -> AnalysisReport:
        """Campaign-level aggregation over merged chunk results."""
        daily = sandwiches_per_day(merged.quantified, self.oracle)
        headline = headline_stats(
            merged.quantified,
            merged.defensive_report,
            bundles_collected=self.query.count_bundles(),
            oracle=self.oracle,
            poll_overlap_fraction=poll_overlap_fraction,
        )
        return AnalysisReport(
            quantified=merged.quantified,
            defensive=merged.defensive_report,
            daily=daily,
            headline=headline,
            detection_stats=merged.stats,
        )

    def persist(self, report: AnalysisReport) -> None:
        """Write detections and classifications back to the archive."""
        writer = ArchiveBundleStore(self.database, metrics=self.metrics)
        writer.record_sandwiches(report.quantified)
        writer.record_defensive(report.defensive)
