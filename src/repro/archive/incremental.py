"""Incremental re-analysis: detect only what changed since the last pass.

A four-month campaign re-analyzed nightly should not re-run detection over
millions of already-judged bundles. :class:`IncrementalAnalyzer` keeps a
watermark per consumer in the archive's ``analysis_state`` table (the
highest bundle ``seq`` already examined, plus the ids of length-three
bundles still awaiting transaction details) and each pass:

1. loads only bundles past the watermark, plus the still-pending ones,
2. runs the unchanged detector/quantifier/classifier over that slice,
3. appends the new detections and classifications to the archive,
4. rebuilds the full campaign-level report from archive rows — so the
   output covers the whole campaign even though detection work was
   proportional to the delta.

Detector statistics are merged across passes in the stored state, keeping
the reported totals equal to what one monolithic pass would have counted.

With ``jobs > 1`` the delta itself is sharded: the carried-over pending
bundles form one explicit worklist task and the rows past the watermark are
split into ``seq``-range chunks, all executed by
:class:`repro.parallel.engine.ParallelAnalysisEngine` and folded back with
its deterministic reducer — the stored state and rebuilt report are
identical to a serial pass over the same delta.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.archive.schema import bundle_from_row
from repro.archive.store import ArchiveBundleStore
from repro.collector.store import BundleStore
from repro.core.aggregate import headline_stats, sandwiches_per_day
from repro.core.defensive import DefensiveBundlingClassifier, DefensiveReport
from repro.core.detector import DetectionStats, SandwichDetector
from repro.core.pipeline import AnalysisReport
from repro.core.quantify import LossQuantifier
from repro.dex.oracle import PriceOracle
from repro.errors import ConfigError
from repro.explorer.models import BundleRecord
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # deferred: repro.parallel imports repro.archive
    from repro.parallel.chunks import DetectorSpec


@dataclass
class IncrementalResult:
    """One incremental pass: the full rebuilt report plus delta counts."""

    report: AnalysisReport
    new_bundles: int
    new_sandwiches: int
    new_classified: int
    pending_detail_bundles: int
    #: True when the pass found nothing past the watermark and touched
    #: neither the archive's analysis tables nor the watermark row.
    no_op: bool = False


class IncrementalAnalyzer:
    """Watermarked analysis over an archive database.

    Each named ``consumer`` owns an independent watermark, so e.g. a
    nightly detection job and an ad-hoc re-measurement can progress
    separately over the same archive.
    """

    def __init__(
        self,
        database: ArchiveDatabase,
        consumer: str = "analysis",
        oracle: PriceOracle | None = None,
        detector_factory: Callable[[], SandwichDetector] | None = None,
        classifier: DefensiveBundlingClassifier | None = None,
        metrics: MetricsRegistry | None = None,
        jobs: int = 1,
        chunk_size: int = 2_048,
        spec: DetectorSpec | None = None,
        engine: str = "object",
        prefetch: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if engine not in {"object", "columnar"}:
            raise ConfigError(
                f"engine must be object or columnar, got {engine!r}"
            )
        self.database = database
        self.consumer = consumer
        self.oracle = oracle or PriceOracle()
        # Live factories cannot cross a process boundary; parallel passes
        # describe the stack with a picklable spec instead.
        self._custom_stack = (
            detector_factory is not None or classifier is not None
        )
        self.detector_factory = detector_factory or SandwichDetector
        self.classifier = classifier or DefensiveBundlingClassifier()
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.spec = spec
        self.engine = engine
        self.prefetch = prefetch
        self.quantifier = LossQuantifier(self.oracle)
        self.query = ArchiveQuery(database, metrics=metrics)
        # A writer facade over the same database: reuses the store's
        # insert statements and row metrics without loading memory state.
        self._writer = ArchiveBundleStore(database, metrics=metrics)
        self.metrics = self._writer.metrics
        self._runs_metric = self.metrics.counter(
            "archive_incremental_runs_total",
            "Incremental analysis passes over the archive.",
        )

    # --- watermark state ---------------------------------------------------

    def load_state(self) -> dict:
        """The consumer's watermark row (zeros when it never ran)."""
        row = self.database.connection.execute(
            "SELECT * FROM analysis_state WHERE consumer = ?",
            (self.consumer,),
        ).fetchone()
        if row is None:
            return {
                "exists": False,
                "last_bundle_seq": 0,
                "last_detail_seq": 0,
                "updated_sim_time": 0.0,
                "state": {"pending_ids": [], "stats": {}},
            }
        return {
            "exists": True,
            "last_bundle_seq": row["last_bundle_seq"],
            "last_detail_seq": row["last_detail_seq"],
            "updated_sim_time": row["updated_sim_time"],
            "state": json.loads(row["state"]),
        }

    def _save_state(
        self,
        last_bundle_seq: int,
        last_detail_seq: int,
        sim_time: float,
        state: dict,
    ) -> None:
        conn = self.database.connection
        conn.execute(
            "INSERT OR REPLACE INTO analysis_state "
            "(consumer, last_bundle_seq, last_detail_seq, "
            "updated_sim_time, state) VALUES (?,?,?,?,?)",
            (
                self.consumer,
                last_bundle_seq,
                last_detail_seq,
                sim_time,
                json.dumps(state, sort_keys=True),
            ),
        )
        conn.commit()

    # --- the pass ----------------------------------------------------------

    def _slice_store(
        self, state: dict, detail_lengths: tuple[int, ...] = (3,)
    ) -> tuple[BundleStore, list, int]:
        """The working set: pending bundles plus everything past the mark.

        Returns the mini in-memory store, the new bundle rows, and the new
        high-water ``seq``. ``detail_lengths`` names the bundle lengths the
        detector will want transaction details for (``(3,)`` for the
        standard detector, the window lengths for the windowed one).
        """
        last_seq = int(state["last_bundle_seq"])
        rows = self.database.connection.execute(
            "SELECT * FROM bundles WHERE seq > ? ORDER BY seq", (last_seq,)
        ).fetchall()
        high_seq = rows[-1]["seq"] if rows else last_seq
        mini = BundleStore()
        pending: list[BundleRecord] = []
        for bundle_id in state["state"].get("pending_ids", []):
            bundle = self.query.bundle(bundle_id)
            if bundle is not None:
                pending.append(bundle)
        mini.add_bundles(pending)
        mini.add_bundles([bundle_from_row(row) for row in rows])
        # Pull whatever details exist for each detection candidate.
        for length in detail_lengths:
            for bundle in mini.bundles_of_length(length):
                mini.add_details(self.query.details_for_bundle(bundle))
        return mini, rows, high_seq

    def _serial_delta(
        self, state: dict
    ) -> tuple[list, DefensiveReport, DetectionStats, list[str], int, int]:
        """Analyze the delta in-process (the ``jobs=1`` path)."""
        detector = self.detector_factory()
        detail_lengths = tuple(getattr(detector, "lengths", (3,)))
        mini, new_rows, high_seq = self._slice_store(
            state, detail_lengths=detail_lengths
        )
        events = detector.detect_all(mini)
        quantified = self.quantifier.quantify_all(events)
        classification = self.classifier.classify(mini)
        wanted = set(detail_lengths)
        pending_ids = [
            bundle.bundle_id
            for bundle in mini.bundles()
            if bundle.num_transactions in wanted
            and mini.missing_details(bundle)
        ]
        return (
            quantified,
            classification,
            detector.stats,
            pending_ids,
            len(new_rows),
            high_seq,
        )

    def _parallel_delta(
        self, state: dict
    ) -> tuple[list, DefensiveReport, DetectionStats, list[str], int, int]:
        """Shard the delta across the parallel engine's worker pool.

        The carried-over pending bundles become task 0 (an explicit
        worklist in stored order) and rows past the watermark become
        ``seq``-range chunk tasks — together exactly the serial working
        set, in the same collection order.
        """
        from repro.parallel.chunks import ChunkTask, DetectorSpec
        from repro.parallel.engine import ParallelAnalysisEngine
        from repro.parallel.merge import merge_outcomes

        spec = self.spec
        if spec is None:
            if self._custom_stack:
                raise ConfigError(
                    "parallel incremental analysis cannot ship a live "
                    "detector_factory/classifier to workers; describe the "
                    "stack with a DetectorSpec instead"
                )
            spec = DetectorSpec()
        engine_kwargs = (
            {} if self.prefetch is None else {"prefetch": self.prefetch}
        )
        engine = ParallelAnalysisEngine(
            self.database,
            jobs=self.jobs,
            chunk_size=self.chunk_size,
            spec=spec,
            oracle=self.oracle,
            metrics=self.metrics,
            engine=self.engine,
            **engine_kwargs,
        )
        last_seq = int(state["last_bundle_seq"])
        chunks = list(
            engine.query.iter_chunks(
                chunk_size=self.chunk_size, seq_min=last_seq
            )
        )
        tasks = []
        pending = tuple(state["state"].get("pending_ids", []))
        if pending:
            tasks.append(
                ChunkTask(
                    index=0,
                    archive_path=str(self.database.path),
                    spec=engine.spec,
                    bundle_ids=pending,
                    engine=self.engine,
                )
            )
        tasks.extend(engine.tasks_for_chunks(chunks, first_index=1))
        outcomes = engine.run_tasks(tasks)
        merged = merge_outcomes(
            outcomes, threshold_lamports=engine.spec.threshold_lamports
        )
        high_seq = chunks[-1].seq_hi if chunks else last_seq
        return (
            merged.quantified,
            merged.defensive_report,
            merged.stats,
            list(merged.pending_detail_ids),
            sum(chunk.count for chunk in chunks),
            high_seq,
        )

    def _merge_stats(self, accumulated: dict, stats: DetectionStats) -> dict:
        merged = dict(accumulated)
        merged["bundles_examined"] = (
            merged.get("bundles_examined", 0) + stats.bundles_examined
        )
        merged["bundles_detected"] = (
            merged.get("bundles_detected", 0) + stats.bundles_detected
        )
        merged["bundles_skipped_incomplete"] = (
            merged.get("bundles_skipped_incomplete", 0)
            + stats.bundles_skipped_incomplete
        )
        rejections = dict(merged.get("rejections_by_criterion", {}))
        for criterion, count in stats.rejections_by_criterion.items():
            rejections[criterion] = rejections.get(criterion, 0) + count
        merged["rejections_by_criterion"] = rejections
        return merged

    def _defensive_report(self) -> DefensiveReport:
        """Rebuild the campaign-wide defensive report from archive rows."""
        report = DefensiveReport(
            threshold_lamports=self.classifier.threshold_lamports
        )
        for classification, bundle in self.query.defensive_records():
            bucket = (
                report.defensive
                if classification == "defensive"
                else report.priority
            )
            bucket.append(bundle)
        return report

    def _is_no_op(self, state: dict) -> bool:
        """Whether a pass over ``state`` would find nothing to analyze.

        Requires an existing watermark (a first pass must establish state
        even over an empty archive) and no bundle rows past the mark.
        Carried-over pending bundles only force a pass when new
        transaction details have landed since — without fresh details a
        re-feed would count each pending bundle skipped again and subtract
        the same amount via ``carried_skipped``, a provable wash.
        """
        if not state["exists"]:
            return False
        if self.database.max_seq("bundles") > int(state["last_bundle_seq"]):
            return False
        if state["state"].get("pending_ids", []):
            return (
                self.database.max_seq("transactions")
                <= int(state["last_detail_seq"])
            )
        return True

    def analyze(self, sim_time: float = 0.0) -> IncrementalResult:
        """Run one incremental pass and rebuild the full report.

        ``sim_time`` stamps the watermark row (pass the campaign clock when
        available; defaults keep standalone use simple).
        """
        with self.metrics.span("analysis.incremental"):
            state = self.load_state()
            if self._is_no_op(state):
                # Zero new bundles and nothing carried over: rebuild the
                # report from what the archive already holds, write
                # nothing (no analysis rows, no watermark bump).
                report = self._build_report(state["state"].get("stats", {}))
                self.metrics.counter(
                    "archive_incremental_noop_total",
                    "Incremental passes that found nothing new.",
                ).inc()
                self._runs_metric.inc()
                return IncrementalResult(
                    report=report,
                    new_bundles=0,
                    new_sandwiches=0,
                    new_classified=0,
                    pending_detail_bundles=len(
                        state["state"].get("pending_ids", [])
                    ),
                    no_op=True,
                )
            if self.jobs > 1 or self.engine == "columnar":
                # The columnar path always routes through the chunked
                # delta — at jobs=1 it runs in-process, just vectorized.
                delta = self._parallel_delta(state)
            else:
                delta = self._serial_delta(state)
            quantified, classification, stats, pending_ids = delta[:4]
            new_bundles, high_seq = delta[4:]

            if quantified:
                self._writer.record_sandwiches(quantified)
            classified = classification.length_one_total
            if classified:
                self._writer.record_defensive(classification)

            merged_stats = self._merge_stats(
                state["state"].get("stats", {}), stats
            )
            # Every bundle carried over as pending was counted
            # skipped-incomplete last pass and re-fed this pass (where it
            # is either examined or counted skipped again); subtracting
            # last pass's count keeps totals equal to one monolithic run.
            merged_stats["bundles_skipped_incomplete"] -= state["state"].get(
                "carried_skipped", 0
            )
            carried = len(pending_ids)
            self._save_state(
                high_seq,
                self.database.max_seq("transactions"),
                sim_time,
                {
                    "pending_ids": pending_ids,
                    "stats": merged_stats,
                    "carried_skipped": carried,
                },
            )

            report = self._build_report(merged_stats)
        self._runs_metric.inc()
        return IncrementalResult(
            report=report,
            new_bundles=new_bundles,
            new_sandwiches=len(quantified),
            new_classified=classified,
            pending_detail_bundles=carried,
        )

    def _build_report(self, merged_stats: dict) -> AnalysisReport:
        """Assemble the campaign-wide report from archive rows."""
        all_quantified = self.query.sandwiches(order_by="landed_at")
        defensive_report = self._defensive_report()
        daily = sandwiches_per_day(all_quantified, self.oracle)
        headline = headline_stats(
            all_quantified,
            defensive_report,
            bundles_collected=self.query.count_bundles(),
            oracle=self.oracle,
        )
        stats = DetectionStats(
            bundles_examined=merged_stats.get("bundles_examined", 0),
            bundles_detected=merged_stats.get("bundles_detected", 0),
            bundles_skipped_incomplete=merged_stats.get(
                "bundles_skipped_incomplete", 0
            ),
            rejections_by_criterion=dict(
                merged_stats.get("rejections_by_criterion", {})
            ),
        )
        return AnalysisReport(
            quantified=all_quantified,
            defensive=defensive_report,
            daily=daily,
            headline=headline,
            detection_stats=stats,
        )
