"""Incremental re-analysis: detect only what changed since the last pass.

A four-month campaign re-analyzed nightly should not re-run detection over
millions of already-judged bundles. :class:`IncrementalAnalyzer` keeps a
watermark per consumer in the archive's ``analysis_state`` table (the
highest bundle ``seq`` already examined, plus the ids of length-three
bundles still awaiting transaction details) and each pass:

1. loads only bundles past the watermark, plus the still-pending ones,
2. runs the unchanged detector/quantifier/classifier over that slice,
3. appends the new detections and classifications to the archive,
4. rebuilds the full campaign-level report from archive rows — so the
   output covers the whole campaign even though detection work was
   proportional to the delta.

Detector statistics are merged across passes in the stored state, keeping
the reported totals equal to what one monolithic pass would have counted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.archive.database import ArchiveDatabase
from repro.archive.query import ArchiveQuery
from repro.archive.schema import bundle_from_row
from repro.archive.store import ArchiveBundleStore
from repro.collector.store import BundleStore
from repro.core.aggregate import headline_stats, sandwiches_per_day
from repro.core.defensive import DefensiveBundlingClassifier, DefensiveReport
from repro.core.detector import DetectionStats, SandwichDetector
from repro.core.pipeline import AnalysisReport
from repro.core.quantify import LossQuantifier
from repro.dex.oracle import PriceOracle
from repro.explorer.models import BundleRecord
from repro.obs.registry import MetricsRegistry


@dataclass
class IncrementalResult:
    """One incremental pass: the full rebuilt report plus delta counts."""

    report: AnalysisReport
    new_bundles: int
    new_sandwiches: int
    new_classified: int
    pending_detail_bundles: int


class IncrementalAnalyzer:
    """Watermarked analysis over an archive database.

    Each named ``consumer`` owns an independent watermark, so e.g. a
    nightly detection job and an ad-hoc re-measurement can progress
    separately over the same archive.
    """

    def __init__(
        self,
        database: ArchiveDatabase,
        consumer: str = "analysis",
        oracle: PriceOracle | None = None,
        detector_factory: Callable[[], SandwichDetector] | None = None,
        classifier: DefensiveBundlingClassifier | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.database = database
        self.consumer = consumer
        self.oracle = oracle or PriceOracle()
        self.detector_factory = detector_factory or SandwichDetector
        self.classifier = classifier or DefensiveBundlingClassifier()
        self.quantifier = LossQuantifier(self.oracle)
        self.query = ArchiveQuery(database, metrics=metrics)
        # A writer facade over the same database: reuses the store's
        # insert statements and row metrics without loading memory state.
        self._writer = ArchiveBundleStore(database, metrics=metrics)
        self.metrics = self._writer.metrics
        self._runs_metric = self.metrics.counter(
            "archive_incremental_runs_total",
            "Incremental analysis passes over the archive.",
        )

    # --- watermark state ---------------------------------------------------

    def load_state(self) -> dict:
        """The consumer's watermark row (zeros when it never ran)."""
        row = self.database.connection.execute(
            "SELECT * FROM analysis_state WHERE consumer = ?",
            (self.consumer,),
        ).fetchone()
        if row is None:
            return {
                "last_bundle_seq": 0,
                "last_detail_seq": 0,
                "updated_sim_time": 0.0,
                "state": {"pending_ids": [], "stats": {}},
            }
        return {
            "last_bundle_seq": row["last_bundle_seq"],
            "last_detail_seq": row["last_detail_seq"],
            "updated_sim_time": row["updated_sim_time"],
            "state": json.loads(row["state"]),
        }

    def _save_state(
        self,
        last_bundle_seq: int,
        last_detail_seq: int,
        sim_time: float,
        state: dict,
    ) -> None:
        conn = self.database.connection
        conn.execute(
            "INSERT OR REPLACE INTO analysis_state "
            "(consumer, last_bundle_seq, last_detail_seq, "
            "updated_sim_time, state) VALUES (?,?,?,?,?)",
            (
                self.consumer,
                last_bundle_seq,
                last_detail_seq,
                sim_time,
                json.dumps(state, sort_keys=True),
            ),
        )
        conn.commit()

    # --- the pass ----------------------------------------------------------

    def _slice_store(
        self, state: dict
    ) -> tuple[BundleStore, list, int]:
        """The working set: pending bundles plus everything past the mark.

        Returns the mini in-memory store, the new bundle rows, and the new
        high-water ``seq``.
        """
        last_seq = int(state["last_bundle_seq"])
        rows = self.database.connection.execute(
            "SELECT * FROM bundles WHERE seq > ? ORDER BY seq", (last_seq,)
        ).fetchall()
        high_seq = rows[-1]["seq"] if rows else last_seq
        mini = BundleStore()
        pending: list[BundleRecord] = []
        for bundle_id in state["state"].get("pending_ids", []):
            bundle = self.query.bundle(bundle_id)
            if bundle is not None:
                pending.append(bundle)
        mini.add_bundles(pending)
        mini.add_bundles([bundle_from_row(row) for row in rows])
        # Pull whatever details exist for each detection candidate.
        for bundle in mini.bundles_of_length(3):
            mini.add_details(self.query.details_for_bundle(bundle))
        return mini, rows, high_seq

    def _merge_stats(self, accumulated: dict, stats: DetectionStats) -> dict:
        merged = dict(accumulated)
        merged["bundles_examined"] = (
            merged.get("bundles_examined", 0) + stats.bundles_examined
        )
        merged["bundles_detected"] = (
            merged.get("bundles_detected", 0) + stats.bundles_detected
        )
        merged["bundles_skipped_incomplete"] = (
            merged.get("bundles_skipped_incomplete", 0)
            + stats.bundles_skipped_incomplete
        )
        rejections = dict(merged.get("rejections_by_criterion", {}))
        for criterion, count in stats.rejections_by_criterion.items():
            rejections[criterion] = rejections.get(criterion, 0) + count
        merged["rejections_by_criterion"] = rejections
        return merged

    def _defensive_report(self) -> DefensiveReport:
        """Rebuild the campaign-wide defensive report from archive rows."""
        report = DefensiveReport(
            threshold_lamports=self.classifier.threshold_lamports
        )
        rows = self.database.connection.execute(
            "SELECT d.classification, b.* FROM defensive d "
            "JOIN bundles b ON b.bundle_id = d.bundle_id ORDER BY b.seq"
        ).fetchall()
        for row in rows:
            bucket = (
                report.defensive
                if row["classification"] == "defensive"
                else report.priority
            )
            bucket.append(bundle_from_row(row))
        return report

    def analyze(self, sim_time: float = 0.0) -> IncrementalResult:
        """Run one incremental pass and rebuild the full report.

        ``sim_time`` stamps the watermark row (pass the campaign clock when
        available; defaults keep standalone use simple).
        """
        with self.metrics.span("analysis.incremental"):
            state = self.load_state()
            mini, new_rows, high_seq = self._slice_store(state)

            detector = self.detector_factory()
            events = detector.detect_all(mini)
            quantified = self.quantifier.quantify_all(events)
            if quantified:
                self._writer.record_sandwiches(quantified)

            fresh_classification = self.classifier.classify(mini)
            classified = fresh_classification.length_one_total
            if classified:
                self._writer.record_defensive(fresh_classification)

            pending_ids = [
                bundle.bundle_id
                for bundle in mini.bundles_of_length(3)
                if mini.missing_details(bundle)
            ]
            merged_stats = self._merge_stats(
                state["state"].get("stats", {}), detector.stats
            )
            # Every bundle carried over as pending was counted
            # skipped-incomplete last pass and re-fed this pass (where it
            # is either examined or counted skipped again); subtracting
            # last pass's count keeps totals equal to one monolithic run.
            merged_stats["bundles_skipped_incomplete"] -= state["state"].get(
                "carried_skipped", 0
            )
            carried = len(pending_ids)
            self._save_state(
                high_seq,
                self.database.max_seq("transactions"),
                sim_time,
                {
                    "pending_ids": pending_ids,
                    "stats": merged_stats,
                    "carried_skipped": carried,
                },
            )

            report = self._build_report(merged_stats)
        self._runs_metric.inc()
        return IncrementalResult(
            report=report,
            new_bundles=len(new_rows),
            new_sandwiches=len(quantified),
            new_classified=classified,
            pending_detail_bundles=carried,
        )

    def _build_report(self, merged_stats: dict) -> AnalysisReport:
        """Assemble the campaign-wide report from archive rows."""
        all_quantified = self.query.sandwiches(order_by="landed_at")
        defensive_report = self._defensive_report()
        daily = sandwiches_per_day(all_quantified, self.oracle)
        headline = headline_stats(
            all_quantified,
            defensive_report,
            bundles_collected=self.query.count_bundles(),
            oracle=self.oracle,
        )
        stats = DetectionStats(
            bundles_examined=merged_stats.get("bundles_examined", 0),
            bundles_detected=merged_stats.get("bundles_detected", 0),
            bundles_skipped_incomplete=merged_stats.get(
                "bundles_skipped_incomplete", 0
            ),
            rejections_by_criterion=dict(
                merged_stats.get("rejections_by_criterion", {})
            ),
        )
        return AnalysisReport(
            quantified=all_quantified,
            defensive=defensive_report,
            daily=daily,
            headline=headline,
            detection_stats=stats,
        )
