"""Campaign checkpoint/resume: kill a campaign, continue it byte-identically.

The trick that makes exact resume cheap is that collection never feeds back
into the simulation — polling is read-only against the explorer. So a
checkpoint does not need to serialize the simulated world at all. It stores
only the *collector-side* state (poll cursor, detail-fetch worklist,
coverage estimator, per-client rate-limit budgets, metrics snapshot) plus
the archive's high-water marks, and resume proceeds by:

1. rolling the archive back to the checkpoint's high-water marks (a killed
   run keeps writing between its last checkpoint and the crash),
2. rebuilding the in-memory store from the archive in ``seq`` order,
3. replaying the deterministic simulation up to the checkpointed day with
   collection disabled (same seed, same RNG draws, same clock values),
4. restoring collector state and overwriting the metrics registry with the
   checkpointed snapshot,
5. continuing the day loop exactly where the killed run stopped.

Replay fidelity is verified, not assumed: the engine's root RNG fingerprint
and the sim clock are checked against values recorded at checkpoint time,
and any divergence raises instead of silently producing different numbers.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.archive.database import ArchiveDatabase
from repro.archive.store import ArchiveBundleStore, FlushPolicy
from repro.collector.campaign import CampaignResult, MeasurementCampaign
from repro.collector.detail_fetcher import DetailFetcherConfig
from repro.collector.poller import PollerConfig
from repro.errors import ConfigError, StoreError
from repro.explorer.service import ExplorerConfig
from repro.faults.plan import FaultPlan
from repro.obs.export import restore_snapshot_into
from repro.obs.registry import MetricsRegistry
from repro.simulation.config import ScenarioConfig
from repro.simulation.downtime import DowntimeSchedule
from repro.utils.serialization import dumps

#: Bump when the checkpoint payload layout changes; resume refuses
#: payloads from other versions rather than guessing.
CHECKPOINT_VERSION = 1

#: Sim-clock drift tolerated between replay and checkpoint before resume
#: refuses. Replay recomputes the same floats, so this is effectively an
#: equality check with room for benign last-bit noise.
_CLOCK_TOLERANCE_SECONDS = 1e-6


def scenario_fingerprint(scenario: ScenarioConfig) -> str:
    """Stable hash of a scenario's full configuration.

    Stored in every checkpoint so resume can refuse an archive produced
    under different parameters — replaying a different scenario would
    "succeed" while silently diverging from the killed run.
    """
    payload = dumps(scenario)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CheckpointedCampaign:
    """A measurement campaign that persists resume points into an archive.

    Runs the same day loop as :class:`MeasurementCampaign.run`, saving a
    checkpoint into the archive every ``checkpoint_every_days`` days (and
    always after the final day). :meth:`resume` continues a killed run from
    its latest checkpoint with byte-identical analysis output.
    """

    def __init__(
        self,
        scenario: ScenarioConfig,
        archive: ArchiveDatabase | str | Path,
        checkpoint_every_days: int = 1,
        downtime: DowntimeSchedule | None = None,
        flush_policy: FlushPolicy | None = None,
        poller_config: PollerConfig | None = None,
        fetcher_config: DetailFetcherConfig | None = None,
        explorer_config: ExplorerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if checkpoint_every_days < 1:
            raise ConfigError("checkpoint_every_days must be >= 1")
        self.scenario = scenario
        self.checkpoint_every_days = checkpoint_every_days
        registry = metrics if metrics is not None else MetricsRegistry()
        self.store = ArchiveBundleStore(
            archive, flush_policy=flush_policy, metrics=registry
        )
        self.campaign = MeasurementCampaign(
            scenario,
            downtime,
            poller_config=poller_config,
            fetcher_config=fetcher_config,
            explorer_config=explorer_config,
            metrics=registry,
            store=self.store,
            fault_plan=fault_plan,
        )
        self.start_day = 0

    # --- checkpoint capture ------------------------------------------------

    def _capture_payload(self, completed_days: int) -> dict:
        engine = self.campaign.engine
        payload = self._base_payload(engine, completed_days)
        if self.campaign.faults is not None:
            # Per-endpoint call counters restore the injector's RNG
            # schedule; the accumulated log restores its integrity
            # accounting. The plan fingerprint guards against resuming
            # under a different fault schedule.
            payload["faults"] = {
                "plan_fingerprint": self.campaign.faults.plan.fingerprint(),
                "state": self.campaign.faults.state(),
            }
        return payload

    def _base_payload(self, engine, completed_days: int) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "completed_days": completed_days,
            "sim_time": engine.clock.now(),
            "seed": self.scenario.seed,
            "scenario_fingerprint": scenario_fingerprint(self.scenario),
            "store": {
                "bundle_seq": self.store.database.max_seq("bundles"),
                "detail_seq": self.store.database.max_seq("transactions"),
            },
            "poller": self.campaign.poller.state(),
            "fetcher": self.campaign.fetcher.state(),
            "coverage": self.campaign.coverage.state(),
            "explorer": self.campaign.service.state(),
            "rng": {"engine_root": engine.rng.state_fingerprint()},
            "metrics": self.campaign.metrics.snapshot(),
        }

    def _save_checkpoint(
        self, completed_days: int, finished: bool = False
    ) -> int:
        # Flush first so the captured high-water marks cover everything
        # collected so far; the payload (including its metrics snapshot)
        # is then self-consistent with the archive's committed contents.
        self.store.flush(trigger="checkpoint")
        payload = self._capture_payload(completed_days)
        if finished:
            payload["finished"] = True
        return self.store.save_checkpoint(
            payload, completed_days, payload["sim_time"]
        )

    # --- the run loop ------------------------------------------------------

    def run(self) -> CampaignResult:
        """Run (or continue) the campaign, checkpointing between days."""
        days = self.scenario.days
        engine = self.campaign.engine
        for day in range(self.start_day, days):
            engine.run_day(day)
            completed = day + 1
            if completed % self.checkpoint_every_days == 0 or completed == days:
                self._save_checkpoint(completed)
        result = self.campaign.finalize()
        # A final marker checkpoint records completion (and the post-drain
        # collector state) so resume can refuse already-finished archives.
        self._save_checkpoint(days, finished=True)
        return result

    # --- resume ------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        scenario: ScenarioConfig,
        archive: ArchiveDatabase | str | Path,
        checkpoint_every_days: int = 1,
        downtime: DowntimeSchedule | None = None,
        flush_policy: FlushPolicy | None = None,
        poller_config: PollerConfig | None = None,
        fetcher_config: DetailFetcherConfig | None = None,
        explorer_config: ExplorerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> "CheckpointedCampaign":
        """Rebuild a killed campaign from an archive's latest checkpoint.

        The caller must supply the same scenario (and downtime schedule, if
        one was injected) as the original run; the checkpoint's scenario
        fingerprint enforces this.

        Raises:
            StoreError: if the archive holds no checkpoint, the campaign
                already finished, or deterministic replay diverges from the
                checkpointed RNG/clock state.
            ConfigError: on scenario or checkpoint-version mismatch.
        """
        self = cls(
            scenario,
            archive,
            checkpoint_every_days=checkpoint_every_days,
            downtime=downtime,
            flush_policy=flush_policy,
            poller_config=poller_config,
            fetcher_config=fetcher_config,
            explorer_config=explorer_config,
            metrics=metrics,
            fault_plan=fault_plan,
        )
        payload = self.store.latest_checkpoint()
        if payload is None:
            raise StoreError(
                f"archive {self.store.database.path} holds no checkpoint "
                "to resume from"
            )
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ConfigError(
                f"checkpoint version {payload.get('version')!r} is not "
                f"supported (expected {CHECKPOINT_VERSION})"
            )
        if payload.get("finished"):
            raise StoreError(
                "campaign in this archive already finished; nothing to resume"
            )
        expected = scenario_fingerprint(scenario)
        if payload.get("scenario_fingerprint") != expected:
            raise ConfigError(
                "scenario does not match the one this archive was "
                "collected under (fingerprint "
                f"{payload.get('scenario_fingerprint')} != {expected})"
            )

        # 1-2: roll the archive back to the checkpoint, rebuild the store.
        self.store.truncate_after(
            int(payload["store"]["bundle_seq"]),
            int(payload["store"]["detail_seq"]),
        )
        self.store.load_memory_state()

        # 3: deterministic replay of the simulation, collection off.
        completed = int(payload["completed_days"])
        self.campaign.collect_enabled = False
        self.campaign.engine.run_days(0, completed)
        self.campaign.collect_enabled = True

        clock_now = self.campaign.engine.clock.now()
        if abs(clock_now - float(payload["sim_time"])) > _CLOCK_TOLERANCE_SECONDS:
            raise StoreError(
                f"replay clock {clock_now} diverged from checkpoint "
                f"sim_time {payload['sim_time']}"
            )
        fingerprint = self.campaign.engine.rng.state_fingerprint()
        if fingerprint != payload["rng"]["engine_root"]:
            raise StoreError(
                "replayed engine RNG state does not match the checkpoint "
                f"({fingerprint} != {payload['rng']['engine_root']}); "
                "the archive was not produced by this code/scenario"
            )

        # 4: restore collector-side state and the metrics registry.
        self.campaign.poller.restore_state(payload["poller"])
        self.campaign.fetcher.restore_state(payload["fetcher"])
        self.campaign.coverage.restore_state(payload["coverage"])
        self.campaign.service.restore_state(payload["explorer"])
        faults_payload = payload.get("faults")
        if faults_payload is not None:
            if self.campaign.faults is None:
                raise ConfigError(
                    "checkpoint was collected under fault injection; "
                    "resume requires the same fault plan"
                )
            expected_plan = self.campaign.faults.plan.fingerprint()
            if faults_payload.get("plan_fingerprint") != expected_plan:
                raise ConfigError(
                    "fault plan does not match the one this archive was "
                    "collected under (fingerprint "
                    f"{faults_payload.get('plan_fingerprint')} != "
                    f"{expected_plan})"
                )
            self.campaign.faults.restore_state(faults_payload["state"])
        elif self.campaign.faults is not None:
            raise ConfigError(
                "archive was collected without fault injection; resume "
                "must not introduce a fault plan"
            )
        restore_snapshot_into(self.campaign.metrics, payload["metrics"])
        self.store.note_resumed_checkpoint(float(payload["sim_time"]))

        self.start_day = completed
        return self
