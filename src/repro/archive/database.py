"""Connection management for the campaign archive.

One :class:`ArchiveDatabase` owns one SQLite file opened in WAL mode —
write-ahead logging keeps readers (query CLI, analysis) unblocked while the
collector's batched writer commits, which is the access pattern of a
long-running campaign with offline re-analysis.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from repro.archive.schema import MIGRATIONS, SCHEMA_VERSION
from repro.errors import StoreError

#: Conventional archive filename inside a campaign output directory.
ARCHIVE_FILENAME = "archive.db"


def is_archive_path(path: str | Path) -> bool:
    """Whether ``path`` looks like an archive database (vs a JSONL store).

    True for an existing file bearing the SQLite magic header, and for
    not-yet-existing paths with a ``.db`` / ``.sqlite`` / ``.sqlite3``
    suffix (so a fresh campaign can name its archive before it exists).
    """
    path = Path(path)
    if path.is_file():
        try:
            with path.open("rb") as handle:
                return handle.read(16) == b"SQLite format 3\x00"
        except OSError:
            return False
    if path.is_dir():
        return False
    return path.suffix.lower() in {".db", ".sqlite", ".sqlite3"}


class ArchiveDatabase:
    """A migrated, WAL-mode SQLite handle plus maintenance operations.

    ``read_only=True`` opens an existing, already-migrated file via SQLite's
    ``mode=ro`` URI — no directory creation, no migrations, no writes. This
    is how parallel analysis workers attach: many read-only connections can
    scan a WAL-mode archive concurrently without ever taking a write lock.
    """

    def __init__(self, path: str | Path, read_only: bool = False) -> None:
        self._path = Path(path)
        self._read_only = read_only
        try:
            if read_only:
                self._conn = sqlite3.connect(
                    f"file:{self._path}?mode=ro", uri=True
                )
            else:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                self._conn = sqlite3.connect(str(self._path))
        except (OSError, sqlite3.Error) as exc:
            raise StoreError(f"cannot open archive {path}: {exc}") from exc
        self._conn.row_factory = sqlite3.Row
        try:
            if read_only:
                version = self._conn.execute(
                    "PRAGMA user_version"
                ).fetchone()[0]
                if version != SCHEMA_VERSION:
                    raise StoreError(
                        f"read-only archive {self._path} is schema "
                        f"v{version}; this build needs v{SCHEMA_VERSION} "
                        "(open it writable once to migrate)"
                    )
                return
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._migrate()
        except sqlite3.Error as exc:
            # A truncated or non-SQLite file connects fine but explodes on
            # the first statement; surface that as our own error type.
            self._conn.close()
            raise StoreError(
                f"archive {self._path} is unreadable or corrupt: {exc}"
            ) from exc
        except StoreError:
            self._conn.close()
            raise

    @property
    def path(self) -> Path:
        """Location of the SQLite file."""
        return self._path

    @property
    def read_only(self) -> bool:
        """Whether this handle was opened with ``mode=ro``."""
        return self._read_only

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (row factory: :class:`sqlite3.Row`)."""
        return self._conn

    def _migrate(self) -> None:
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise StoreError(
                f"archive {self._path} is schema v{version}, newer than "
                f"this build's v{SCHEMA_VERSION}"
            )
        while version < SCHEMA_VERSION:
            self._conn.executescript(MIGRATIONS[version])
            version += 1
            self._conn.execute(f"PRAGMA user_version={version}")
        self._conn.commit()

    @property
    def schema_version(self) -> int:
        """The file's current ``PRAGMA user_version``."""
        return self._conn.execute("PRAGMA user_version").fetchone()[0]

    # --- maintenance -------------------------------------------------------

    def table_counts(self) -> dict[str, int]:
        """Row counts per entity table (the ``repro archive stats`` body)."""
        tables = (
            "bundles",
            "bundle_transactions",
            "transactions",
            "sandwiches",
            "defensive",
            "checkpoints",
        )
        return {
            table: self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
            for table in tables
        }

    def max_seq(self, table: str) -> int:
        """Highest ``seq`` in an AUTOINCREMENT table (0 when empty)."""
        if table not in {"bundles", "transactions", "sandwiches"}:
            raise StoreError(f"table {table!r} has no seq column")
        row = self._conn.execute(f"SELECT MAX(seq) FROM {table}").fetchone()
        return row[0] or 0

    def file_size_bytes(self) -> int:
        """On-disk size of the main database file."""
        try:
            return self._path.stat().st_size
        except OSError:
            return 0

    def vacuum(self) -> None:
        """Reclaim free pages (after truncation or bulk deletes)."""
        self._conn.commit()
        self._conn.execute("VACUUM")

    def checkpoint_wal(self) -> None:
        """Fold the write-ahead log back into the main file."""
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        """Commit and close the connection (idempotent)."""
        try:
            self._conn.commit()
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "ArchiveDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
