"""repro.archive: the indexed, resumable campaign archive.

A durable SQLite mirror of everything one measurement campaign collects and
derives, plus the query engine re-measurement studies run against it:

- :mod:`repro.archive.schema` — versioned DDL and wire↔row converters
- :mod:`repro.archive.database` — WAL-mode connection and migrations
- :mod:`repro.archive.store` — batched :class:`ArchiveBundleStore` writer
- :mod:`repro.archive.query` — typed filters, pagination, aggregations
- :mod:`repro.archive.checkpoint` — kill/resume with byte-identical output
- :mod:`repro.archive.incremental` — watermarked delta re-analysis
"""

from repro.archive.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointedCampaign,
    scenario_fingerprint,
)
from repro.archive.database import (
    ARCHIVE_FILENAME,
    ArchiveDatabase,
    is_archive_path,
)
from repro.archive.incremental import IncrementalAnalyzer, IncrementalResult
from repro.archive.query import (
    ArchiveChunk,
    ArchiveQuery,
    BundleFilter,
    BundleKey,
    SandwichFilter,
)
from repro.archive.schema import SCHEMA_VERSION
from repro.archive.store import ArchiveBundleStore, FlushPolicy

__all__ = [
    "ARCHIVE_FILENAME",
    "ArchiveBundleStore",
    "ArchiveChunk",
    "ArchiveDatabase",
    "ArchiveQuery",
    "BundleFilter",
    "BundleKey",
    "CHECKPOINT_VERSION",
    "CheckpointedCampaign",
    "FlushPolicy",
    "IncrementalAnalyzer",
    "IncrementalResult",
    "SandwichFilter",
    "SCHEMA_VERSION",
    "scenario_fingerprint",
    "is_archive_path",
]
