"""The archive's versioned SQLite schema and row converters.

The archive is the durable, indexed form of everything one measurement
campaign collects and derives: bundle listings, transaction details,
sandwich detections, defensive classifications, campaign checkpoints, and
incremental-analysis watermarks. The layout follows the shape of real
sandwich-measurement stores (an indexed relational schema per entity, with
secondary indexes on the columns analysts filter by) while staying on the
standard library's :mod:`sqlite3`.

Migrations are append-only: each entry in :data:`MIGRATIONS` upgrades the
database by exactly one version, and ``PRAGMA user_version`` records which
version a file is at, so an archive written by an older build opens cleanly
under a newer one.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.events import SandwichEvent
from repro.core.quantify import QuantifiedSandwich
from repro.core.trades import TradeLeg
from repro.errors import StoreError
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.utils.simtime import unix_to_date

#: Current schema version (``PRAGMA user_version`` of an up-to-date file).
SCHEMA_VERSION = 1

_V1_DDL = """
CREATE TABLE IF NOT EXISTS bundles (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    bundle_id TEXT NOT NULL UNIQUE,
    slot INTEGER NOT NULL,
    landed_at REAL NOT NULL,
    landed_date TEXT NOT NULL,
    tip_lamports INTEGER NOT NULL,
    num_transactions INTEGER NOT NULL,
    transaction_ids TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_bundles_slot ON bundles(slot);
CREATE INDEX IF NOT EXISTS idx_bundles_length ON bundles(num_transactions);
CREATE INDEX IF NOT EXISTS idx_bundles_tip ON bundles(tip_lamports);
CREATE INDEX IF NOT EXISTS idx_bundles_date ON bundles(landed_date);

CREATE TABLE IF NOT EXISTS bundle_transactions (
    transaction_id TEXT PRIMARY KEY,
    bundle_id TEXT NOT NULL,
    position INTEGER NOT NULL
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_bundle_txs_bundle
    ON bundle_transactions(bundle_id);

CREATE TABLE IF NOT EXISTS transactions (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    transaction_id TEXT NOT NULL UNIQUE,
    slot INTEGER NOT NULL,
    block_time REAL NOT NULL,
    signer TEXT NOT NULL,
    signers TEXT NOT NULL,
    fee_lamports INTEGER NOT NULL,
    token_deltas TEXT NOT NULL,
    lamport_deltas TEXT NOT NULL,
    events TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_transactions_slot ON transactions(slot);
CREATE INDEX IF NOT EXISTS idx_transactions_signer ON transactions(signer);

CREATE TABLE IF NOT EXISTS sandwiches (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    bundle_id TEXT NOT NULL UNIQUE,
    slot INTEGER NOT NULL,
    landed_at REAL NOT NULL,
    landed_date TEXT NOT NULL,
    tip_lamports INTEGER NOT NULL,
    attacker TEXT NOT NULL,
    victim TEXT NOT NULL,
    quote_mint TEXT NOT NULL,
    involves_sol INTEGER NOT NULL,
    victim_loss_quote REAL NOT NULL,
    attacker_gain_quote REAL NOT NULL,
    victim_loss_usd REAL,
    attacker_gain_usd REAL,
    legs TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_sandwiches_attacker ON sandwiches(attacker);
CREATE INDEX IF NOT EXISTS idx_sandwiches_victim ON sandwiches(victim);
CREATE INDEX IF NOT EXISTS idx_sandwiches_date ON sandwiches(landed_date);
CREATE INDEX IF NOT EXISTS idx_sandwiches_slot ON sandwiches(slot);

CREATE TABLE IF NOT EXISTS defensive (
    bundle_id TEXT PRIMARY KEY,
    landed_date TEXT NOT NULL,
    tip_lamports INTEGER NOT NULL,
    classification TEXT NOT NULL CHECK (
        classification IN ('defensive', 'priority')
    )
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_defensive_class
    ON defensive(classification, landed_date);

CREATE TABLE IF NOT EXISTS checkpoints (
    checkpoint_id INTEGER PRIMARY KEY AUTOINCREMENT,
    created_sim_time REAL NOT NULL,
    completed_days INTEGER NOT NULL,
    payload TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS analysis_state (
    consumer TEXT PRIMARY KEY,
    last_bundle_seq INTEGER NOT NULL DEFAULT 0,
    last_detail_seq INTEGER NOT NULL DEFAULT 0,
    updated_sim_time REAL NOT NULL DEFAULT 0,
    state TEXT NOT NULL DEFAULT '{}'
) WITHOUT ROWID;
"""

#: Ordered migration steps: ``MIGRATIONS[v]`` upgrades version v to v+1.
MIGRATIONS: tuple[str, ...] = (_V1_DDL,)


# --- bundles ------------------------------------------------------------------


def bundle_to_row(record: BundleRecord) -> tuple:
    """Flatten a bundle record into the ``bundles`` insert tuple."""
    return (
        record.bundle_id,
        record.slot,
        record.landed_at,
        unix_to_date(record.landed_at),
        record.tip_lamports,
        record.num_transactions,
        json.dumps(list(record.transaction_ids)),
    )


def bundle_from_row(row: Any) -> BundleRecord:
    """Rebuild a bundle record from a ``bundles`` row (by column name)."""
    try:
        return BundleRecord(
            bundle_id=row["bundle_id"],
            slot=row["slot"],
            landed_at=row["landed_at"],
            tip_lamports=row["tip_lamports"],
            transaction_ids=tuple(json.loads(row["transaction_ids"])),
        )
    except (KeyError, IndexError, ValueError, TypeError) as exc:
        raise StoreError(f"malformed bundles row: {exc}") from exc


# --- transaction details ------------------------------------------------------


def detail_to_row(record: TransactionRecord) -> tuple:
    """Flatten a transaction record into the ``transactions`` insert tuple."""
    return (
        record.transaction_id,
        record.slot,
        record.block_time,
        record.signer,
        json.dumps(list(record.signers)),
        record.fee_lamports,
        json.dumps(record.token_deltas, sort_keys=True),
        json.dumps(record.lamport_deltas, sort_keys=True),
        json.dumps(list(record.events)),
    )


def detail_from_row(row: Any) -> TransactionRecord:
    """Rebuild a transaction record from a ``transactions`` row."""
    try:
        return TransactionRecord(
            transaction_id=row["transaction_id"],
            slot=row["slot"],
            block_time=row["block_time"],
            signer=row["signer"],
            signers=tuple(json.loads(row["signers"])),
            fee_lamports=row["fee_lamports"],
            token_deltas=json.loads(row["token_deltas"]),
            lamport_deltas=json.loads(row["lamport_deltas"]),
            events=tuple(json.loads(row["events"])),
        )
    except (KeyError, IndexError, ValueError, TypeError) as exc:
        raise StoreError(f"malformed transactions row: {exc}") from exc


# --- sandwich detections ------------------------------------------------------


def _leg_to_json(leg: TradeLeg) -> dict:
    return {
        "owner": leg.owner,
        "pool": leg.pool,
        "mint_in": leg.mint_in,
        "mint_out": leg.mint_out,
        "amount_in": leg.amount_in,
        "amount_out": leg.amount_out,
    }


def _leg_from_json(payload: dict) -> TradeLeg:
    return TradeLeg(
        owner=str(payload["owner"]),
        pool=str(payload["pool"]),
        mint_in=str(payload["mint_in"]),
        mint_out=str(payload["mint_out"]),
        amount_in=int(payload["amount_in"]),
        amount_out=int(payload["amount_out"]),
    )


def sandwich_to_row(item: QuantifiedSandwich) -> tuple:
    """Flatten a quantified sandwich into the ``sandwiches`` insert tuple."""
    event = item.event
    legs = json.dumps(
        {
            "frontrun": _leg_to_json(event.frontrun),
            "victim_trade": _leg_to_json(event.victim_trade),
            "backrun": _leg_to_json(event.backrun),
        },
        sort_keys=True,
    )
    return (
        event.bundle_id,
        event.bundle.slot,
        event.landed_at,
        unix_to_date(event.landed_at),
        event.tip_lamports,
        event.attacker,
        event.victim,
        event.quote_mint,
        1 if event.involves_sol else 0,
        item.victim_loss_quote,
        item.attacker_gain_quote,
        item.victim_loss_usd,
        item.attacker_gain_usd,
        legs,
    )


def sandwich_from_row(row: Any) -> QuantifiedSandwich:
    """Rebuild a quantified sandwich (event + financials) from its row."""
    try:
        legs = json.loads(row["legs"])
        bundle = BundleRecord(
            bundle_id=row["bundle_id"],
            slot=row["slot"],
            landed_at=row["landed_at"],
            tip_lamports=row["tip_lamports"],
            transaction_ids=(),
        )
        event = SandwichEvent(
            bundle=bundle,
            attacker=row["attacker"],
            victim=row["victim"],
            frontrun=_leg_from_json(legs["frontrun"]),
            victim_trade=_leg_from_json(legs["victim_trade"]),
            backrun=_leg_from_json(legs["backrun"]),
        )
        return QuantifiedSandwich(
            event=event,
            victim_loss_quote=row["victim_loss_quote"],
            attacker_gain_quote=row["attacker_gain_quote"],
            victim_loss_usd=row["victim_loss_usd"],
            attacker_gain_usd=row["attacker_gain_usd"],
        )
    except (KeyError, IndexError, ValueError, TypeError) as exc:
        raise StoreError(f"malformed sandwiches row: {exc}") from exc


def sandwich_with_bundle(
    item: QuantifiedSandwich, bundle: BundleRecord
) -> QuantifiedSandwich:
    """Reattach the full bundle record (with member tx ids) to a rebuilt row.

    ``sandwich_from_row`` alone carries an id-only bundle; joining against
    the ``bundles`` table restores the exact wire-level record, making the
    round trip loss-free.
    """
    event = item.event
    return QuantifiedSandwich(
        event=SandwichEvent(
            bundle=bundle,
            attacker=event.attacker,
            victim=event.victim,
            frontrun=event.frontrun,
            victim_trade=event.victim_trade,
            backrun=event.backrun,
        ),
        victim_loss_quote=item.victim_loss_quote,
        attacker_gain_quote=item.attacker_gain_quote,
        victim_loss_usd=item.victim_loss_usd,
        attacker_gain_usd=item.attacker_gain_usd,
    )
