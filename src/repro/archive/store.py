"""The archive-backed bundle store: a batched, indexed drop-in writer.

:class:`ArchiveBundleStore` implements the full :class:`BundleStore`
interface, so the poller and detail fetcher write through it unchanged,
while every insert is also queued for the SQLite archive. A configurable
:class:`FlushPolicy` bounds how much collected data a crash can lose:
pending rows are committed in one transaction whenever the buffer reaches
``max_pending`` records (and always on checkpoint save and close).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.archive.database import ArchiveDatabase
from repro.archive.schema import (
    bundle_from_row,
    bundle_to_row,
    detail_from_row,
    detail_to_row,
    sandwich_to_row,
)
from repro.collector.store import BundleStore
from repro.core.defensive import DefensiveReport
from repro.core.quantify import QuantifiedSandwich
from repro.errors import ConfigError
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.obs.registry import MetricsRegistry
from repro.utils.simtime import unix_to_date

_INSERT_BUNDLE = (
    "INSERT OR IGNORE INTO bundles "
    "(bundle_id, slot, landed_at, landed_date, tip_lamports, "
    "num_transactions, transaction_ids) VALUES (?,?,?,?,?,?,?)"
)
_INSERT_MEMBER = (
    "INSERT OR IGNORE INTO bundle_transactions "
    "(transaction_id, bundle_id, position) VALUES (?,?,?)"
)
_INSERT_DETAIL = (
    "INSERT OR IGNORE INTO transactions "
    "(transaction_id, slot, block_time, signer, signers, fee_lamports, "
    "token_deltas, lamport_deltas, events) VALUES (?,?,?,?,?,?,?,?,?)"
)
_INSERT_SANDWICH = (
    "INSERT OR REPLACE INTO sandwiches "
    "(bundle_id, slot, landed_at, landed_date, tip_lamports, attacker, "
    "victim, quote_mint, involves_sol, victim_loss_quote, "
    "attacker_gain_quote, victim_loss_usd, attacker_gain_usd, legs) "
    "VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?)"
)
_INSERT_DEFENSIVE = (
    "INSERT OR REPLACE INTO defensive "
    "(bundle_id, landed_date, tip_lamports, classification) VALUES (?,?,?,?)"
)


@dataclass(frozen=True)
class FlushPolicy:
    """When the batched writer commits its pending rows.

    ``max_pending`` is the crash-loss bound: at most that many records
    (bundles plus details combined) can sit uncommitted. The default favors
    throughput — a campaign that needs tighter durability (or a test that
    needs every insert visible immediately) lowers it, down to 1 for
    write-through behavior.
    """

    max_pending: int = 256

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical settings."""
        if self.max_pending < 1:
            raise ConfigError("flush policy max_pending must be >= 1")


class ArchiveBundleStore(BundleStore):
    """A :class:`BundleStore` that mirrors every insert into the archive.

    The in-memory indexes stay authoritative for reads (analysis code is
    unchanged); the SQLite file is the durable, queryable mirror. Writes
    are batched per :class:`FlushPolicy` and committed in insertion order,
    so the archive's ``seq`` order always equals collection order — the
    property checkpoint/resume relies on to rebuild identical stores.
    """

    def __init__(
        self,
        database: ArchiveDatabase | str | Path,
        flush_policy: FlushPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(metrics=metrics)
        self.database = (
            database
            if isinstance(database, ArchiveDatabase)
            else ArchiveDatabase(database)
        )
        self.flush_policy = flush_policy or FlushPolicy()
        self.flush_policy.validate()
        self._pending_bundles: list[BundleRecord] = []
        self._pending_details: list[TransactionRecord] = []
        self._rows_metric = self.metrics.counter(
            "archive_rows_written_total",
            "Rows committed to the archive, by table.",
        )
        self._flushes_metric = self.metrics.counter(
            "archive_flushes_total",
            "Batched-writer commits, by trigger.",
        )
        self._batch_metric = self.metrics.histogram(
            "archive_flush_batch_size",
            "Records committed per flush.",
            buckets=(1, 8, 64, 256, 1_024, 8_192),
        )
        self._checkpoint_metric = self.metrics.counter(
            "archive_checkpoints_total", "Campaign checkpoints saved."
        )
        self._checkpoint_time_gauge = self.metrics.gauge(
            "archive_last_checkpoint_sim_time",
            "Sim time of the most recent campaign checkpoint.",
        )

    # --- write path --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Records buffered but not yet committed."""
        return len(self._pending_bundles) + len(self._pending_details)

    def add_bundles(self, records: list[BundleRecord]) -> int:
        """Insert, queue the genuinely new records, and maybe flush."""
        new_records = [
            record
            for record in records
            if self.get_bundle(record.bundle_id) is None
        ]
        added = super().add_bundles(records)
        self._pending_bundles.extend(new_records)
        self._maybe_flush()
        return added

    def add_details(self, records: list[TransactionRecord]) -> int:
        """Insert, queue the genuinely new details, and maybe flush."""
        new_records = [
            record
            for record in records
            if self.get_detail(record.transaction_id) is None
        ]
        added = super().add_details(records)
        self._pending_details.extend(new_records)
        self._maybe_flush()
        return added

    def _maybe_flush(self) -> None:
        if self.pending >= self.flush_policy.max_pending:
            self.flush(trigger="policy")

    def flush(self, trigger: str = "explicit") -> int:
        """Commit all pending rows in one transaction; returns rows written."""
        count = self.pending
        if count == 0:
            return 0
        conn = self.database.connection
        with self.metrics.span("archive.flush"):
            conn.executemany(
                _INSERT_BUNDLE,
                [bundle_to_row(r) for r in self._pending_bundles],
            )
            conn.executemany(
                _INSERT_MEMBER,
                [
                    (tx_id, record.bundle_id, position)
                    for record in self._pending_bundles
                    for position, tx_id in enumerate(record.transaction_ids)
                ],
            )
            conn.executemany(
                _INSERT_DETAIL,
                [detail_to_row(r) for r in self._pending_details],
            )
            conn.commit()
        self._rows_metric.inc(len(self._pending_bundles), table="bundles")
        self._rows_metric.inc(
            len(self._pending_details), table="transactions"
        )
        self._flushes_metric.inc(trigger=trigger)
        self._batch_metric.observe(count)
        self._pending_bundles.clear()
        self._pending_details.clear()
        return count

    def close(self) -> None:
        """Flush pending rows and close the database."""
        self.flush(trigger="close")
        self.database.close()

    def __enter__(self) -> "ArchiveBundleStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --- analysis outputs --------------------------------------------------

    def record_sandwiches(self, quantified: list[QuantifiedSandwich]) -> int:
        """Persist detection rows (idempotent per bundle id)."""
        conn = self.database.connection
        conn.executemany(
            _INSERT_SANDWICH, [sandwich_to_row(q) for q in quantified]
        )
        conn.commit()
        self._rows_metric.inc(len(quantified), table="sandwiches")
        return len(quantified)

    def record_defensive(self, report: DefensiveReport) -> int:
        """Persist defensive/priority classification rows."""
        rows = [
            (
                record.bundle_id,
                unix_to_date(record.landed_at),
                record.tip_lamports,
                classification,
            )
            for classification, records in (
                ("defensive", report.defensive),
                ("priority", report.priority),
            )
            for record in records
        ]
        conn = self.database.connection
        conn.executemany(_INSERT_DEFENSIVE, rows)
        conn.commit()
        self._rows_metric.inc(len(rows), table="defensive")
        return len(rows)

    def record_analysis(self, report) -> None:
        """Persist one analysis pass's detections and classifications.

        The analysis pipeline calls this by duck type on any store that
        offers it, keeping :mod:`repro.core` free of archive imports.
        """
        self.record_sandwiches(report.quantified)
        self.record_defensive(report.defensive)

    # --- checkpoints -------------------------------------------------------

    def save_checkpoint(
        self, payload: dict, completed_days: int, sim_time: float
    ) -> int:
        """Flush, then persist a campaign checkpoint; returns its id.

        The flush-first ordering makes every checkpoint self-consistent: a
        checkpoint row never references collected data that is still
        sitting in the write buffer.
        """
        self.flush(trigger="checkpoint")
        conn = self.database.connection
        cursor = conn.execute(
            "INSERT INTO checkpoints "
            "(created_sim_time, completed_days, payload) VALUES (?,?,?)",
            (sim_time, completed_days, json.dumps(payload, sort_keys=True)),
        )
        conn.commit()
        self._checkpoint_metric.inc()
        self._checkpoint_time_gauge.set(sim_time)
        return int(cursor.lastrowid)

    def note_resumed_checkpoint(self, sim_time: float) -> None:
        """Re-apply the bookkeeping a restored metrics snapshot misses.

        A checkpoint's embedded snapshot is captured *before* the
        checkpoint row itself is counted (the snapshot cannot contain its
        own increment), so a resumed campaign replays that one increment
        here — keeping ``archive_checkpoints_total`` and the
        last-checkpoint gauge identical to an uninterrupted run's.
        """
        self._checkpoint_metric.inc()
        self._checkpoint_time_gauge.set(sim_time)

    def latest_checkpoint(self) -> dict | None:
        """The most recent checkpoint payload, or None."""
        row = self.database.connection.execute(
            "SELECT payload FROM checkpoints "
            "ORDER BY checkpoint_id DESC LIMIT 1"
        ).fetchone()
        return json.loads(row["payload"]) if row else None

    def truncate_after(self, bundle_seq: int, detail_seq: int) -> int:
        """Delete rows written after a checkpoint's high-water marks.

        Used on resume: a killed campaign keeps writing between its last
        checkpoint and the crash, and those post-checkpoint rows must be
        rolled back before replaying so the resumed run re-collects them
        on the same schedule as an uninterrupted one. Returns rows deleted.
        """
        conn = self.database.connection
        stale_bundles = conn.execute(
            "SELECT bundle_id FROM bundles WHERE seq > ?", (bundle_seq,)
        ).fetchall()
        deleted = 0
        for row in stale_bundles:
            cursor = conn.execute(
                "DELETE FROM bundle_transactions WHERE bundle_id = ?",
                (row["bundle_id"],),
            )
            deleted += cursor.rowcount
        for table, seq in (
            ("bundles", bundle_seq),
            ("transactions", detail_seq),
        ):
            cursor = conn.execute(
                f"DELETE FROM {table} WHERE seq > ?", (seq,)
            )
            deleted += cursor.rowcount
        conn.commit()
        return deleted

    # --- loading -----------------------------------------------------------

    def load_memory_state(self) -> None:
        """Populate the in-memory indexes from the archive, in seq order.

        ``seq`` order equals original insertion order, so the rebuilt
        in-memory store iterates identically to the store that wrote the
        archive — a prerequisite for byte-identical resumed analysis.
        """
        conn = self.database.connection
        bundles = [
            bundle_from_row(row)
            for row in conn.execute("SELECT * FROM bundles ORDER BY seq")
        ]
        details = [
            detail_from_row(row)
            for row in conn.execute("SELECT * FROM transactions ORDER BY seq")
        ]
        # Parent-class inserts only: nothing is re-queued for the archive.
        BundleStore.add_bundles(self, bundles)
        BundleStore.add_details(self, details)

    @classmethod
    def resume(
        cls,
        database: ArchiveDatabase | str | Path,
        flush_policy: FlushPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "ArchiveBundleStore":
        """Reopen an archive, loading everything written so far."""
        store = cls(database, flush_policy=flush_policy, metrics=metrics)
        store.load_memory_state()
        return store
