"""The archive's typed query API.

:class:`ArchiveQuery` answers the questions re-measurement studies ask of
an archived campaign — "which bundles landed in this slot range", "what did
this attacker extract per day", "how are tips distributed" — directly from
the indexed SQLite file, without loading the whole campaign into memory.

Filters are plain dataclasses compiled to parameterized SQL (never string
interpolation of values), ordering is restricted to indexed columns, and
every query records its wall-clock latency in the
``archive_query_seconds`` histogram.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.archive.database import ArchiveDatabase
from repro.archive.schema import (
    bundle_from_row,
    detail_from_row,
    sandwich_from_row,
)
from repro.core.quantify import QuantifiedSandwich
from repro.errors import ConfigError
from repro.explorer.models import BundleRecord, TransactionRecord
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

#: Columns ``order_by`` may name, per entity.
BUNDLE_ORDER_COLUMNS = frozenset(
    {"seq", "slot", "landed_at", "tip_lamports", "num_transactions"}
)
SANDWICH_ORDER_COLUMNS = frozenset(
    {"seq", "slot", "landed_at", "tip_lamports", "victim_loss_usd"}
)


@dataclass(frozen=True)
class BundleFilter:
    """Conjunctive filters over the ``bundles`` table (None = no bound)."""

    slot_min: int | None = None
    slot_max: int | None = None
    length: int | None = None
    tip_min: int | None = None
    tip_max: int | None = None
    date_from: str | None = None
    date_to: str | None = None

    def compile(self) -> tuple[str, list]:
        """The WHERE clause (without the keyword) and its parameters."""
        clauses: list[str] = []
        params: list = []
        for column, op, value in (
            ("slot", ">=", self.slot_min),
            ("slot", "<=", self.slot_max),
            ("num_transactions", "=", self.length),
            ("tip_lamports", ">=", self.tip_min),
            ("tip_lamports", "<=", self.tip_max),
            ("landed_date", ">=", self.date_from),
            ("landed_date", "<=", self.date_to),
        ):
            if value is not None:
                clauses.append(f"{column} {op} ?")
                params.append(value)
        return (" AND ".join(clauses) or "1=1", params)


@dataclass(frozen=True)
class SandwichFilter:
    """Conjunctive filters over the ``sandwiches`` table."""

    attacker: str | None = None
    victim: str | None = None
    slot_min: int | None = None
    slot_max: int | None = None
    date_from: str | None = None
    date_to: str | None = None
    priced_only: bool = False

    def compile(self) -> tuple[str, list]:
        """The WHERE clause (without the keyword) and its parameters."""
        clauses: list[str] = []
        params: list = []
        for column, op, value in (
            ("attacker", "=", self.attacker),
            ("victim", "=", self.victim),
            ("slot", ">=", self.slot_min),
            ("slot", "<=", self.slot_max),
            ("landed_date", ">=", self.date_from),
            ("landed_date", "<=", self.date_to),
        ):
            if value is not None:
                clauses.append(f"{column} {op} ?")
                params.append(value)
        if self.priced_only:
            clauses.append("victim_loss_usd IS NOT NULL")
        return (" AND ".join(clauses) or "1=1", params)


@dataclass(frozen=True)
class BundleKey:
    """A projected bundle row: index columns only, no payload parse.

    Slot-range scans that need ids, slots, or lengths — chunk planning,
    coverage checks, count-by-length summaries — previously paid a JSON
    ``transaction_ids`` deserialization per row for data they never read.
    This projection selects only indexed scalar columns.
    """

    seq: int
    bundle_id: str
    slot: int
    landed_at: float
    tip_lamports: int
    num_transactions: int


@dataclass(frozen=True)
class ArchiveWatermark:
    """The archive's read-side version: how much data any reader can see.

    A watermark is the tuple of high-water ``seq`` values of the appended
    tables plus the defensive row count (that table has no sequence). Two
    reads of an archive return identical results iff their watermarks are
    equal, which is what the serving tier's response cache keys on: the
    token changes exactly when the collector lands new rows or an
    incremental analysis pass appends detections.
    """

    bundle_seq: int
    transaction_seq: int
    sandwich_seq: int
    defensive_rows: int

    @property
    def token(self) -> str:
        """Compact opaque form, embedded in ETags and cache keys."""
        return (
            f"b{self.bundle_seq}.t{self.transaction_seq}."
            f"s{self.sandwich_seq}.d{self.defensive_rows}"
        )


@dataclass(frozen=True)
class ArchiveChunk:
    """One bounded, contiguous slice of the ``bundles`` table.

    Chunks partition the archive by the ``seq`` primary key (collection
    order), so every bundle falls in exactly one chunk and concatenating
    chunks in ``index`` order reproduces a full sequential scan. The slot
    bounds are carried for display and slot-range bookkeeping; ``seq``
    bounds are what workers query by (indexed, skew-free).
    """

    index: int
    seq_lo: int
    seq_hi: int
    count: int
    slot_lo: int
    slot_hi: int


#: Ids per ``IN (...)`` batch — comfortably under every SQLite build's
#: bound-variable limit (999 on the oldest supported builds).
_IN_BATCH = 900


def _in_batches(
    values: Sequence[str], size: int = _IN_BATCH
) -> Iterator[Sequence[str]]:
    """Slice a value list into ``IN``-clause-sized batches."""
    values = list(values)
    for start in range(0, len(values), size):
        yield values[start : start + size]


def _order_clause(
    order_by: str, descending: bool, allowed: frozenset[str]
) -> str:
    """ORDER BY with a ``seq`` tiebreaker, so pagination is total-ordered.

    SQL leaves the order of rows with equal sort keys unspecified, which
    would let a row slip between two pages of a paginated scan. Every
    non-``seq`` ordering therefore breaks ties on ``seq`` in the same
    direction — within a tie, ascending reads come back in collection
    order, exactly the order the serial pipeline consumes bundles in.
    """
    if order_by not in allowed:
        raise ConfigError(
            f"cannot order by {order_by!r}; "
            f"indexed columns are {sorted(allowed)}"
        )
    direction = "DESC" if descending else "ASC"
    clause = f" ORDER BY {order_by} {direction}"
    if order_by != "seq":
        clause += f", seq {direction}"
    return clause


def _page_clause(limit: int | None, offset: int) -> tuple[str, list]:
    if limit is not None and limit < 0:
        raise ConfigError("limit must be >= 0")
    if offset < 0:
        raise ConfigError("offset must be >= 0")
    if limit is None and offset == 0:
        return "", []
    return " LIMIT ? OFFSET ?", [-1 if limit is None else limit, offset]


class ArchiveQuery:
    """Read-side API over one archive database."""

    def __init__(
        self,
        database: ArchiveDatabase,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._db = database
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._latency_metric = self.metrics.histogram(
            "archive_query_seconds",
            "Wall-clock latency of archive queries, by query name.",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
        )

    def _timed(self, name: str, sql: str, params: list) -> list:
        started = time.perf_counter()
        rows = self._db.connection.execute(sql, params).fetchall()
        self._latency_metric.observe(
            time.perf_counter() - started, query=name
        )
        return rows

    # --- bundles -----------------------------------------------------------

    def bundles(
        self,
        where: BundleFilter | None = None,
        order_by: str = "seq",
        descending: bool = False,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[BundleRecord]:
        """Filtered, ordered, paginated bundle records."""
        where = where or BundleFilter()
        clause, params = where.compile()
        page, page_params = _page_clause(limit, offset)
        sql = (
            f"SELECT * FROM bundles WHERE {clause}"
            + _order_clause(order_by, descending, BUNDLE_ORDER_COLUMNS)
            + page
        )
        return [
            bundle_from_row(row)
            for row in self._timed("bundles", sql, params + page_params)
        ]

    def bundle_index(
        self,
        where: BundleFilter | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[BundleKey]:
        """Projected bundle rows in ``seq`` order, skipping payload parse.

        Use this instead of :meth:`bundles` when only ids/slots/lengths are
        needed: no ``transaction_ids`` JSON is deserialized, which is the
        dominant cost of wide slot-range scans.
        """
        where = where or BundleFilter()
        clause, params = where.compile()
        page, page_params = _page_clause(limit, offset)
        rows = self._timed(
            "bundle_index",
            "SELECT seq, bundle_id, slot, landed_at, tip_lamports, "
            f"num_transactions FROM bundles WHERE {clause} ORDER BY seq"
            + page,
            params + page_params,
        )
        return [
            BundleKey(
                seq=row["seq"],
                bundle_id=row["bundle_id"],
                slot=row["slot"],
                landed_at=row["landed_at"],
                tip_lamports=row["tip_lamports"],
                num_transactions=row["num_transactions"],
            )
            for row in rows
        ]

    def iter_chunks(
        self,
        chunk_size: int = 2_048,
        where: BundleFilter | None = None,
        seq_min: int | None = None,
    ) -> Iterator[ArchiveChunk]:
        """Stream bounded chunk descriptors over the bundle table.

        A keyset cursor walks the ``seq`` primary key in ``chunk_size``
        steps (optionally restricted by a filter and/or to ``seq >
        seq_min``, the incremental analyzer's watermark), yielding one
        :class:`ArchiveChunk` per slice. Only projected index columns are
        read — planning a 50k-bundle archive touches no JSON payloads and
        never materializes more than one chunk's keys at a time.
        """
        if chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        where = where or BundleFilter()
        clause, params = where.compile()
        cursor = seq_min if seq_min is not None else 0
        index = 0
        while True:
            rows = self._timed(
                "iter_chunks",
                "SELECT seq, slot FROM bundles "
                f"WHERE seq > ? AND {clause} ORDER BY seq LIMIT ?",
                [cursor] + params + [chunk_size],
            )
            if not rows:
                return
            seqs = [row["seq"] for row in rows]
            slots = [row["slot"] for row in rows]
            yield ArchiveChunk(
                index=index,
                seq_lo=seqs[0],
                seq_hi=seqs[-1],
                count=len(rows),
                slot_lo=min(slots),
                slot_hi=max(slots),
            )
            cursor = seqs[-1]
            index += 1

    def chunk_bounds(
        self,
        chunk_size: int = 2_048,
        where: BundleFilter | None = None,
        seq_min: int | None = None,
    ) -> list[ArchiveChunk]:
        """The whole chunk plan in one window-function pass.

        Produces exactly the chunks :meth:`iter_chunks` yields (same
        indexes, ``seq`` bounds, counts, and slot bounds) but with a
        single C-side scan instead of one round-trip per chunk — the
        keyset walk re-executes its query (and re-plans its variable
        SQL) once per ``chunk_size`` rows, which showed up as a
        measurable share of short analysis runs. The SQL text here is
        constant, so SQLite's per-connection statement cache serves
        every call after the first.
        """
        if chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        where = where or BundleFilter()
        clause, params = where.compile()
        cursor = seq_min if seq_min is not None else 0
        rows = self._timed(
            "chunk_bounds",
            "SELECT grp, COUNT(*) AS n, MIN(seq) AS seq_lo, "
            "MAX(seq) AS seq_hi, MIN(slot) AS slot_lo, MAX(slot) AS slot_hi "
            "FROM (SELECT seq, slot, "
            "(ROW_NUMBER() OVER (ORDER BY seq) - 1) / ? AS grp "
            f"FROM bundles WHERE seq > ? AND {clause}) "
            "GROUP BY grp ORDER BY grp",
            [chunk_size, cursor] + params,
        )
        return [
            ArchiveChunk(
                index=index,
                seq_lo=row["seq_lo"],
                seq_hi=row["seq_hi"],
                count=row["n"],
                slot_lo=row["slot_lo"],
                slot_hi=row["slot_hi"],
            )
            for index, row in enumerate(rows)
        ]

    def count_bundles(self, where: BundleFilter | None = None) -> int:
        """Number of bundles matching the filter."""
        where = where or BundleFilter()
        clause, params = where.compile()
        rows = self._timed(
            "count_bundles",
            f"SELECT COUNT(*) AS n FROM bundles WHERE {clause}",
            params,
        )
        return rows[0]["n"]

    def bundle(self, bundle_id: str) -> BundleRecord | None:
        """One bundle by id."""
        rows = self._timed(
            "bundle",
            "SELECT * FROM bundles WHERE bundle_id = ?",
            [bundle_id],
        )
        return bundle_from_row(rows[0]) if rows else None

    def bundle_of_transaction(self, tx_id: str) -> BundleRecord | None:
        """The bundle containing a member transaction id, if archived."""
        rows = self._timed(
            "bundle_of_transaction",
            "SELECT b.* FROM bundles b "
            "JOIN bundle_transactions m ON m.bundle_id = b.bundle_id "
            "WHERE m.transaction_id = ?",
            [tx_id],
        )
        return bundle_from_row(rows[0]) if rows else None

    # --- transaction details ----------------------------------------------

    def details(
        self,
        signer: str | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[TransactionRecord]:
        """Transaction details, optionally restricted to one signer."""
        clause = "signer = ?" if signer is not None else "1=1"
        params: list = [signer] if signer is not None else []
        page, page_params = _page_clause(limit, offset)
        sql = f"SELECT * FROM transactions WHERE {clause} ORDER BY seq" + page
        return [
            detail_from_row(row)
            for row in self._timed("details", sql, params + page_params)
        ]

    def count_transactions(self) -> int:
        """Number of archived transaction details."""
        rows = self._timed(
            "count_transactions",
            "SELECT COUNT(*) AS n FROM transactions",
            [],
        )
        return rows[0]["n"]

    def details_for_bundle(self, bundle: BundleRecord) -> list[TransactionRecord]:
        """Details of a bundle's member transactions, in bundle order."""
        found = {
            row["transaction_id"]: detail_from_row(row)
            for row in self._timed(
                "details_for_bundle",
                "SELECT * FROM transactions WHERE transaction_id IN "
                f"({','.join('?' * len(bundle.transaction_ids))})",
                list(bundle.transaction_ids),
            )
        }
        return [
            found[tx_id] for tx_id in bundle.transaction_ids if tx_id in found
        ]

    # --- columnar projections ----------------------------------------------
    #
    # The columnar engine (:mod:`repro.columnar`) loads whole chunks through
    # these projections instead of per-bundle object queries: scalar bundle
    # columns by ``seq`` range, batched detail lookups, and ``json_each``
    # decompositions that push event/delta JSON parsing into SQLite's C
    # parser. All of them return raw row tuples in a documented column
    # order — the block builders in :mod:`repro.columnar.blocks` transpose
    # them into struct-of-arrays form without intermediate objects.

    def bundle_columns(self, seq_lo: int, seq_hi: int) -> list:
        """Scalar bundle columns for one contiguous ``seq`` range.

        Row shape: ``(seq, bundle_id, slot, landed_at, tip_lamports,
        num_transactions, transaction_ids_json)`` in ``seq`` order — the
        same working set :func:`repro.parallel.worker.analyze_chunk` loads
        for a chunk task, minus the per-row JSON parse.
        """
        return self._timed(
            "bundle_columns",
            "SELECT seq, bundle_id, slot, landed_at, tip_lamports, "
            "num_transactions, transaction_ids FROM bundles "
            "WHERE seq >= ? AND seq <= ? ORDER BY seq",
            [seq_lo, seq_hi],
        )

    def bundle_columns_for_ids(self, bundle_ids: Sequence[str]) -> list:
        """Scalar bundle columns for an explicit id worklist.

        Same row shape as :meth:`bundle_columns`. Rows come back in
        arbitrary order and missing ids produce no row — callers reorder
        against the worklist (the incremental analyzer's stored pending
        order) themselves.
        """
        rows: list = []
        for batch in _in_batches(bundle_ids):
            rows.extend(
                self._timed(
                    "bundle_columns_for_ids",
                    "SELECT seq, bundle_id, slot, landed_at, tip_lamports, "
                    "num_transactions, transaction_ids FROM bundles "
                    f"WHERE bundle_id IN ({','.join('?' * len(batch))})",
                    list(batch),
                )
            )
        return rows

    def detail_signers(self, tx_ids: Sequence[str]) -> list:
        """``(transaction_id, signer)`` for every archived id in ``tx_ids``.

        Ids with no detail row produce no output row, which is how the
        columnar loader discovers incomplete (pending) candidates without
        materializing any :class:`TransactionRecord`.
        """
        rows: list = []
        for batch in _in_batches(tx_ids):
            rows.extend(
                self._timed(
                    "detail_signers",
                    "SELECT transaction_id, signer FROM transactions "
                    f"WHERE transaction_id IN ({','.join('?' * len(batch))})",
                    list(batch),
                )
            )
        return rows

    def event_columns(self, tx_ids: Sequence[str]) -> list:
        """Flattened event rows for the given transactions, via ``json_each``.

        Row shape: ``(transaction_id, ordinal, type, owner, pool, mint_in,
        mint_out, amount_in, amount_out, dest)`` — one row per event, typed
        by SQLite (JSON ints surface as INTEGER while they fit in 64 bits;
        see :func:`repro.columnar.blocks.load_tx_features` for the
        precision fallback beyond that).
        """
        rows: list = []
        for batch in _in_batches(tx_ids):
            rows.extend(
                self._timed(
                    "event_columns",
                    "SELECT t.transaction_id, je.key, "
                    "je.value ->> '$.type', je.value ->> '$.owner', "
                    "je.value ->> '$.pool', je.value ->> '$.mint_in', "
                    "je.value ->> '$.mint_out', je.value ->> '$.amount_in', "
                    "je.value ->> '$.amount_out', je.value ->> '$.dest' "
                    "FROM transactions t, json_each(t.events) je "
                    f"WHERE t.transaction_id IN ({','.join('?' * len(batch))})",
                    list(batch),
                )
            )
        return rows

    def token_delta_columns(self, tx_ids: Sequence[str]) -> list:
        """Long-form token deltas: ``(transaction_id, owner, mint, delta)``.

        Two nested ``json_each`` calls unroll the ``owner -> mint -> delta``
        mapping into one row per (owner, mint) pair, keeping the JSON walk
        in C. Row order within a transaction follows JSON storage order,
        which is the object path's dict iteration order.
        """
        rows: list = []
        for batch in _in_batches(tx_ids):
            rows.extend(
                self._timed(
                    "token_delta_columns",
                    "SELECT t.transaction_id, o.key, m.key, m.value "
                    "FROM transactions t, json_each(t.token_deltas) o, "
                    "json_each(o.value) m "
                    f"WHERE t.transaction_id IN ({','.join('?' * len(batch))})",
                    list(batch),
                )
            )
        return rows

    # The ``candidate_*`` projections below coalesce a chunk's detail
    # lookups into one round-trip each: instead of parsing every bundle's
    # ``transaction_ids`` JSON in Python and shipping thousands of ids
    # back through ``IN (...)`` batches, the membership join runs inside
    # SQLite. Their SQL text is constant (no per-batch placeholder lists),
    # so the connection's prepared-statement cache compiles each of them
    # exactly once per worker for the whole run.

    def candidate_members(
        self, seq_lo: int, seq_hi: int, length: int = 3
    ) -> list:
        """Member rows of candidate bundles in one contiguous ``seq`` range.

        Row shape: ``(seq, position, transaction_id, signer)`` ordered by
        ``(seq, position)`` — bundle order, then member order. ``signer``
        is NULL for members whose detail was never fetched, which is how
        the columnar loader discovers pending candidates without a second
        query.
        """
        return self._timed(
            "candidate_members",
            "SELECT b.seq, m.position, m.transaction_id, t.signer "
            "FROM bundles b "
            "JOIN bundle_transactions m ON m.bundle_id = b.bundle_id "
            "LEFT JOIN transactions t "
            "ON t.transaction_id = m.transaction_id "
            "WHERE b.seq >= ? AND b.seq <= ? AND b.num_transactions = ? "
            "ORDER BY b.seq, m.position",
            [seq_lo, seq_hi, length],
        )

    def candidate_event_columns(
        self, seq_lo: int, seq_hi: int, length: int = 3
    ) -> list:
        """Flattened event rows for every member of candidate bundles.

        Same row shape as :meth:`event_columns`, selected by a membership
        semijoin instead of an id list (the ``IN`` subquery deduplicates
        transactions shared between bundles, exactly as the Python-side
        ``dict.fromkeys`` pass did).
        """
        return self._timed(
            "candidate_event_columns",
            "SELECT t.transaction_id, je.key, "
            "je.value ->> '$.type', je.value ->> '$.owner', "
            "je.value ->> '$.pool', je.value ->> '$.mint_in', "
            "je.value ->> '$.mint_out', je.value ->> '$.amount_in', "
            "je.value ->> '$.amount_out', je.value ->> '$.dest' "
            "FROM transactions t, json_each(t.events) je "
            "WHERE t.transaction_id IN "
            "(SELECT m.transaction_id FROM bundles b "
            " JOIN bundle_transactions m ON m.bundle_id = b.bundle_id "
            " WHERE b.seq >= ? AND b.seq <= ? AND b.num_transactions = ?)",
            [seq_lo, seq_hi, length],
        )

    def candidate_token_delta_columns(
        self,
        seq_lo: int,
        seq_hi: int,
        length: int = 3,
        positions: tuple[int, int] = (0, 2),
    ) -> list:
        """Long-form token deltas for the edge members of candidates.

        Same row shape as :meth:`token_delta_columns`, restricted to the
        bundle positions quantification reads (the attacker-side front and
        back transactions by default).
        """
        return self._timed(
            "candidate_token_delta_columns",
            "SELECT t.transaction_id, o.key, m.key, m.value "
            "FROM transactions t, json_each(t.token_deltas) o, "
            "json_each(o.value) m "
            "WHERE t.transaction_id IN "
            "(SELECT bm.transaction_id FROM bundles b "
            " JOIN bundle_transactions bm ON bm.bundle_id = b.bundle_id "
            " WHERE b.seq >= ? AND b.seq <= ? AND b.num_transactions = ? "
            " AND bm.position IN (?, ?))",
            [seq_lo, seq_hi, length, positions[0], positions[1]],
        )

    def raw_payloads(self, tx_ids: Sequence[str]) -> list:
        """``(transaction_id, events_json, token_deltas_json)`` raw text.

        The precision fallback for :meth:`event_columns` /
        :meth:`token_delta_columns`: SQLite's ``json_each`` degrades JSON
        integers beyond 64 bits to REAL, so transactions whose extracted
        numbers look degraded are re-read as text and parsed with Python's
        arbitrary-precision ``json`` module.
        """
        rows: list = []
        for batch in _in_batches(tx_ids):
            rows.extend(
                self._timed(
                    "raw_payloads",
                    "SELECT transaction_id, events, token_deltas "
                    "FROM transactions "
                    f"WHERE transaction_id IN ({','.join('?' * len(batch))})",
                    list(batch),
                )
            )
        return rows

    # --- sandwiches --------------------------------------------------------

    def sandwiches(
        self,
        where: SandwichFilter | None = None,
        order_by: str = "seq",
        descending: bool = False,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[QuantifiedSandwich]:
        """Filtered, ordered, paginated detection rows (id-only bundles)."""
        where = where or SandwichFilter()
        clause, params = where.compile()
        page, page_params = _page_clause(limit, offset)
        sql = (
            f"SELECT * FROM sandwiches WHERE {clause}"
            + _order_clause(order_by, descending, SANDWICH_ORDER_COLUMNS)
            + page
        )
        return [
            sandwich_from_row(row)
            for row in self._timed("sandwiches", sql, params + page_params)
        ]

    def sandwich_for_bundle(self, bundle_id: str) -> QuantifiedSandwich | None:
        """The detection recorded for one attacked bundle, if any.

        Bundle ids are unique in the archive, so at most one row matches.
        """
        rows = self._timed(
            "sandwich_for_bundle",
            "SELECT * FROM sandwiches WHERE bundle_id = ?",
            [bundle_id],
        )
        return sandwich_from_row(rows[0]) if rows else None

    def count_sandwiches(self, where: SandwichFilter | None = None) -> int:
        """Number of detections matching the filter."""
        where = where or SandwichFilter()
        clause, params = where.compile()
        rows = self._timed(
            "count_sandwiches",
            f"SELECT COUNT(*) AS n FROM sandwiches WHERE {clause}",
            params,
        )
        return rows[0]["n"]

    # --- aggregations ------------------------------------------------------

    def bundle_counts_by_day(self) -> dict[str, dict[int, int]]:
        """Per-UTC-date bundle counts by length (the Figure 1 series)."""
        rows = self._timed(
            "bundle_counts_by_day",
            "SELECT landed_date, num_transactions, COUNT(*) AS n "
            "FROM bundles GROUP BY landed_date, num_transactions "
            "ORDER BY landed_date, num_transactions",
            [],
        )
        table: dict[str, dict[int, int]] = {}
        for row in rows:
            table.setdefault(row["landed_date"], {})[
                row["num_transactions"]
            ] = row["n"]
        return table

    def length_histogram(self) -> dict[int, int]:
        """Bundle count by length."""
        rows = self._timed(
            "length_histogram",
            "SELECT num_transactions, COUNT(*) AS n FROM bundles "
            "GROUP BY num_transactions ORDER BY num_transactions",
            [],
        )
        return {row["num_transactions"]: row["n"] for row in rows}

    def sandwiches_per_day(self) -> dict[str, dict[str, float]]:
        """Per-day attack counts and USD loss/gain sums (Figure 2 bottom)."""
        rows = self._timed(
            "sandwiches_per_day",
            "SELECT landed_date, COUNT(*) AS attacks, "
            "COALESCE(SUM(victim_loss_usd), 0) AS victim_loss_usd, "
            "COALESCE(SUM(attacker_gain_usd), 0) AS attacker_gain_usd "
            "FROM sandwiches GROUP BY landed_date ORDER BY landed_date",
            [],
        )
        return {
            row["landed_date"]: {
                "attacks": row["attacks"],
                "victim_loss_usd": row["victim_loss_usd"],
                "attacker_gain_usd": row["attacker_gain_usd"],
            }
            for row in rows
        }

    def tip_histogram(
        self, bucket_lamports: int = 100_000, length: int | None = None
    ) -> dict[int, int]:
        """Bundle counts per tip bucket (bucket floor, in lamports)."""
        if bucket_lamports < 1:
            raise ConfigError("tip bucket width must be >= 1 lamport")
        clause = "1=1" if length is None else "num_transactions = ?"
        params: list = [bucket_lamports, bucket_lamports]
        if length is not None:
            params.append(length)
        rows = self._timed(
            "tip_histogram",
            f"SELECT (tip_lamports / ?) * ? AS bucket, COUNT(*) AS n "
            f"FROM bundles WHERE {clause} GROUP BY bucket ORDER BY bucket",
            params,
        )
        return {row["bucket"]: row["n"] for row in rows}

    def top_attackers(self, limit: int = 10) -> list[dict]:
        """Attackers ranked by total USD extracted (priced events only)."""
        rows = self._timed(
            "top_attackers",
            "SELECT attacker, COUNT(*) AS attacks, "
            "COALESCE(SUM(attacker_gain_usd), 0) AS gain_usd "
            "FROM sandwiches GROUP BY attacker "
            "ORDER BY gain_usd DESC, attacks DESC, attacker LIMIT ?",
            [limit],
        )
        return [
            {
                "attacker": row["attacker"],
                "attacks": row["attacks"],
                "gain_usd": row["gain_usd"],
            }
            for row in rows
        ]

    def defensive_records(self) -> list[tuple[str, BundleRecord]]:
        """Every classified bundle with its label, in collection order.

        The join restores the full bundle record, so rebuilding a
        :class:`~repro.core.defensive.DefensiveReport` from archive rows
        (incremental analysis, the serving tier's financial aggregates)
        sees exactly what the in-memory classifier appended.
        """
        rows = self._timed(
            "defensive_records",
            "SELECT d.classification, b.* FROM defensive d "
            "JOIN bundles b ON b.bundle_id = d.bundle_id ORDER BY b.seq",
            [],
        )
        return [(row["classification"], bundle_from_row(row)) for row in rows]

    def pending_detail_count(self, min_length: int = 3) -> int:
        """Bundles of ``min_length``+ still missing member details.

        The archive-level analogue of the report's "details missing"
        integrity line: detection candidates the fetcher never completed,
        exposed by the serving tier's status endpoint.
        """
        rows = self._timed(
            "pending_detail_count",
            "SELECT COUNT(*) AS n FROM bundles b "
            "WHERE b.num_transactions >= ? AND "
            "(SELECT COUNT(*) FROM bundle_transactions m "
            " JOIN transactions t ON t.transaction_id = m.transaction_id "
            " WHERE m.bundle_id = b.bundle_id) < b.num_transactions",
            [min_length],
        )
        return rows[0]["n"]

    def watermark(self) -> ArchiveWatermark:
        """The archive's current read-side version (three MAX, one COUNT)."""
        rows = self._timed(
            "watermark",
            "SELECT "
            "(SELECT COALESCE(MAX(seq), 0) FROM bundles) AS bundle_seq, "
            "(SELECT COALESCE(MAX(seq), 0) FROM transactions) "
            "  AS transaction_seq, "
            "(SELECT COALESCE(MAX(seq), 0) FROM sandwiches) AS sandwich_seq, "
            "(SELECT COUNT(*) FROM defensive) AS defensive_rows",
            [],
        )
        row = rows[0]
        return ArchiveWatermark(
            bundle_seq=row["bundle_seq"],
            transaction_seq=row["transaction_seq"],
            sandwich_seq=row["sandwich_seq"],
            defensive_rows=row["defensive_rows"],
        )

    def defensive_summary(self) -> dict[str, dict[str, float]]:
        """Counts and tip totals by defensive/priority classification."""
        rows = self._timed(
            "defensive_summary",
            "SELECT classification, COUNT(*) AS n, "
            "COALESCE(SUM(tip_lamports), 0) AS tips "
            "FROM defensive GROUP BY classification ORDER BY classification",
            [],
        )
        return {
            row["classification"]: {
                "bundles": row["n"],
                "tip_lamports": row["tips"],
            }
            for row in rows
        }
