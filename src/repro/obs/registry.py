"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Everything the pipeline records flows through a :class:`MetricsRegistry`.
Two properties matter for a measurement reproduction:

- **Determinism** — metric *values* that feed reports are derived from the
  injectable sim-time clock (see :mod:`repro.utils.simtime`), never the
  ambient wall clock, so replays of the same seed produce identical
  numbers. Wall-clock throughput gauges exist (the engine records them)
  but are excluded from report rendering by construction.
- **Passivity** — recording a metric never draws randomness, advances the
  clock, or raises on the hot path, so instrumented and uninstrumented
  runs produce byte-identical analysis output.

A :class:`NullRegistry` (shared instance :data:`NULL_REGISTRY`) implements
the same surface as no-ops, letting call sites instrument unconditionally
while benchmarks measure the truly-disabled baseline.
"""

from __future__ import annotations

import re
from typing import Callable, Iterator

from repro.errors import ConfigError

#: Default histogram buckets, in seconds: spans from sub-millisecond local
#: work up to the five-minute backoff cap.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)

#: Snapshot schema identifier, bumped on incompatible layout changes.
SNAPSHOT_SCHEMA = "repro.obs/v1"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


# Label names seen and validated once; the hot path skips the regex for
# names already known good (the name universe is small and static).
_VALID_LABEL_NAMES: set[str] = set()


def _label_key(labels: dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    for name in labels:
        if name not in _VALID_LABEL_NAMES:
            if not _LABEL_RE.match(name):
                raise ConfigError(f"invalid label name {name!r}")
            _VALID_LABEL_NAMES.add(name)
    if len(labels) == 1:
        ((name, value),) = labels.items()
        return ((name, str(value)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class for one named metric family (all label combinations)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ConfigError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self._series: dict[LabelKey, object] = {}

    def _new_series(self) -> object:
        raise NotImplementedError

    def _get(self, labels: dict[str, str]) -> object:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._new_series()
            self._series[key] = series
        return series

    def series(self) -> Iterator[tuple[LabelKey, object]]:
        """Iterate ``(label_key, state)`` pairs in deterministic order."""
        return iter(sorted(self._series.items()))

    def snapshot_series(self) -> list[dict]:
        """JSON-serializable view of every series of this family."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (requests served, polls failed...)."""

    kind = "counter"

    def _new_series(self) -> float:
        return 0.0

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the series selected by ``labels``.

        Raises:
            ConfigError: if ``amount`` is negative — counters only go up.
        """
        if amount < 0:
            raise ConfigError(f"counter increment must be >= 0, got {amount}")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the selected series (0 if never incremented)."""
        return float(self._series.get(_label_key(labels), 0.0))

    def snapshot_series(self) -> list[dict]:
        """JSON-serializable view: one ``{labels, value}`` entry per series."""
        return [
            {"labels": dict(key), "value": value}
            for key, value in self.series()
        ]


class Gauge(Metric):
    """A value that can go up and down (overlap ratio, queue depth...)."""

    kind = "gauge"

    def _new_series(self) -> float:
        return 0.0

    def set(self, value: float, **labels: str) -> None:
        """Set the selected series to ``value``."""
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the selected series."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the selected series (0 if never set)."""
        return float(self._series.get(_label_key(labels), 0.0))

    def snapshot_series(self) -> list[dict]:
        """JSON-serializable view: one ``{labels, value}`` entry per series."""
        return [
            {"labels": dict(key), "value": value}
            for key, value in self.series()
        ]


class _HistogramState:
    """Bucket counts, sum, and count for one histogram series."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """A fixed-bucket distribution (durations, batch sizes, delays)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        if not buckets:
            raise ConfigError("histogram needs at least one bucket bound")
        if list(buckets) != sorted(buckets):
            raise ConfigError(f"histogram buckets must ascend: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)

    def _new_series(self) -> _HistogramState:
        return _HistogramState(len(self.buckets))

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the selected series."""
        state = self._get(labels)
        assert isinstance(state, _HistogramState)
        state.sum += value
        state.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state.bucket_counts[index] += 1
                return
        state.bucket_counts[-1] += 1

    def count(self, **labels: str) -> int:
        """Number of observations in the selected series."""
        state = self._series.get(_label_key(labels))
        return state.count if isinstance(state, _HistogramState) else 0

    def total(self, **labels: str) -> float:
        """Sum of observations in the selected series."""
        state = self._series.get(_label_key(labels))
        return state.sum if isinstance(state, _HistogramState) else 0.0

    def snapshot_series(self) -> list[dict]:
        """JSON view: cumulative buckets plus sum/count per series."""
        entries = []
        for key, state in self.series():
            assert isinstance(state, _HistogramState)
            cumulative: dict[str, int] = {}
            running = 0
            for bound, bucket in zip(self.buckets, state.bucket_counts):
                running += bucket
                cumulative[repr(bound)] = running
            cumulative["+Inf"] = state.count
            entries.append(
                {
                    "labels": dict(key),
                    "buckets": cumulative,
                    "sum": state.sum,
                    "count": state.count,
                }
            )
        return entries


class MetricsRegistry:
    """Creates and holds metric families; renders deterministic snapshots.

    ``time_fn`` is the clock spans and the snapshot timestamp read. Wire
    the campaign's :class:`~repro.utils.simtime.SimClock` here (the
    measurement campaign does this automatically) so every recorded time
    is simulated, reproducible time.
    """

    def __init__(self, time_fn: Callable[[], float] | None = None) -> None:
        self._time_fn: Callable[[], float] = time_fn or (lambda: 0.0)
        self._metrics: dict[str, Metric] = {}

    @property
    def enabled(self) -> bool:
        """Whether this registry actually records (False for the null one)."""
        return True

    def set_time_fn(self, time_fn: Callable[[], float]) -> None:
        """Rebind the clock (used once the campaign's SimClock exists)."""
        self._time_fn = time_fn

    def now(self) -> float:
        """Current time according to the registry's injected clock."""
        return self._time_fn()

    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ConfigError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}, not {metric.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter family ``name``."""
        metric = self._register(Counter(name, help_text))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the gauge family ``name``."""
        metric = self._register(Gauge(name, help_text))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        metric = self._register(Histogram(name, help_text, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric | None:
        """Look up a registered family by name."""
        return self._metrics.get(name)

    def span(self, name: str, **labels: str):
        """Open a timed span; see :func:`repro.obs.spans.span_context`."""
        from repro.obs.spans import span_context

        return span_context(self, name, **labels)

    def snapshot(self) -> dict:
        """A JSON-serializable, deterministically ordered snapshot.

        The layout is ``{schema, captured_at, metrics: {name: {type, help,
        series: [...]}}}``; ``captured_at`` comes from the injected clock,
        so same-seed campaigns snapshot identically.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "captured_at": self.now(),
            "metrics": {
                name: {
                    "type": metric.kind,
                    "help": metric.help_text,
                    "series": metric.snapshot_series(),
                }
                for name, metric in sorted(self._metrics.items())
            },
        }


class _NullCounter:
    """Counter stand-in whose operations do nothing."""

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Discard the increment."""

    def value(self, **labels: str) -> float:
        """Always 0."""
        return 0.0


class _NullGauge:
    """Gauge stand-in whose operations do nothing."""

    def set(self, value: float, **labels: str) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Discard the increment."""

    def value(self, **labels: str) -> float:
        """Always 0."""
        return 0.0


class _NullHistogram:
    """Histogram stand-in whose operations do nothing."""

    def observe(self, value: float, **labels: str) -> None:
        """Discard the observation."""

    def count(self, **labels: str) -> int:
        """Always 0."""
        return 0

    def total(self, **labels: str) -> float:
        """Always 0."""
        return 0.0


class _NullSpan:
    """No-op context manager returned by :meth:`NullRegistry.span`."""

    outcome = "ok"

    def fail(self, outcome: str = "error") -> None:
        """Discard the outcome override."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — the disabled-observability mode.

    Shares the :class:`MetricsRegistry` surface so instrumented code never
    branches; every handle it returns is an inert singleton.
    """

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()
    _SPAN = _NullSpan()

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        """Always False: nothing is recorded."""
        return False

    def set_time_fn(self, time_fn: Callable[[], float]) -> None:
        """Ignore the clock; the null registry never reads time."""

    def counter(self, name: str, help_text: str = "") -> Counter:
        """The shared inert counter."""
        return self._COUNTER  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """The shared inert gauge."""
        return self._GAUGE  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The shared inert histogram."""
        return self._HISTOGRAM  # type: ignore[return-value]

    def span(self, name: str, **labels: str):
        """The shared inert span context."""
        return self._SPAN

    def snapshot(self) -> dict:
        """An empty snapshot (schema header, no metric families)."""
        return {"schema": SNAPSHOT_SCHEMA, "captured_at": 0.0, "metrics": {}}


#: Shared inert registry; the default for instrumented components.
NULL_REGISTRY = NullRegistry()
