"""Lightweight span tracing over the metrics registry.

A span wraps one logical operation (``poll.fetch``, ``detail.fetch``,
``analysis.pipeline``) and records its duration and outcome into two shared
metric families:

- ``span_duration_seconds`` — histogram, labelled ``{span, outcome}``;
- ``span_total`` — counter, labelled ``{span, outcome}``.

Durations are measured on the registry's injected clock. Under the sim-time
clock an operation that does not advance simulated time records a zero
duration — that is intentional: replays must stay deterministic, so spans
never read the wall clock.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.obs.registry import MetricsRegistry

#: Histogram family every span's duration lands in.
SPAN_DURATION_METRIC = "span_duration_seconds"
#: Counter family tallying span completions by outcome.
SPAN_TOTAL_METRIC = "span_total"


class SpanHandle:
    """Mutable view of an in-flight span; lets the body set the outcome."""

    __slots__ = ("name", "outcome")

    def __init__(self, name: str) -> None:
        self.name = name
        self.outcome = "ok"

    def fail(self, outcome: str = "error") -> None:
        """Mark the span failed with an explicit outcome label."""
        self.outcome = outcome


@contextmanager
def span_context(
    registry: "MetricsRegistry", name: str, **labels: str
) -> Iterator[SpanHandle]:
    """Time the enclosed block and record duration + outcome.

    An exception escaping the block marks the outcome ``error`` (unless the
    body already called :meth:`SpanHandle.fail` with something more
    specific) and is re-raised — tracing never swallows failures.
    """
    handle = SpanHandle(name)
    started = registry.now()
    try:
        yield handle
    except BaseException:
        if handle.outcome == "ok":
            handle.outcome = "error"
        _record(registry, handle, registry.now() - started, labels)
        raise
    _record(registry, handle, registry.now() - started, labels)


def _record(
    registry: "MetricsRegistry",
    handle: SpanHandle,
    duration: float,
    labels: dict[str, str],
) -> None:
    merged = dict(labels)
    merged["span"] = handle.name
    merged["outcome"] = handle.outcome
    registry.histogram(
        SPAN_DURATION_METRIC, "Span durations on the injected clock."
    ).observe(max(0.0, duration), **merged)
    registry.counter(
        SPAN_TOTAL_METRIC, "Spans completed, by name and outcome."
    ).inc(**merged)
