"""Exporters: Prometheus text, JSON snapshots, and human-readable tables.

All renderers consume the JSON snapshot layout produced by
:meth:`repro.obs.registry.MetricsRegistry.snapshot`, so a snapshot saved by
``--metrics-out`` renders identically to a live registry.

The campaign report's "Pipeline health" section is built here too. It
includes only sim-time-deterministic series (and never the engine's
wall-clock throughput gauges), preserving the invariant that analysis
reports are byte-identical across replays of the same seed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.registry import (
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _HistogramState,
    _label_key,
)

#: Metric names whose values come from the wall clock; report renderers
#: must never include these (snapshot files still carry them).
WALL_CLOCK_METRICS = frozenset(
    {"sim_wall_seconds", "sim_blocks_per_wall_second"}
)


def save_snapshot(source: MetricsRegistry | dict, path: str | Path) -> dict:
    """Write a snapshot (from a registry or an existing dict) as JSON.

    Returns the snapshot dict that was written.
    """
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return snapshot


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot JSON file, validating the schema header."""
    snapshot = json.loads(Path(path).read_text())
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ConfigError(f"{path} is not a metrics snapshot")
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ConfigError(
            f"unsupported snapshot schema {schema!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    return snapshot


def _histogram_bounds(family: dict) -> tuple[float, ...] | None:
    for entry in family.get("series", []):
        return tuple(
            sorted(
                float(bound)
                for bound in entry["buckets"]
                if bound != "+Inf"
            )
        )
    return None


def _restore_histogram_series(
    metric: Histogram, entry: dict
) -> _HistogramState:
    state = _HistogramState(len(metric.buckets))
    cumulative = entry["buckets"]
    running = 0
    for index, bound in enumerate(metric.buckets):
        total = int(cumulative[repr(bound)])
        state.bucket_counts[index] = total - running
        running = total
    state.bucket_counts[-1] = int(entry["count"]) - running
    state.sum = float(entry["sum"])
    state.count = int(entry["count"])
    return state


def restore_snapshot_into(
    registry: MetricsRegistry, snapshot: dict
) -> int:
    """Load a snapshot's values into a live registry, overwriting in place.

    Families are created when missing and *mutated* when present, so metric
    handles components captured at construction keep working — this is how
    a resumed campaign warm-starts its registry to the checkpointed values.
    Returns the number of series restored.

    Raises:
        ConfigError: if a family exists with a different type, or a
            histogram's bucket bounds disagree with the snapshot's.
    """
    if not registry.enabled:
        return 0
    restored = 0
    for name, family in snapshot.get("metrics", {}).items():
        kind = family.get("type")
        help_text = family.get("help", "")
        series = family.get("series", [])
        if kind == "counter":
            metric: Counter | Gauge | Histogram = registry.counter(
                name, help_text
            )
        elif kind == "gauge":
            metric = registry.gauge(name, help_text)
        elif kind == "histogram":
            bounds = _histogram_bounds(family)
            existing = registry.get(name)
            if existing is None and bounds is None:
                continue  # empty family; nothing to restore
            metric = (
                existing
                if isinstance(existing, Histogram)
                else registry.histogram(name, help_text, buckets=bounds)
            )
            if not isinstance(metric, Histogram):
                raise ConfigError(
                    f"metric {name!r} is {metric.kind}, snapshot says "
                    "histogram"
                )
            if bounds is not None and metric.buckets != bounds:
                raise ConfigError(
                    f"histogram {name!r} buckets {metric.buckets} do not "
                    f"match snapshot buckets {bounds}"
                )
        else:
            raise ConfigError(
                f"cannot restore metric {name!r} of kind {kind!r}"
            )
        metric._series.clear()
        for entry in series:
            key = _label_key(
                {str(k): str(v) for k, v in entry.get("labels", {}).items()}
            )
            if isinstance(metric, Histogram):
                metric._series[key] = _restore_histogram_series(
                    metric, entry
                )
            else:
                metric._series[key] = float(entry["value"])
            restored += 1
    return restored


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, family in sorted(snapshot.get("metrics", {}).items()):
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in family.get("series", []):
            labels = entry.get("labels", {})
            if kind == "histogram":
                for bound, count in entry["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = bound
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{count}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {entry['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(entry['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_summary(snapshot: dict) -> str:
    """Render a snapshot as an aligned human-readable table."""
    rows: list[tuple[str, str]] = []
    for name, family in sorted(snapshot.get("metrics", {}).items()):
        kind = family.get("type", "untyped")
        for entry in family.get("series", []):
            label_text = _format_labels(entry.get("labels", {}))
            if kind == "histogram":
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                value = f"count={count} mean={mean:.6g}"
            else:
                value = _format_value(entry["value"])
            rows.append((f"{name}{label_text}", value))
    if not rows:
        return "metrics: (empty snapshot)"
    width = max(len(key) for key, _ in rows)
    lines = [f"{key.ljust(width)}  {value}" for key, value in rows]
    header = f"metrics: {len(rows)} series"
    return "\n".join([header, *lines])


def _sum_counter(snapshot: dict, name: str, **where: str) -> float:
    family = snapshot.get("metrics", {}).get(name)
    if family is None:
        return 0.0
    total = 0.0
    for entry in family.get("series", []):
        labels = entry.get("labels", {})
        if all(labels.get(key) == value for key, value in where.items()):
            total += entry.get("value", 0.0)
    return total


def _gauge_value(snapshot: dict, name: str) -> float | None:
    family = snapshot.get("metrics", {}).get(name)
    if family is None or not family.get("series"):
        return None
    return family["series"][0].get("value")


def render_pipeline_health(snapshot: dict) -> str:
    """The campaign report's "Pipeline health" section.

    Only deterministic, sim-time-driven series appear here (see
    :data:`WALL_CLOCK_METRICS` for the exclusion), so the rendered report
    stays byte-identical across replays of the same seed.
    """
    if not snapshot.get("metrics"):
        return "Pipeline health — observability disabled"
    polls_ok = _sum_counter(snapshot, "collector_polls_total", status="ok")
    polls_failed = _sum_counter(
        snapshot, "collector_polls_total", status="failed"
    )
    retries = _sum_counter(snapshot, "collector_poll_retries_total")
    dedup = _sum_counter(snapshot, "store_bundle_dedup_hits_total")
    batches_ok = _sum_counter(
        snapshot, "collector_detail_batches_total", outcome="ok"
    )
    batches_failed = _sum_counter(
        snapshot, "collector_detail_batches_total", outcome="failed"
    )
    served = _sum_counter(snapshot, "explorer_requests_total")
    limited = _sum_counter(
        snapshot, "explorer_requests_rejected_total", reason="rate_limited"
    )
    unavailable = _sum_counter(
        snapshot, "explorer_requests_rejected_total", reason="unavailable"
    )
    examined = _sum_counter(snapshot, "detector_bundles_examined_total")
    confirmed = _sum_counter(snapshot, "detector_sandwiches_total")
    defensive = _sum_counter(
        snapshot, "defensive_bundles_total", classification="defensive"
    )
    overlap = _gauge_value(snapshot, "collector_overlap_ratio")
    lines = [
        "Pipeline health",
        f"  polls               ok={polls_ok:.0f} failed={polls_failed:.0f} "
        f"retries={retries:.0f}",
        f"  store               dedup_hits={dedup:.0f}",
        f"  detail batches      ok={batches_ok:.0f} "
        f"failed={batches_failed:.0f}",
        f"  explorer requests   served={served:.0f} "
        f"rate_limited={limited:.0f} unavailable={unavailable:.0f}",
        f"  detection           examined={examined:.0f} "
        f"confirmed={confirmed:.0f} defensive={defensive:.0f}",
    ]
    if overlap is not None:
        lines.insert(
            2, f"  coverage            overlap_ratio={overlap:.4f}"
        )
    archive_rows = _sum_counter(snapshot, "archive_rows_written_total")
    if archive_rows:
        flushes = _sum_counter(snapshot, "archive_flushes_total")
        checkpoints = _sum_counter(snapshot, "archive_checkpoints_total")
        line = (
            f"  archive             rows={archive_rows:.0f} "
            f"flushes={flushes:.0f} checkpoints={checkpoints:.0f}"
        )
        last_checkpoint = _gauge_value(
            snapshot, "archive_last_checkpoint_sim_time"
        )
        if checkpoints and last_checkpoint is not None:
            age = snapshot.get("captured_at", 0.0) - last_checkpoint
            line += f" checkpoint_age_s={age:.0f}"
        lines.append(line)
    return "\n".join(lines)
