"""Exporters: Prometheus text, JSON snapshots, and human-readable tables.

All renderers consume the JSON snapshot layout produced by
:meth:`repro.obs.registry.MetricsRegistry.snapshot`, so a snapshot saved by
``--metrics-out`` renders identically to a live registry.

The campaign report's "Pipeline health" section is built here too. It
includes only sim-time-deterministic series (and never the engine's
wall-clock throughput gauges), preserving the invariant that analysis
reports are byte-identical across replays of the same seed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.registry import SNAPSHOT_SCHEMA, MetricsRegistry

#: Metric names whose values come from the wall clock; report renderers
#: must never include these (snapshot files still carry them).
WALL_CLOCK_METRICS = frozenset(
    {"sim_wall_seconds", "sim_blocks_per_wall_second"}
)


def save_snapshot(source: MetricsRegistry | dict, path: str | Path) -> dict:
    """Write a snapshot (from a registry or an existing dict) as JSON.

    Returns the snapshot dict that was written.
    """
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return snapshot


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot JSON file, validating the schema header."""
    snapshot = json.loads(Path(path).read_text())
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ConfigError(f"{path} is not a metrics snapshot")
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ConfigError(
            f"unsupported snapshot schema {schema!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    return snapshot


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, family in sorted(snapshot.get("metrics", {}).items()):
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in family.get("series", []):
            labels = entry.get("labels", {})
            if kind == "histogram":
                for bound, count in entry["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = bound
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{count}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {entry['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(entry['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_summary(snapshot: dict) -> str:
    """Render a snapshot as an aligned human-readable table."""
    rows: list[tuple[str, str]] = []
    for name, family in sorted(snapshot.get("metrics", {}).items()):
        kind = family.get("type", "untyped")
        for entry in family.get("series", []):
            label_text = _format_labels(entry.get("labels", {}))
            if kind == "histogram":
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                value = f"count={count} mean={mean:.6g}"
            else:
                value = _format_value(entry["value"])
            rows.append((f"{name}{label_text}", value))
    if not rows:
        return "metrics: (empty snapshot)"
    width = max(len(key) for key, _ in rows)
    lines = [f"{key.ljust(width)}  {value}" for key, value in rows]
    header = f"metrics: {len(rows)} series"
    return "\n".join([header, *lines])


def _sum_counter(snapshot: dict, name: str, **where: str) -> float:
    family = snapshot.get("metrics", {}).get(name)
    if family is None:
        return 0.0
    total = 0.0
    for entry in family.get("series", []):
        labels = entry.get("labels", {})
        if all(labels.get(key) == value for key, value in where.items()):
            total += entry.get("value", 0.0)
    return total


def _gauge_value(snapshot: dict, name: str) -> float | None:
    family = snapshot.get("metrics", {}).get(name)
    if family is None or not family.get("series"):
        return None
    return family["series"][0].get("value")


def render_pipeline_health(snapshot: dict) -> str:
    """The campaign report's "Pipeline health" section.

    Only deterministic, sim-time-driven series appear here (see
    :data:`WALL_CLOCK_METRICS` for the exclusion), so the rendered report
    stays byte-identical across replays of the same seed.
    """
    if not snapshot.get("metrics"):
        return "Pipeline health — observability disabled"
    polls_ok = _sum_counter(snapshot, "collector_polls_total", status="ok")
    polls_failed = _sum_counter(
        snapshot, "collector_polls_total", status="failed"
    )
    retries = _sum_counter(snapshot, "collector_poll_retries_total")
    dedup = _sum_counter(snapshot, "store_bundle_dedup_hits_total")
    batches_ok = _sum_counter(
        snapshot, "collector_detail_batches_total", outcome="ok"
    )
    batches_failed = _sum_counter(
        snapshot, "collector_detail_batches_total", outcome="failed"
    )
    served = _sum_counter(snapshot, "explorer_requests_total")
    limited = _sum_counter(
        snapshot, "explorer_requests_rejected_total", reason="rate_limited"
    )
    unavailable = _sum_counter(
        snapshot, "explorer_requests_rejected_total", reason="unavailable"
    )
    examined = _sum_counter(snapshot, "detector_bundles_examined_total")
    confirmed = _sum_counter(snapshot, "detector_sandwiches_total")
    defensive = _sum_counter(
        snapshot, "defensive_bundles_total", classification="defensive"
    )
    overlap = _gauge_value(snapshot, "collector_overlap_ratio")
    lines = [
        "Pipeline health",
        f"  polls               ok={polls_ok:.0f} failed={polls_failed:.0f} "
        f"retries={retries:.0f}",
        f"  store               dedup_hits={dedup:.0f}",
        f"  detail batches      ok={batches_ok:.0f} "
        f"failed={batches_failed:.0f}",
        f"  explorer requests   served={served:.0f} "
        f"rate_limited={limited:.0f} unavailable={unavailable:.0f}",
        f"  detection           examined={examined:.0f} "
        f"confirmed={confirmed:.0f} defensive={defensive:.0f}",
    ]
    if overlap is not None:
        lines.insert(
            2, f"  coverage            overlap_ratio={overlap:.4f}"
        )
    return "\n".join(lines)
