"""repro.obs — observability for the measurement pipeline.

The paper's four-month collection campaign survived rate limits, endpoint
instability, and coverage gaps because its operators could see what the
scraper was doing. This package gives the reproduction the same eyes:

- :mod:`repro.obs.registry` — counters, gauges, fixed-bucket histograms,
  and the :class:`MetricsRegistry` that holds them (plus the inert
  :data:`NULL_REGISTRY` for disabled mode);
- :mod:`repro.obs.spans` — ``with registry.span("poll.fetch"):`` timing;
- :mod:`repro.obs.events` — structured event logging with console, JSONL,
  and in-memory sinks;
- :mod:`repro.obs.export` — Prometheus text, JSON snapshots, summary
  tables, and the campaign report's "Pipeline health" section.

Determinism contract: recording is passive (no RNG draws, no clock
advances) and every value that feeds a report derives from the injected
sim-time clock — so instrumented and uninstrumented replays of the same
seed produce byte-identical analysis output.
"""

from repro.obs.events import (
    ConsoleSink,
    Event,
    EventLog,
    JsonlSink,
    MemorySink,
    Severity,
)
from repro.obs.export import (
    load_snapshot,
    render_pipeline_health,
    render_prometheus,
    render_summary,
    save_snapshot,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.spans import SpanHandle, span_context

__all__ = [
    "ConsoleSink",
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Severity",
    "SpanHandle",
    "load_snapshot",
    "render_pipeline_health",
    "render_prometheus",
    "render_summary",
    "save_snapshot",
    "span_context",
]
