"""Structured event logging for the measurement pipeline.

Replaces bare ``print(...)`` calls with typed records — severity, component,
message, and structured fields — fanned out to pluggable sinks:

- :class:`ConsoleSink` writes the bare message to a stream, so CLI output
  stays byte-identical to the historical prints;
- :class:`JsonlSink` appends one JSON object per event for machines;
- :class:`MemorySink` buffers events for tests and in-process inspection.

Timestamps come from an injectable clock (the sim clock in campaigns), and
are attached to the record, never interpolated into the message — so the
console rendering carries no nondeterministic text.
"""

from __future__ import annotations

import enum
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Iterable


class Severity(enum.IntEnum):
    """Event severity, ordered so sinks can threshold numerically."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40


@dataclass(frozen=True)
class Event:
    """One structured log record."""

    severity: Severity
    component: str
    message: str
    fields: dict = field(default_factory=dict)
    time: float | None = None

    def to_json(self) -> dict:
        """JSON-serializable form (severity as its name)."""
        record = {
            "severity": self.severity.name,
            "component": self.component,
            "message": self.message,
        }
        if self.fields:
            record["fields"] = self.fields
        if self.time is not None:
            record["time"] = self.time
        return record


class ConsoleSink:
    """Plain-text sink: writes just the message, like the prints it replaced."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        min_severity: Severity = Severity.DEBUG,
    ) -> None:
        self._stream = stream
        self.min_severity = min_severity

    def write(self, event: Event) -> None:
        """Print the event's message to the configured stream."""
        if event.severity < self.min_severity:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        print(event.message, file=stream)


class JsonlSink:
    """Appends one JSON object per event to a file."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = None

    def write(self, event: Event) -> None:
        """Serialize and append the event (opening the file lazily)."""
        if self._handle is None:
            self._handle = self._path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file, if it was opened."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MemorySink:
    """Buffers events in a list (tests, in-process dashboards)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def write(self, event: Event) -> None:
        """Append the event to the buffer."""
        self.events.append(event)

    def messages(self) -> list[str]:
        """Just the message strings, in arrival order."""
        return [event.message for event in self.events]


class EventLog:
    """Routes structured events to every attached sink.

    Sinks need one method, ``write(event)``; a failing sink propagates (the
    pipeline should notice a broken log destination, not silently drop
    telemetry).
    """

    def __init__(
        self,
        sinks: Iterable = (),
        time_fn: Callable[[], float] | None = None,
        min_severity: Severity = Severity.DEBUG,
    ) -> None:
        self._sinks: list = list(sinks)
        self._time_fn = time_fn
        self.min_severity = min_severity

    def add_sink(self, sink) -> None:
        """Attach another sink."""
        self._sinks.append(sink)

    def set_time_fn(self, time_fn: Callable[[], float]) -> None:
        """Bind the clock events are stamped with (e.g. a SimClock)."""
        self._time_fn = time_fn

    def emit(
        self,
        severity: Severity,
        component: str,
        message: str,
        **fields,
    ) -> Event:
        """Build, stamp, and fan out one event; returns the record."""
        event = Event(
            severity=severity,
            component=component,
            message=message,
            fields=fields,
            time=self._time_fn() if self._time_fn is not None else None,
        )
        if severity >= self.min_severity:
            for sink in self._sinks:
                sink.write(event)
        return event

    def debug(self, component: str, message: str, **fields) -> Event:
        """Emit at DEBUG."""
        return self.emit(Severity.DEBUG, component, message, **fields)

    def info(self, component: str, message: str, **fields) -> Event:
        """Emit at INFO."""
        return self.emit(Severity.INFO, component, message, **fields)

    def warning(self, component: str, message: str, **fields) -> Event:
        """Emit at WARNING."""
        return self.emit(Severity.WARNING, component, message, **fields)

    def error(self, component: str, message: str, **fields) -> Event:
        """Emit at ERROR."""
        return self.emit(Severity.ERROR, component, message, **fields)
