"""Retail traders: native swaps, and therefore the sandwich-victim pool.

Trade sizes and slippage tolerances are heavy-tailed: the paper's victim-loss
distribution (median ~$5, tail beyond $100, Figure 3) emerges from the
product of these two choices, since a sandwich attacker can extract at most
the victim's slippage budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import AgentContext, Behavior, GeneratedBundle, WalletPool
from repro.dex.pool import PoolSpec
from repro.errors import ConfigError, DexError
from repro.solana.keys import Keypair
from repro.solana.tokens import SOL_MINT
from repro.solana.transaction import Transaction
from repro.utils.distributions import clipped_lognormal
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class RetailConfig:
    """Distributional knobs for retail trading behaviour."""

    num_wallets: int = 400
    median_trade_sol: float = 0.85
    trade_sigma: float = 1.2
    min_trade_sol: float = 0.05
    max_trade_sol: float = 500.0
    median_slippage_bps: float = 70.0
    slippage_sigma: float = 0.8
    min_slippage_bps: int = 10
    max_slippage_bps: int = 2_000
    buy_fraction: float = 0.55


@dataclass(frozen=True)
class VictimOrder:
    """A built-and-submitted native swap, as seen in the private mempool."""

    transaction: Transaction
    wallet: Keypair
    pool: PoolSpec
    mint_in: str
    amount_in: int
    min_amount_out: int
    slippage_bps: int


class RetailTrader(Behavior):
    """Generates native (unbundled) swap transactions."""

    name = "retail"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        config: RetailConfig | None = None,
    ) -> None:
        super().__init__(ctx, rng)
        self.config = config or RetailConfig()
        self.wallets = WalletPool(ctx.bank, "retail-wallet", self.config.num_wallets)

    def generate(self) -> GeneratedBundle | None:
        """Submit one native swap (no bundle record: natives have no bundle)."""
        self.build_and_submit_order(pool_kind="sol")
        return None

    # --- order construction (also used by the attacker to source victims) ---

    def _sample_slippage_bps(self) -> int:
        config = self.config
        return int(
            clipped_lognormal(
                self.rng,
                config.median_slippage_bps,
                config.slippage_sigma,
                config.min_slippage_bps,
                config.max_slippage_bps,
            )
        )

    def _sample_trade_sol(self) -> float:
        config = self.config
        return clipped_lognormal(
            self.rng,
            config.median_trade_sol,
            config.trade_sigma,
            config.min_trade_sol,
            config.max_trade_sol,
        )

    def build_and_submit_order(self, pool_kind: str = "sol") -> VictimOrder:
        """Build a native swap, submit it, and return its mempool view.

        ``pool_kind`` selects the venue: ``"sol"`` trades a SOL/memecoin pool
        (the quantifiable case); ``"token"`` trades a USDC/memecoin pool (the
        28% of sandwiches the paper cannot price).
        """
        ctx = self.ctx
        wallet = self.wallets.pick(self.rng)
        slippage_bps = self._sample_slippage_bps()

        quote = None
        for _attempt in range(5):
            if pool_kind == "token":
                pool = ctx.market.random_token_token_pool(self.rng)
                quote_mint = ctx.market.usdc
                # Size the stable leg to the SOL-case notional equivalent.
                sol_notional = self._sample_trade_sol()
                usd_notional = ctx.oracle.sol_to_usd(sol_notional)
                amount_in = quote_mint.to_base_units(usd_notional)
            else:
                pool = ctx.market.random_sol_pool(self.rng)
                quote_mint = SOL_MINT
                amount_in = SOL_MINT.to_base_units(self._sample_trade_sol())
            amount_in = max(amount_in, 1)

            buying_token = self.rng.bernoulli(self.config.buy_fraction)
            token_mint = pool.other_mint(quote_mint.address)
            if buying_token:
                mint_in = quote_mint.address
                mint_out = token_mint.address
            else:
                # Selling tokens back into the quote currency: size the
                # token leg to the sampled notional at the current rate.
                mint_in = token_mint.address
                mint_out = quote_mint.address
                rate = ctx.market.spot_rate(pool, quote_mint.address)
                amount_in = max(int(amount_in / rate) if rate > 0 else 1, 1)

            try:
                quote = ctx.router.quote(
                    mint_in, mint_out, amount_in, slippage_bps
                )
                break
            except DexError:
                continue  # drained or dust-quoting pool: redraw
        if quote is None:
            raise ConfigError("retail order found no viable route")
        self.wallets.ensure_lamports(wallet, 10_000_000)
        self.wallets.ensure_tokens(wallet, mint_in, amount_in)
        tx = ctx.router.build_swap_transaction(wallet, quote)
        ctx.searcher.send_transaction(tx)
        return VictimOrder(
            transaction=tx,
            wallet=wallet,
            pool=quote.pool,
            mint_in=mint_in.to_base58(),
            amount_in=amount_in,
            min_amount_out=quote.min_amount_out,
            slippage_bps=slippage_bps,
        )
