"""The sandwich attacker: victim selection, optimal front-run sizing,
bundle construction, and profit-proportional tipping.

The attack exactly follows the paper's threat model (Section 2.3): a victim
transaction submitted natively to Solana is instead claimed from a private
mempool and landed inside the attacker's Jito bundle, surrounded by a
front-run buy and a back-run sell. Atomicity makes the attack risk-free —
if the victim's slippage check fails, the whole bundle is dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.agents.base import (
    AgentContext,
    Behavior,
    GeneratedBundle,
    Label,
    WalletPool,
)
from repro.agents.retail import RetailTrader, VictimOrder
from repro.constants import MIN_JITO_TIP_LAMPORTS
from repro.dex.pool import PoolSpec, quote_constant_product
from repro.dex.swap import swap_instruction
from repro.errors import (
    ConfigError,
    InsufficientLiquidityError,
    PoolNotFoundError,
)
from repro.jito.tips import build_tip_instruction
from repro.solana.instruction import DEX_PROGRAM_ID
from repro.solana.keys import Pubkey
from repro.solana.tokens import SOL_MINT
from repro.solana.transaction import Transaction
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class SandwichConfig:
    """Attacker economics and behaviour knobs."""

    num_wallets: int = 12
    non_sol_fraction: float = 0.22
    tip_profit_fraction_low: float = 0.18
    tip_profit_fraction_high: float = 0.50
    min_profit_lamports: int = 200_000
    # Footnote 7: attackers frequently unload held inventory in the
    # back-run, selling more than the front-run bought. The dump size is
    # proportional to the opportunity (the expected extraction).
    sell_extra_probability: float = 0.75
    sell_extra_value_low: float = 2.0
    sell_extra_value_high: float = 8.0
    botched_backrun_probability: float = 0.01
    max_frontrun_reserve_fraction: float = 0.25
    # Probability a second searcher contests the same victim with its own
    # tip bid; the block engine's auction plus replay protection lands the
    # higher bid and drops the loser risk-free (paper Section 4.2's
    # "outbid others attacking the same victim transaction").
    contested_probability: float = 0.0
    # Fraction of attacks submitted through a private channel that bypasses
    # the public explorer feed. The bundle still lands (ground truth records
    # it) but a feed-scraping collector never sees it — the sampling bias
    # "Sandwiched and Silent" documents for Ethereum. The channel draw only
    # happens when the fraction is positive, so default campaigns consume
    # exactly the historical RNG stream.
    private_channel_fraction: float = 0.0


@dataclass(frozen=True)
class FrontrunPlan:
    """A fully solved sandwich: sizes and expected outcomes."""

    frontrun_in: int
    frontrun_out: int
    victim_out: int
    backrun_out: int

    @property
    def expected_profit(self) -> int:
        """Expected quote-currency profit before tips and fees."""
        return self.backrun_out - self.frontrun_in


def parse_swap_payload(tx: Transaction) -> dict | None:
    """Extract the first DEX swap payload from a transaction, if any.

    This is the searcher's-eye view: a pending transaction's instructions
    are plaintext, so the attacker can read the victim's pool, size, and —
    crucially — slippage floor.
    """
    for instruction in tx.message.instructions:
        if instruction.program_id != DEX_PROGRAM_ID:
            continue
        try:
            payload = json.loads(instruction.data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        if payload.get("op") == "swap":
            return payload
    return None


def plan_frontrun(
    reserve_in: int,
    reserve_out: int,
    fee_bps: int,
    victim_amount_in: int,
    victim_min_out: int,
    max_frontrun: int,
) -> FrontrunPlan | None:
    """Solve for the largest front-run the victim's slippage floor allows.

    The victim's output is monotonically decreasing in the front-run size,
    so binary search finds the maximal size that still lets the victim's
    ``min_amount_out`` check pass; extraction is maximal exactly at the
    victim's slippage budget, matching the paper's observation that slippage
    acts as a cap on the attacker (Section 2.2).

    Returns None when even an untouched pool cannot satisfy the victim (a
    stale quote) or when no positive front-run is feasible.
    """

    def victim_out_with_frontrun(frontrun: int) -> tuple[int, int]:
        if frontrun == 0:
            out_front = 0
            r_in, r_out = reserve_in, reserve_out
        else:
            out_front = quote_constant_product(
                reserve_in, reserve_out, frontrun, fee_bps
            )
            r_in, r_out = reserve_in + frontrun, reserve_out - out_front
        try:
            victim_out = quote_constant_product(
                r_in, r_out, victim_amount_in, fee_bps
            )
        except InsufficientLiquidityError:
            return 0, out_front
        return victim_out, out_front

    def full_plan(frontrun: int) -> FrontrunPlan | None:
        victim_out, frontrun_out = victim_out_with_frontrun(frontrun)
        if victim_out < victim_min_out or frontrun_out <= 0:
            return None
        # State after the victim's trade, from which the back-run sells.
        r_in_final = reserve_in + frontrun + victim_amount_in
        r_out_final = reserve_out - frontrun_out - victim_out
        try:
            backrun_out = quote_constant_product(
                r_out_final, r_in_final, frontrun_out, fee_bps
            )
        except (InsufficientLiquidityError, ConfigError):
            return None
        return FrontrunPlan(
            frontrun_in=frontrun,
            frontrun_out=frontrun_out,
            victim_out=victim_out,
            backrun_out=backrun_out,
        )

    baseline_out, _ = victim_out_with_frontrun(0)
    if baseline_out < victim_min_out:
        return None

    # Largest feasible front-run: the victim's slippage floor is monotone
    # decreasing in the front-run size, so binary search the boundary.
    low, high = 0, max(1, max_frontrun)
    while low < high:
        mid = (low + high + 1) // 2
        victim_out, _ = victim_out_with_frontrun(mid)
        if victim_out >= victim_min_out:
            low = mid
        else:
            high = mid - 1
    if low == 0:
        return None

    # Profit is unimodal in the front-run size: extraction grows with the
    # price push, but the attacker pays LP fees on their own round trip.
    # Ternary search the interior optimum within the feasible range.
    def profit(frontrun: int) -> int:
        plan = full_plan(frontrun)
        return plan.expected_profit if plan else -(10**30)

    lo, hi = 1, low
    while hi - lo > 2:
        third = (hi - lo) // 3
        m1, m2 = lo + third, hi - third
        if profit(m1) < profit(m2):
            lo = m1 + 1
        else:
            hi = m2 - 1
    best = max(range(lo, hi + 1), key=profit)
    plan = full_plan(best)
    if plan is None or plan.expected_profit <= 0:
        return None
    return plan


class SandwichAttacker(Behavior):
    """Claims native victims and lands front-run/victim/back-run bundles."""

    name = "sandwich-attacker"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        retail: RetailTrader,
        config: SandwichConfig | None = None,
    ) -> None:
        super().__init__(ctx, rng)
        self.config = config or SandwichConfig()
        self.retail = retail
        self.wallets = WalletPool(ctx.bank, "attacker-wallet", self.config.num_wallets)
        self.attacks_skipped = 0

    # --- helpers --------------------------------------------------------------

    def _reserves(self, pool: PoolSpec, mint_in: Pubkey) -> tuple[int, int]:
        bank = self.ctx.bank
        mint_out = pool.other_mint(mint_in)
        return (
            bank.token_balance(pool.address, mint_in),
            bank.token_balance(pool.address, mint_out.address),
        )

    def _tip_for_profit(self, profit_lamport_equiv: int) -> int:
        fraction = self.rng.uniform(
            self.config.tip_profit_fraction_low,
            self.config.tip_profit_fraction_high,
        )
        return max(int(profit_lamport_equiv * fraction), MIN_JITO_TIP_LAMPORTS)

    def _value_in_lamports(self, pool: PoolSpec, mint: Pubkey, amount: int) -> int:
        """Value an amount of ``mint`` in lamports, via pool spot rates.

        The attacker's planning currency is whatever the victim pays with —
        SOL, USDC, or (for sell-direction victims) the memecoin itself — so
        profits must be normalized before thresholding and tip sizing.
        """
        market = self.ctx.market
        if mint == SOL_MINT.address:
            return amount  # wrapped SOL has 9 decimals: 1 unit == 1 lamport
        if mint == market.usdc.address:
            usd = amount / 10**market.usdc.decimals
            return self.ctx.oracle.usd_to_lamports(usd)
        # A memecoin: convert into the pool's quote side first.
        quote_mint = pool.other_mint(mint)
        rate = market.spot_rate(pool, quote_mint.address)
        return self._value_in_lamports(pool, quote_mint.address, int(amount * rate))

    # --- the attack --------------------------------------------------------------

    def generate(self) -> GeneratedBundle | None:
        """Create a victim, claim it from the mempool, and sandwich it.

        Returns None (and lets the victim trade natively) whenever the attack
        is infeasible or unprofitable — mirroring a rational searcher.
        """
        ctx = self.ctx
        config = self.config
        pool_kind = "token" if self.rng.bernoulli(config.non_sol_fraction) else "sol"
        victim = self.retail.build_and_submit_order(pool_kind=pool_kind)

        claimed = ctx.relayer.mempool.claim(victim.transaction.transaction_id)
        if claimed is None:
            self.attacks_skipped += 1
            return None
        return self.attack_claimed_transaction(
            claimed, victim_slippage_bps=victim.slippage_bps
        )

    def attack_claimed_transaction(
        self,
        claimed: Transaction,
        victim_slippage_bps: int | None = None,
    ) -> GeneratedBundle | None:
        """Sandwich an already-claimed pending transaction.

        The searcher-side core: parse the victim's swap, solve the optimal
        front-run against live reserves, check profitability, build and
        submit the bundle. On any skip the victim is returned to native
        flow. This is all an attacker needs once it can *see* a pending
        transaction — which is the paper's point about mempool exposure.
        """
        ctx = self.ctx
        config = self.config

        payload = parse_swap_payload(claimed)
        if payload is None:
            ctx.searcher.send_transaction(claimed)
            self.attacks_skipped += 1
            return None

        try:
            pool = ctx.market.registry.get(Pubkey.from_base58(payload["pool"]))
        except PoolNotFoundError:
            ctx.searcher.send_transaction(claimed)
            self.attacks_skipped += 1
            return None
        mint_in = Pubkey.from_base58(payload["mint_in"])
        reserve_in, reserve_out = self._reserves(pool, mint_in)
        plan = plan_frontrun(
            reserve_in=reserve_in,
            reserve_out=reserve_out,
            fee_bps=pool.fee_bps,
            victim_amount_in=int(payload["amount_in"]),
            victim_min_out=int(payload["min_amount_out"]),
            max_frontrun=int(reserve_in * config.max_frontrun_reserve_fraction),
        )
        profit = plan.expected_profit if plan else 0
        profit_lamports = (
            self._value_in_lamports(pool, mint_in, profit) if plan else 0
        )
        if plan is None or profit_lamports < config.min_profit_lamports:
            ctx.searcher.send_transaction(claimed)
            self.attacks_skipped += 1
            return None

        wallet = self.wallets.pick(self.rng)
        mint_out = pool.other_mint(mint_in)
        tip = self._tip_for_profit(profit_lamports)

        sell_amount = plan.frontrun_out
        sold_extra = False
        if self.rng.bernoulli(config.sell_extra_probability):
            # Inventory dump sized to the opportunity: tokens worth roughly
            # 0.5x-2.5x the expected extraction, valued at the attacker's
            # own front-run rate.
            extra_quote = profit * self.rng.uniform(
                config.sell_extra_value_low, config.sell_extra_value_high
            )
            token_per_quote = plan.frontrun_out / plan.frontrun_in
            extra = int(extra_quote * token_per_quote)
            if extra > 0:
                sell_amount += extra
                sold_extra = True
        if self.rng.bernoulli(config.botched_backrun_probability):
            # A stale-state bot occasionally tries to sell tokens it will not
            # have; the bundle fails on-chain and is dropped risk-free.
            sell_amount = plan.frontrun_out * 3

        self.wallets.ensure_lamports(wallet, tip + 1_000_000)
        self.wallets.ensure_tokens(wallet, mint_in, plan.frontrun_in)
        if sold_extra:
            self.wallets.ensure_tokens(
                wallet, mint_out.address, sell_amount - plan.frontrun_out
            )

        frontrun_tx = Transaction.build(
            wallet,
            [
                swap_instruction(
                    wallet.pubkey, pool, mint_in, plan.frontrun_in, min_amount_out=0
                )
            ],
        )
        backrun_tx = Transaction.build(
            wallet,
            [
                swap_instruction(
                    wallet.pubkey, pool, mint_out.address, sell_amount, min_amount_out=0
                ),
                build_tip_instruction(
                    wallet.pubkey, tip, account_index=self.rng.randint(0, 7)
                ),
            ],
        )

        bundle_id = ctx.searcher.send_bundle([frontrun_tx, claimed, backrun_tx])
        contested = self.rng.bernoulli(config.contested_probability)
        private = config.private_channel_fraction > 0 and self.rng.bernoulli(
            config.private_channel_fraction
        )
        victim_wallet = claimed.message.fee_payer.to_base58()
        generated = ctx.record(
            bundle_id,
            Label.SANDWICH,
            length=3,
            tip_lamports=tip,
            victim_tx_id=claimed.transaction_id,
            attacker=wallet.pubkey.to_base58(),
            victim=victim_wallet,
            pool=pool.address.to_base58(),
            pair=pool.pair_name,
            involves_sol=pool.has_mint(SOL_MINT.address),
            expected_profit_quote_units=profit,
            expected_profit_lamports=profit_lamports,
            victim_slippage_bps=victim_slippage_bps,
            sold_extra=sold_extra,
            contested=contested,
            channel="private" if private else "public",
        )
        if contested:
            self._submit_rival(
                primary=generated,
                claimed=claimed,
                pool=pool,
                mint_in=mint_in,
                plan=plan,
                profit=profit,
                profit_lamports=profit_lamports,
                victim_wallet=victim_wallet,
                excluding=wallet,
            )
        return generated

    def _submit_rival(
        self,
        primary: GeneratedBundle,
        claimed: Transaction,
        pool: PoolSpec,
        mint_in: Pubkey,
        plan: FrontrunPlan,
        profit: int,
        profit_lamports: int,
        victim_wallet: str,
        excluding,
    ) -> GeneratedBundle:
        """A rival searcher sandwiches the same victim with its own tip bid.

        Both bundles contain the victim transaction; the block engine's
        tip-ordered auction lands one and drops the other via replay
        protection — the outbidding mechanism the paper infers from the
        attack bundles' extreme tips. Rivals see the same pool state, so
        their plans coincide; only the tip bid differs.
        """
        ctx = self.ctx
        rival = self.wallets.pick(self.rng)
        while rival.pubkey == excluding.pubkey and len(self.wallets) > 1:
            rival = self.wallets.pick(self.rng)
        rival_tip = self._tip_for_profit(profit_lamports)
        mint_out = pool.other_mint(mint_in)
        self.wallets.ensure_lamports(rival, rival_tip + 1_000_000)
        self.wallets.ensure_tokens(rival, mint_in, plan.frontrun_in)
        frontrun_tx = Transaction.build(
            rival,
            [
                swap_instruction(
                    rival.pubkey, pool, mint_in, plan.frontrun_in, min_amount_out=0
                )
            ],
        )
        backrun_tx = Transaction.build(
            rival,
            [
                swap_instruction(
                    rival.pubkey,
                    pool,
                    mint_out.address,
                    plan.frontrun_out,
                    min_amount_out=0,
                ),
                build_tip_instruction(
                    rival.pubkey, rival_tip, account_index=self.rng.randint(0, 7)
                ),
            ],
        )
        bundle_id = ctx.searcher.send_bundle([frontrun_tx, claimed, backrun_tx])
        return ctx.record(
            bundle_id,
            Label.SANDWICH,
            length=3,
            tip_lamports=rival_tip,
            victim_tx_id=claimed.transaction_id,
            attacker=rival.pubkey.to_base58(),
            victim=victim_wallet,
            pool=pool.address.to_base58(),
            pair=pool.pair_name,
            involves_sol=pool.has_mint(SOL_MINT.address),
            expected_profit_quote_units=profit,
            contested=True,
            rival_of=primary.bundle_id,
        )
