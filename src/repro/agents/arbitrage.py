"""Arbitrage-style searchers: multi-swap bundles of lengths two to five.

These populate the non-sandwich bundle-length mix of Figure 1 and provide
length-three bundles that are *not* sandwiches (all legs signed by the same
searcher), exercising the detector's first criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import AgentContext, Behavior, GeneratedBundle, Label, WalletPool
from repro.dex.swap import swap_instruction
from repro.jito.tips import build_tip_instruction
from repro.solana.tokens import SOL_MINT
from repro.solana.transaction import Transaction
from repro.utils.distributions import clipped_lognormal, weighted_choice
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class ArbitrageConfig:
    """Shape of arbitrage bundles."""

    num_wallets: int = 40
    median_tip_lamports: float = 50_000.0
    tip_sigma: float = 1.5
    max_tip_lamports: int = 5_000_000
    median_trade_sol: float = 1.0
    trade_sigma: float = 0.9
    # Relative frequency of bundle lengths 2/3/4/5 among arb bundles.
    length_weights: tuple[float, float, float, float] = (0.65, 0.02, 0.20, 0.13)


class ArbitrageBot(Behavior):
    """Submits round-trip swap bundles across the market's pools."""

    name = "arbitrage"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        config: ArbitrageConfig | None = None,
    ) -> None:
        super().__init__(ctx, rng)
        self.config = config or ArbitrageConfig()
        self.wallets = WalletPool(ctx.bank, "arb-wallet", self.config.num_wallets)

    def sample_tip(self) -> int:
        """An arb tip: wide lognormal, occasionally competitive."""
        return int(
            clipped_lognormal(
                self.rng,
                self.config.median_tip_lamports,
                self.config.tip_sigma,
                1_000,
                self.config.max_tip_lamports,
            )
        )

    def _swap_tx(
        self, wallet, pool, mint_in, amount_in: int, tip: int | None = None
    ) -> Transaction:
        instructions = [
            swap_instruction(wallet.pubkey, pool, mint_in, amount_in, 0)
        ]
        if tip is not None:
            instructions.append(
                build_tip_instruction(
                    wallet.pubkey, tip, account_index=self.rng.randint(0, 7)
                )
            )
        return Transaction.build(wallet, instructions)

    def generate(self) -> GeneratedBundle | None:
        """Submit one multi-leg bundle of length 2-5."""
        ctx = self.ctx
        config = self.config
        wallet = self.wallets.pick(self.rng)
        length = weighted_choice(self.rng, [2, 3, 4, 5], list(config.length_weights))
        tip = self.sample_tip()

        pools = [
            ctx.market.random_sol_pool(self.rng) for _ in range(length)
        ]
        amount_sol = SOL_MINT.to_base_units(
            clipped_lognormal(
                self.rng,
                config.median_trade_sol,
                config.trade_sigma,
                0.05,
                50.0,
            )
        )
        self.wallets.ensure_lamports(wallet, tip + 2_000_000)

        transactions: list[Transaction] = []
        # Legs alternate buy/sell across pools; each leg is funded so the
        # bundle cannot fail on balance (arb bots track their inventory).
        for index in range(length - 1):
            pool = pools[index]
            token = pool.other_mint(SOL_MINT.address)
            if index % 2 == 0:
                mint_in = SOL_MINT.address
                amount_in = amount_sol
            else:
                mint_in = token.address
                rate = ctx.market.spot_rate(pool, SOL_MINT.address)
                amount_in = max(int(amount_sol / rate) if rate > 0 else 1, 1)
            self.wallets.ensure_tokens(wallet, mint_in, amount_in)
            transactions.append(self._swap_tx(wallet, pool, mint_in, amount_in))

        # Final transaction: a closing swap carrying the tip.
        final_pool = pools[-1]
        final_token = final_pool.other_mint(SOL_MINT.address)
        rate = ctx.market.spot_rate(final_pool, SOL_MINT.address)
        final_amount = max(int(amount_sol / rate) if rate > 0 else 1, 1)
        self.wallets.ensure_tokens(wallet, final_token.address, final_amount)
        transactions.append(
            self._swap_tx(
                wallet, final_pool, final_token.address, final_amount, tip=tip
            )
        )

        bundle_id = ctx.searcher.send_bundle(transactions)
        return ctx.record(
            bundle_id,
            Label.ARBITRAGE,
            length=length,
            tip_lamports=tip,
            wallet=wallet.pubkey.to_base58(),
        )
