"""Agent-based workload generation.

Each behaviour class models one population the paper observes (or infers):

- :class:`~repro.agents.retail.RetailTrader` — native swaps, the victim pool
- :class:`~repro.agents.defensive.DefensiveUser` — length-1 bundles with
  sub-100K-lamport tips (Jupiter-style "MEV protection")
- :class:`~repro.agents.priority.PriorityUser` — length-1 bundles with large
  tips, bundling purely for placement
- :class:`~repro.agents.arbitrage.ArbitrageBot` — short multi-swap bundles
- :class:`~repro.agents.app_backend.AppBackendBundler` — app bundles ending
  in a tip-only transaction (the paper's criterion-5 exclusion)
- :class:`~repro.agents.attacker.SandwichAttacker` — claims victims from the
  private mempool and lands front-run/victim/back-run bundles
- :class:`~repro.agents.disguised.DisguisedAttacker` — 4-transaction
  sandwiches the paper's methodology knowingly misses (lower-bound check)
"""

from repro.agents.base import (
    AgentContext,
    Behavior,
    GeneratedBundle,
    GroundTruth,
    Label,
    WalletPool,
)
from repro.agents.app_backend import AppBackendBundler
from repro.agents.arbitrage import ArbitrageBot
from repro.agents.attacker import SandwichAttacker
from repro.agents.defensive import DefensiveUser
from repro.agents.disguised import DisguisedAttacker
from repro.agents.population import Population, PopulationConfig
from repro.agents.priority import PriorityUser
from repro.agents.retail import RetailTrader

__all__ = [
    "AgentContext",
    "AppBackendBundler",
    "ArbitrageBot",
    "Behavior",
    "DefensiveUser",
    "DisguisedAttacker",
    "GeneratedBundle",
    "GroundTruth",
    "Label",
    "Population",
    "PopulationConfig",
    "PriorityUser",
    "RetailTrader",
    "SandwichAttacker",
    "WalletPool",
]
