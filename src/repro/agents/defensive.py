"""Defensive users: MEV protection via length-one bundles.

Models what the paper found experimentally with Jupiter's "MEV protection"
option: the user's swap is issued inside a Jito bundle of length one, so it
cannot be included in an attacker's bundle (bundles cannot nest). The tips
are tiny — at or below 100,000 lamports, too small to buy meaningful
priority — which is the signature the classifier keys on (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import (
    AgentContext,
    Behavior,
    GeneratedBundle,
    Label,
    WalletPool,
    build_random_swap_instruction,
)
from repro.constants import DEFENSIVE_TIP_THRESHOLD_LAMPORTS, MIN_JITO_TIP_LAMPORTS
from repro.jito.tips import build_tip_instruction
from repro.solana.tokens import SOL_MINT
from repro.solana.transaction import Transaction
from repro.utils.distributions import clipped_lognormal
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class DefensiveConfig:
    """Tip and trade distributions for MEV-protection users.

    Calibrated so the mean defensive tip lands near the paper's $0.0028
    (~11,600 lamports at $242/SOL) while the median stays a few thousand
    lamports and everything respects the 100,000-lamport ceiling.
    """

    num_wallets: int = 300
    median_tip_lamports: float = 6_500.0
    tip_sigma: float = 1.1
    max_tip_lamports: int = DEFENSIVE_TIP_THRESHOLD_LAMPORTS
    median_trade_sol: float = 1.0
    trade_sigma: float = 1.0


class DefensiveUser(Behavior):
    """Issues single-transaction Jito bundles purely for MEV protection."""

    name = "defensive"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        config: DefensiveConfig | None = None,
    ) -> None:
        super().__init__(ctx, rng)
        self.config = config or DefensiveConfig()
        self.wallets = WalletPool(
            ctx.bank, "defensive-wallet", self.config.num_wallets
        )

    def sample_tip(self) -> int:
        """A defensive tip: clipped lognormal under the 100K ceiling."""
        return int(
            clipped_lognormal(
                self.rng,
                self.config.median_tip_lamports,
                self.config.tip_sigma,
                MIN_JITO_TIP_LAMPORTS,
                self.config.max_tip_lamports,
            )
        )

    def generate(self) -> GeneratedBundle | None:
        """Submit one protected swap as a length-one bundle."""
        ctx = self.ctx
        wallet = self.wallets.pick(self.rng)
        amount_in = SOL_MINT.to_base_units(
            clipped_lognormal(
                self.rng,
                self.config.median_trade_sol,
                self.config.trade_sigma,
                0.01,
                100.0,
            )
        )
        swap_ix, quote = build_random_swap_instruction(
            ctx, self.wallets, wallet, self.rng, amount_in, slippage_bps=300
        )
        tip = self.sample_tip()
        self.wallets.ensure_lamports(wallet, tip + 1_000_000)
        tx = Transaction.build(
            wallet,
            [
                swap_ix,
                build_tip_instruction(
                    wallet.pubkey, tip, account_index=self.rng.randint(0, 7)
                ),
            ],
        )
        bundle_id = ctx.searcher.send_bundle([tx])
        return ctx.record(
            bundle_id,
            Label.DEFENSIVE,
            length=1,
            tip_lamports=tip,
            wallet=wallet.pubkey.to_base58(),
            pair=quote.pool.pair_name,
        )
