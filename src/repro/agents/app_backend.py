"""Trading-app backends: bundles whose final transaction only tips.

The paper's fifth criterion exists because of this population: apps that
"implement Jito in the backend and simply add on a final transaction to a
bundle originally length 2 to tip out the Jito validator" (footnote 4).
These are the bulk of length-three bundles, and their near-minimum tips are
why the median length-three tip in Figure 4 sits at 1,000 lamports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import (
    AgentContext,
    Behavior,
    GeneratedBundle,
    Label,
    WalletPool,
    build_random_swap_instruction,
)
from repro.constants import MIN_JITO_TIP_LAMPORTS
from repro.jito.tips import build_tip_instruction
from repro.solana.tokens import SOL_MINT
from repro.solana.transaction import Transaction
from repro.utils.distributions import clipped_lognormal
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class AppBackendConfig:
    """Tip and user-trade distributions for app-issued bundles."""

    num_user_wallets: int = 200
    num_backend_wallets: int = 5
    median_tip_lamports: float = 1_100.0
    tip_sigma: float = 0.6
    max_tip_lamports: int = 30_000
    median_trade_sol: float = 0.8
    trade_sigma: float = 1.0
    # Fraction of app bundles where both user swaps come from one wallet.
    same_user_fraction: float = 0.5


class AppBackendBundler(Behavior):
    """Bundles two user swaps plus a backend tip-only transaction."""

    name = "app-backend"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        config: AppBackendConfig | None = None,
    ) -> None:
        super().__init__(ctx, rng)
        self.config = config or AppBackendConfig()
        self.users = WalletPool(ctx.bank, "app-user", self.config.num_user_wallets)
        self.backends = WalletPool(
            ctx.bank, "app-backend", self.config.num_backend_wallets
        )

    def sample_tip(self) -> int:
        """Near-minimum tips: the app pays just enough to land the bundle."""
        return int(
            clipped_lognormal(
                self.rng,
                self.config.median_tip_lamports,
                self.config.tip_sigma,
                MIN_JITO_TIP_LAMPORTS,
                self.config.max_tip_lamports,
            )
        )

    def _user_swap(self, wallet) -> Transaction:
        amount_in = SOL_MINT.to_base_units(
            clipped_lognormal(
                self.rng,
                self.config.median_trade_sol,
                self.config.trade_sigma,
                0.01,
                50.0,
            )
        )
        swap_ix, _quote = build_random_swap_instruction(
            self.ctx, self.users, wallet, self.rng, amount_in, slippage_bps=300
        )
        return Transaction.build(wallet, [swap_ix])

    def generate(self) -> GeneratedBundle | None:
        """Submit one [swap, swap, tip-only] bundle."""
        ctx = self.ctx
        if self.rng.bernoulli(self.config.same_user_fraction):
            user_a = self.users.pick(self.rng)
            user_b = user_a
        else:
            user_a, user_b = self.users.pick_two_distinct(self.rng)
        backend = self.backends.pick(self.rng)
        tip = self.sample_tip()
        self.backends.ensure_lamports(backend, tip + 1_000_000)

        tip_tx = Transaction.build(
            backend,
            [
                build_tip_instruction(
                    backend.pubkey, tip, account_index=self.rng.randint(0, 7)
                )
            ],
        )
        bundle_id = ctx.searcher.send_bundle(
            [self._user_swap(user_a), self._user_swap(user_b), tip_tx]
        )
        return ctx.record(
            bundle_id,
            Label.APP_BUNDLE,
            length=3,
            tip_lamports=tip,
            backend=backend.pubkey.to_base58(),
        )
