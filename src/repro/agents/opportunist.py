"""The opportunistic attacker: the public-mempool era.

Until March 2024 Jito operated a *public* mempool that "opened up MEV
opportunities for users without access to their own validator node or
private mempool source" (paper Section 2.3). This behaviour models that
world: instead of being fed victims by a private deal-flow channel, the
attacker scans every pending transaction it can see and sandwiches each one
that clears its profit floor.

Comparing campaigns with this attacker against the calibrated private-era
attacker quantifies what closing the public mempool changed — and what it
could not change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.attacker import SandwichAttacker, SandwichConfig
from repro.agents.base import AgentContext, GeneratedBundle
from repro.agents.retail import RetailTrader
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class OpportunistConfig:
    """Scanning behaviour of the public-mempool attacker."""

    max_attacks_per_scan: int = 25


class OpportunisticAttacker(SandwichAttacker):
    """Scans the visible mempool and attacks everything profitable."""

    name = "opportunistic-attacker"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        retail: RetailTrader,
        config: SandwichConfig | None = None,
        opportunist: OpportunistConfig | None = None,
    ) -> None:
        super().__init__(ctx, rng, retail, config)
        self.opportunist = opportunist or OpportunistConfig()
        self.scans = 0
        self.attacks_made = 0

    def generate(self) -> GeneratedBundle | None:
        """Sweep the mempool once; attack every profitable pending swap.

        Returns the last attack's record (the engine counts activations,
        the ground truth records every attack individually).
        """
        self.scans += 1
        mempool = self.ctx.relayer.mempool
        last: GeneratedBundle | None = None
        attacked = 0
        for pending in mempool.peek_all():
            if attacked >= self.opportunist.max_attacks_per_scan:
                break
            claimed = mempool.claim(pending.transaction.transaction_id)
            if claimed is None:
                continue
            record = self.attack_claimed_transaction(claimed)
            if record is None:
                continue  # returned to native flow by the attack core
            attacked += 1
            self.attacks_made += 1
            last = record
        return last
