"""Disguised sandwich attackers: four-transaction sandwiches.

The paper acknowledges its counts are a lower bound because an attacker can
"disguise their intent, such as adding on a fourth unrelated transaction"
(Section 3.2) — and the methodology only fetches transaction details for
length-three bundles. This behaviour generates exactly that evasion so the
reproduction can *measure* the lower-bound gap instead of asserting it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.attacker import SandwichAttacker
from repro.agents.base import AgentContext, GeneratedBundle, Label
from repro.agents.retail import RetailTrader
from repro.dex.swap import swap_instruction
from repro.jito.bundle import Bundle
from repro.solana.keys import Pubkey
from repro.solana.tokens import SOL_MINT
from repro.solana.transaction import Transaction
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class DisguiseConfig:
    """Size of the decoy swap appended to the sandwich."""

    decoy_trade_sol: float = 0.05


class DisguisedAttacker(SandwichAttacker):
    """A sandwich attacker that pads bundles to length four."""

    name = "disguised-attacker"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        retail: RetailTrader,
        disguise: DisguiseConfig | None = None,
        **kwargs,
    ) -> None:
        super().__init__(ctx, rng, retail, **kwargs)
        self.disguise = disguise or DisguiseConfig()

    def generate(self) -> GeneratedBundle | None:
        """Run the normal sandwich, then repackage it with a decoy leg."""
        generated = super().generate()
        if generated is None:
            return None

        # The parent recorded and submitted a 3-tx bundle; replace it with a
        # 4-tx version by appending an unrelated small swap from the same
        # attacker wallet. We rebuild rather than mutate: bundles are frozen.
        queued = self.ctx.relayer.take_bundles()
        target_index = next(
            (
                index
                for index, (bundle, _) in enumerate(queued)
                if bundle.bundle_id == generated.bundle_id
            ),
            None,
        )
        if target_index is None:  # pragma: no cover - defensive
            for bundle, when in queued:
                self.ctx.relayer.submit_bundle(bundle, when)
            return generated

        bundle, submitted_at = queued.pop(target_index)
        for other, when in queued:
            self.ctx.relayer.submit_bundle(other, when)

        attacker_key = bundle.transactions[0].message.fee_payer
        wallet = self.wallets.find(attacker_key)
        decoy_pool = self.ctx.market.random_sol_pool(self.rng)
        decoy_amount = SOL_MINT.to_base_units(self.disguise.decoy_trade_sol)
        self.wallets.ensure_tokens(wallet, SOL_MINT.address, decoy_amount)
        decoy_tx = Transaction.build(
            wallet,
            [
                swap_instruction(
                    wallet.pubkey,
                    decoy_pool,
                    SOL_MINT.address,
                    decoy_amount,
                    min_amount_out=0,
                )
            ],
        )
        disguised = Bundle(transactions=bundle.transactions + (decoy_tx,))
        self.ctx.relayer.submit_bundle(disguised, submitted_at)
        self.ctx.ground_truth.remove(generated.bundle_id)
        return self.ctx.record(
            disguised.bundle_id,
            Label.DISGUISED_SANDWICH,
            length=4,
            tip_lamports=generated.tip_lamports,
            original_bundle_id=generated.bundle_id,
            **{
                key: value
                for key, value in generated.metadata.items()
            },
        )
