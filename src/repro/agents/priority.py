"""Priority users: length-one bundles with tips large enough to matter.

The other reason to bundle a single transaction (paper Section 3.3): paying
a meaningful Jito tip for placement. These users tip strictly above the
100,000-lamport defensive threshold, forming the upper ~14% of the
length-one tip distribution in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import (
    AgentContext,
    Behavior,
    GeneratedBundle,
    Label,
    WalletPool,
    build_random_swap_instruction,
)
from repro.constants import DEFENSIVE_TIP_THRESHOLD_LAMPORTS
from repro.jito.tips import build_tip_instruction
from repro.solana.tokens import SOL_MINT
from repro.solana.transaction import Transaction
from repro.utils.distributions import clipped_lognormal
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class PriorityConfig:
    """Tip distribution for priority-seeking bundlers."""

    num_wallets: int = 100
    median_tip_lamports: float = 400_000.0
    tip_sigma: float = 1.2
    max_tip_lamports: int = 50_000_000
    median_trade_sol: float = 5.0
    trade_sigma: float = 1.0


class PriorityUser(Behavior):
    """Bundles a single transaction with a large tip for fast placement."""

    name = "priority"

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        config: PriorityConfig | None = None,
    ) -> None:
        super().__init__(ctx, rng)
        self.config = config or PriorityConfig()
        self.wallets = WalletPool(ctx.bank, "priority-wallet", self.config.num_wallets)

    def sample_tip(self) -> int:
        """A priority tip: strictly above the defensive threshold."""
        return int(
            clipped_lognormal(
                self.rng,
                self.config.median_tip_lamports,
                self.config.tip_sigma,
                DEFENSIVE_TIP_THRESHOLD_LAMPORTS + 1,
                self.config.max_tip_lamports,
            )
        )

    def generate(self) -> GeneratedBundle | None:
        """Submit one high-tip length-one bundle."""
        ctx = self.ctx
        wallet = self.wallets.pick(self.rng)
        amount_in = SOL_MINT.to_base_units(
            clipped_lognormal(
                self.rng,
                self.config.median_trade_sol,
                self.config.trade_sigma,
                0.1,
                500.0,
            )
        )
        swap_ix, quote = build_random_swap_instruction(
            ctx, self.wallets, wallet, self.rng, amount_in, slippage_bps=300
        )
        tip = self.sample_tip()
        self.wallets.ensure_lamports(wallet, tip + 1_000_000)
        tx = Transaction.build(
            wallet,
            [
                swap_ix,
                build_tip_instruction(
                    wallet.pubkey, tip, account_index=self.rng.randint(0, 7)
                ),
            ],
        )
        bundle_id = ctx.searcher.send_bundle([tx])
        return ctx.record(
            bundle_id,
            Label.PRIORITY,
            length=1,
            tip_lamports=tip,
            wallet=wallet.pubkey.to_base58(),
            pair=quote.pool.pair_name,
        )
