"""Population assembly: every behaviour wired to a shared context."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.app_backend import AppBackendBundler, AppBackendConfig
from repro.agents.arbitrage import ArbitrageBot, ArbitrageConfig
from repro.agents.attacker import SandwichAttacker, SandwichConfig
from repro.agents.base import AgentContext, Behavior, Label
from repro.agents.defensive import DefensiveUser, DefensiveConfig
from repro.agents.disguised import DisguisedAttacker, DisguiseConfig
from repro.agents.opportunist import OpportunisticAttacker, OpportunistConfig
from repro.agents.priority import PriorityUser, PriorityConfig
from repro.agents.retail import RetailTrader, RetailConfig
from repro.utils.rng import DeterministicRNG


@dataclass(frozen=True)
class PopulationConfig:
    """Per-class behaviour configuration."""

    retail: RetailConfig = field(default_factory=RetailConfig)
    defensive: DefensiveConfig = field(default_factory=DefensiveConfig)
    priority: PriorityConfig = field(default_factory=PriorityConfig)
    arbitrage: ArbitrageConfig = field(default_factory=ArbitrageConfig)
    app_backend: AppBackendConfig = field(default_factory=AppBackendConfig)
    sandwich: SandwichConfig = field(default_factory=SandwichConfig)
    disguise: DisguiseConfig = field(default_factory=DisguiseConfig)
    opportunist: OpportunistConfig = field(default_factory=OpportunistConfig)


class Population:
    """All behaviour instances sharing one agent context."""

    def __init__(
        self,
        ctx: AgentContext,
        rng: DeterministicRNG,
        config: PopulationConfig | None = None,
    ) -> None:
        config = config or PopulationConfig()
        self.config = config
        agent_rng = rng.child("population")
        self.retail = RetailTrader(ctx, agent_rng, config.retail)
        self.defensive = DefensiveUser(ctx, agent_rng, config.defensive)
        self.priority = PriorityUser(ctx, agent_rng, config.priority)
        self.arbitrage = ArbitrageBot(ctx, agent_rng, config.arbitrage)
        self.app_backend = AppBackendBundler(ctx, agent_rng, config.app_backend)
        self.attacker = SandwichAttacker(
            ctx, agent_rng, self.retail, config.sandwich
        )
        self.disguised = DisguisedAttacker(
            ctx,
            agent_rng.child("disguised"),
            self.retail,
            disguise=config.disguise,
            config=config.sandwich,
        )
        self.opportunist = OpportunisticAttacker(
            ctx,
            agent_rng.child("opportunist"),
            self.retail,
            config=config.sandwich,
            opportunist=config.opportunist,
        )

    def behaviors(self) -> dict[str, Behavior]:
        """All behaviours by event-class name (the engine's schedule keys)."""
        return {
            "retail": self.retail,
            "defensive": self.defensive,
            "priority": self.priority,
            "arbitrage": self.arbitrage,
            "app_backend": self.app_backend,
            "sandwich": self.attacker,
            "disguised": self.disguised,
            "opportunist": self.opportunist,
        }

    @staticmethod
    def label_for_class(event_class: str) -> Label | None:
        """The ground-truth label an event class produces (None for retail)."""
        mapping = {
            "defensive": Label.DEFENSIVE,
            "priority": Label.PRIORITY,
            "arbitrage": Label.ARBITRAGE,
            "app_backend": Label.APP_BUNDLE,
            "sandwich": Label.SANDWICH,
            "disguised": Label.DISGUISED_SANDWICH,
        }
        return mapping.get(event_class)
