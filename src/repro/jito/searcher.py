"""Searcher-facing client, mirroring the shape of Jito's bundle API.

Agents use this facade rather than touching the relayer directly, so the
submission path in the simulation matches the interface a real searcher
programs against (``getTipAccounts`` / ``sendBundle``).
"""

from __future__ import annotations

from repro.jito.bundle import Bundle
from repro.jito.relayer import Relayer
from repro.jito.tips import tip_accounts
from repro.solana.keys import Pubkey
from repro.solana.transaction import Transaction
from repro.utils.simtime import SimClock


class SearcherClient:
    """Submit bundles and query tip accounts, as a Jito searcher would."""

    def __init__(self, relayer: Relayer, clock: SimClock, bank=None) -> None:
        self._relayer = relayer
        self._clock = clock
        self._bank = bank

    def get_tip_accounts(self) -> list[Pubkey]:
        """The canonical tip accounts a searcher may pay."""
        return list(tip_accounts())

    def send_bundle(self, transactions: list[Transaction]) -> str:
        """Bundle up to five transactions and submit them; returns bundleId."""
        bundle = Bundle(transactions=tuple(transactions))
        return self._relayer.submit_bundle(bundle, self._clock.now())

    def send_transaction(self, tx: Transaction) -> None:
        """Submit a native (unbundled) transaction."""
        self._relayer.submit_transaction(tx, self._clock.now())

    def simulate_bundle(self, transactions: list[Transaction]) -> bool:
        """Dry-run a would-be bundle (Jito's ``simulateBundle``).

        Returns whether it would land atomically against current state.
        Requires the client to be wired to a bank; raises otherwise.
        """
        if self._bank is None:
            raise ValueError("searcher client has no bank to simulate against")
        bundle = Bundle(transactions=tuple(transactions))  # validates shape
        receipts = self._bank.simulate_atomic(bundle.transactions)
        return bool(receipts) and all(r.success for r in receipts)
