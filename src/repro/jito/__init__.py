"""Jito substrate: bundles, tips, the block engine, and searcher access.

Implements the validator-client extension the paper measures: searchers
submit bundles of up to five transactions that execute atomically, in order,
prioritized by a Jito tip paid to canonical tip accounts. The final ledger
retains no trace of bundling — bundle structure exists only in the engine's
own records, served by :mod:`repro.explorer`.
"""

from repro.jito.block_engine import BlockEngine, BundleOutcome
from repro.jito.bundle import Bundle
from repro.jito.relayer import PrivateMempool, Relayer
from repro.jito.searcher import SearcherClient
from repro.jito.tip_distribution import (
    EpochDistribution,
    TipDistributor,
    ValidatorPayout,
)
from repro.jito.tips import (
    TipPercentileTracker,
    build_tip_instruction,
    extract_tip_lamports,
    is_tip_only_transaction,
    tip_accounts,
)

__all__ = [
    "BlockEngine",
    "Bundle",
    "BundleOutcome",
    "EpochDistribution",
    "PrivateMempool",
    "Relayer",
    "SearcherClient",
    "TipDistributor",
    "ValidatorPayout",
    "TipPercentileTracker",
    "build_tip_instruction",
    "extract_tip_lamports",
    "is_tip_only_transaction",
    "tip_accounts",
]
