"""Jito bundles: up to five transactions, atomic, in submission order."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.constants import MAX_BUNDLE_SIZE
from repro.errors import (
    BundleTooLargeError,
    DuplicateTransactionError,
    EmptyBundleError,
)
from repro.jito.tips import extract_tip_lamports
from repro.solana.transaction import Transaction


@dataclass(frozen=True)
class Bundle:
    """An ordered, atomic group of transactions submitted to Jito.

    Bundles carry their own identifier (the ``bundleId`` of the paper),
    distinct from the member ``transactionId``s, and — critically for the
    measurement methodology — the bundle id never reaches the Solana ledger.
    """

    transactions: tuple[Transaction, ...]
    bundle_id: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.transactions:
            raise EmptyBundleError("a bundle needs at least one transaction")
        if len(self.transactions) > MAX_BUNDLE_SIZE:
            raise BundleTooLargeError(
                f"bundles hold at most {MAX_BUNDLE_SIZE} transactions, "
                f"got {len(self.transactions)}"
            )
        tx_ids = [tx.transaction_id for tx in self.transactions]
        if len(set(tx_ids)) != len(tx_ids):
            raise DuplicateTransactionError(
                "a transaction appears twice in the bundle"
            )
        digest = hashlib.sha256()
        for tx_id in tx_ids:
            digest.update(tx_id.encode())
        object.__setattr__(self, "bundle_id", digest.hexdigest())

    @classmethod
    def of(cls, *transactions: Transaction) -> "Bundle":
        """Convenience constructor from positional transactions."""
        return cls(transactions=tuple(transactions))

    def __len__(self) -> int:
        return len(self.transactions)

    @property
    def transaction_ids(self) -> list[str]:
        """Member transaction ids, in bundle order."""
        return [tx.transaction_id for tx in self.transactions]

    @property
    def tip_lamports(self) -> int:
        """Total lamports the bundle pays to Jito tip accounts."""
        return sum(extract_tip_lamports(tx) for tx in self.transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bundle({self.bundle_id[:10]}, n={len(self)}, "
            f"tip={self.tip_lamports})"
        )
