"""The Jito block engine: bundle auction, atomic execution, block assembly.

Bundles are landed in tip order (highest first — tips are the auction
currency, which is why the paper finds sandwich bundles tipping three orders
of magnitude above ordinary bundles). A bundle whose member transaction
fails is dropped wholesale, nullifying the attacker's risk exactly as the
paper describes. The engine also keeps the bundle log — the only place
bundle structure survives, later served by the explorer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import SLOT_DURATION_MS
from repro.jito.bundle import Bundle
from repro.jito.relayer import Relayer
from repro.jito.tips import TipPercentileTracker
from repro.solana.bank import Bank
from repro.solana.blocks import Block, ExecutedTransaction
from repro.solana.leader_schedule import LeaderSchedule, Validator
from repro.solana.ledger import Ledger
from repro.utils.simtime import SimClock


@dataclass(frozen=True)
class BundleOutcome:
    """A landed bundle as recorded by Jito's own infrastructure.

    This mirrors the fields the paper could obtain from the Jito Explorer
    API: the bundleId, the member transactionIds, and the tip — but not the
    transactions' contents.
    """

    bundle_id: str
    slot: int
    landed_at: float
    tip_lamports: int
    transaction_ids: tuple[str, ...]
    submitted_at: float = 0.0

    @property
    def num_transactions(self) -> int:
        """Bundle length (1 to 5)."""
        return len(self.transaction_ids)

    @property
    def landing_latency(self) -> float:
        """Seconds from submission to landing (simulation ground truth;
        the real explorer does not expose submission times)."""
        return max(self.landed_at - self.submitted_at, 0.0)


@dataclass
class EngineStats:
    """Counters for engine behaviour across the run."""

    blocks_produced: int = 0
    bundles_landed: int = 0
    bundles_dropped: int = 0
    bundles_dropped_duplicate: int = 0
    native_landed: int = 0
    native_dropped: int = 0
    native_dropped_duplicate: int = 0
    bundles_deferred: int = 0
    landed_by_length: dict[int, int] = field(default_factory=dict)


class BlockEngine:
    """Produces blocks from queued bundles and native transactions."""

    def __init__(
        self,
        bank: Bank,
        ledger: Ledger,
        relayer: Relayer,
        schedule: LeaderSchedule,
        clock: SimClock,
    ) -> None:
        self._bank = bank
        self._ledger = ledger
        self._relayer = relayer
        self._schedule = schedule
        self._clock = clock
        self._bundle_log: list[BundleOutcome] = []
        self._bundle_index: dict[str, BundleOutcome] = {}
        self._tip_tracker = TipPercentileTracker()
        self.stats = EngineStats()

    @property
    def bundle_log(self) -> list[BundleOutcome]:
        """All landed bundles, in landing order (the explorer's source)."""
        return self._bundle_log

    @property
    def tip_tracker(self) -> TipPercentileTracker:
        """Per-block tip percentile statistics."""
        return self._tip_tracker

    def get_landed_bundle(self, bundle_id: str) -> BundleOutcome | None:
        """Look up one landed bundle by id (None if never landed)."""
        return self._bundle_index.get(bundle_id)

    def current_slot(self) -> int:
        """The slot implied by the simulated clock (strictly increasing)."""
        implied = int(self._clock.elapsed() * 1000 // SLOT_DURATION_MS)
        return max(implied, self._ledger.tip_slot + 1)

    def produce_block(self) -> Block:
        """Produce one block at the current slot.

        A Jito-running leader lands queued bundles in descending tip order,
        then native transactions; a non-Jito leader processes only native
        flow and leaves bundles queued for the next Jito leader.
        """
        slot = self.current_slot()
        leader = self._schedule.leader_for_slot(slot)
        self._bank.set_slot(slot)
        self._bank.set_fee_collector(leader.identity)
        timestamp = self._clock.now()
        block = Block(
            slot=slot,
            leader=leader.identity,
            parent_hash=self._ledger.tip_hash,
            unix_timestamp=timestamp,
        )

        if leader.runs_jito:
            self._land_bundles(block, timestamp)
        else:
            self.stats.bundles_deferred += self._relayer.pending_bundle_count()

        for tx in self._relayer.mempool.drain():
            if self._already_landed(tx.transaction_id, block):
                # Replay protection: a transaction lands exactly once. A
                # victim consumed by a sandwich bundle earlier in this very
                # block is the common case.
                self.stats.native_dropped_duplicate += 1
                continue
            receipt = self._bank.execute_transaction(tx)
            if receipt.success:
                block.transactions.append(ExecutedTransaction(tx, receipt))
                self.stats.native_landed += 1
            else:
                self.stats.native_dropped += 1

        self._ledger.append(block)
        self.stats.blocks_produced += 1
        return block

    def _already_landed(self, tx_id: str, block: Block) -> bool:
        if self._ledger.get_transaction(tx_id) is not None:
            return True
        return any(
            executed.receipt.transaction_id == tx_id
            for executed in block.transactions
        )

    def _land_bundles(self, block: Block, timestamp: float) -> None:
        queued = self._relayer.take_bundles()
        # Tip-ordered auction: highest tip lands first; ties by submit time.
        queued.sort(key=lambda item: (-item[0].tip_lamports, item[1]))
        landed_tips: list[int] = []
        block_tx_ids: set[str] = set()
        for bundle, submitted_at in queued:
            if any(
                tx_id in block_tx_ids
                or self._ledger.get_transaction(tx_id) is not None
                for tx_id in bundle.transaction_ids
            ):
                # Replay protection: the bundle contains a transaction that
                # already landed — e.g. a rival's sandwich claimed the same
                # victim and outbid this one. Dropped risk-free.
                self.stats.bundles_dropped_duplicate += 1
                continue
            receipts = self._bank.execute_atomic(bundle.transactions)
            if receipts and all(r.success for r in receipts):
                for tx, receipt in zip(bundle.transactions, receipts):
                    block.transactions.append(ExecutedTransaction(tx, receipt))
                outcome = BundleOutcome(
                    bundle_id=bundle.bundle_id,
                    slot=block.slot,
                    landed_at=timestamp,
                    tip_lamports=bundle.tip_lamports,
                    transaction_ids=tuple(bundle.transaction_ids),
                    submitted_at=submitted_at,
                )
                self._bundle_log.append(outcome)
                self._bundle_index[outcome.bundle_id] = outcome
                block_tx_ids.update(bundle.transaction_ids)
                landed_tips.append(bundle.tip_lamports)
                self.stats.bundles_landed += 1
                length = len(bundle)
                self.stats.landed_by_length[length] = (
                    self.stats.landed_by_length.get(length, 0) + 1
                )
            else:
                self.stats.bundles_dropped += 1
        self._tip_tracker.record_block(landed_tips)

    def land_bundle_directly(self, bundle: Bundle) -> list | None:
        """Execute a bundle immediately outside block production (tests).

        Returns the receipts on success, or None if the bundle failed and was
        rolled back.
        """
        receipts = self._bank.execute_atomic(bundle.transactions)
        if receipts and all(r.success for r in receipts):
            return receipts
        return None
