"""Jito tips: canonical tip accounts, tip construction and extraction,
and the block-level tip-percentile tracker.

Tips are plain lamport transfers to one of eight well-known accounts; the
block engine uses them as the bundle-auction currency, and the paper uses
them to separate defensive bundles (tip <= 100,000 lamports) from
priority-seeking ones, and to characterize attack bundles (median tip above
2,000,000 lamports).
"""

from __future__ import annotations

import json
from functools import lru_cache

from repro.constants import (
    HIGH_TIP_P95_LAMPORTS,
    MIN_JITO_TIP_LAMPORTS,
    NUM_JITO_TIP_ACCOUNTS,
)
from repro.errors import BundleError
from repro.solana.instruction import (
    COMPUTE_BUDGET_PROGRAM_ID,
    SYSTEM_PROGRAM_ID,
    Instruction,
)
from repro.solana.keys import Pubkey
from repro.solana.system_program import transfer
from repro.solana.transaction import Transaction
from repro.utils.stats import percentile


@lru_cache(maxsize=1)
def tip_accounts() -> tuple[Pubkey, ...]:
    """The eight canonical Jito tip-payment accounts."""
    return tuple(
        Pubkey.from_seed(f"jito-tip-account:{index}")
        for index in range(NUM_JITO_TIP_ACCOUNTS)
    )


@lru_cache(maxsize=1)
def _tip_account_set() -> frozenset[str]:
    return frozenset(account.to_base58() for account in tip_accounts())


def is_tip_account(pubkey: Pubkey | str) -> bool:
    """Whether ``pubkey`` is one of the canonical tip accounts."""
    encoded = pubkey if isinstance(pubkey, str) else pubkey.to_base58()
    return encoded in _tip_account_set()


def build_tip_instruction(
    payer: Pubkey, lamports: int, account_index: int = 0
) -> Instruction:
    """Build a tip transfer to tip account ``account_index``.

    Raises:
        BundleError: if the tip is below Jito's 1,000-lamport minimum.
    """
    if lamports < MIN_JITO_TIP_LAMPORTS:
        raise BundleError(
            f"Jito tip must be at least {MIN_JITO_TIP_LAMPORTS} lamports, "
            f"got {lamports}"
        )
    account = tip_accounts()[account_index % NUM_JITO_TIP_ACCOUNTS]
    return transfer(payer, account, lamports)


def _iter_system_transfers(tx: Transaction):
    for instruction in tx.message.instructions:
        if instruction.program_id != SYSTEM_PROGRAM_ID:
            continue
        try:
            payload = json.loads(instruction.data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        if payload.get("op") != "transfer" or len(instruction.accounts) != 2:
            continue
        yield instruction.accounts[1].pubkey, int(payload["lamports"])


def extract_tip_lamports(tx: Transaction) -> int:
    """Total lamports a transaction pays to Jito tip accounts."""
    return sum(
        lamports
        for dest, lamports in _iter_system_transfers(tx)
        if is_tip_account(dest)
    )


def is_tip_only_transaction(tx: Transaction) -> bool:
    """Whether a transaction does nothing but tip a Jito tip account.

    This is the pattern the paper's fifth criterion excludes: trading apps
    that implement Jito in the backend append a final tip-only transaction
    to an otherwise length-two bundle.
    """
    saw_tip = False
    for instruction in tx.message.instructions:
        if instruction.program_id == COMPUTE_BUDGET_PROGRAM_ID:
            continue
        if instruction.program_id != SYSTEM_PROGRAM_ID:
            return False
        try:
            payload = json.loads(instruction.data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            return False
        if payload.get("op") != "transfer" or len(instruction.accounts) != 2:
            return False
        if not is_tip_account(instruction.accounts[1].pubkey):
            return False
        saw_tip = True
    return saw_tip


class TipPercentileTracker:
    """Per-block tip percentiles — the simulator's "Jito dashboard".

    The paper reads the average 95th-percentile tip within a block from
    Jito's public dashboard (~0.002 SOL); this tracker computes the same
    statistic from the simulated stream.
    """

    def __init__(self) -> None:
        self._block_p95: list[float] = []

    def record_block(self, tips_lamports: list[int]) -> None:
        """Record the tips of all bundles landed in one block."""
        if tips_lamports:
            self._block_p95.append(percentile(sorted(tips_lamports), 95))

    @property
    def blocks_observed(self) -> int:
        """Number of blocks that landed at least one bundle."""
        return len(self._block_p95)

    def average_p95(self) -> float:
        """Mean of per-block 95th-percentile tips (lamports).

        Falls back to the paper's dashboard figure when no blocks carried
        bundles yet, so threshold logic stays well-defined at startup.
        """
        if not self._block_p95:
            return float(HIGH_TIP_P95_LAMPORTS)
        return sum(self._block_p95) / len(self._block_p95)

    def high_tip_threshold(self) -> float:
        """A "high tip" is anything above 50% of the average per-block p95
        (the latency study the paper cites uses this definition)."""
        return 0.5 * self.average_p95()
