"""Transaction relaying and the private mempool.

Solana's original design has no public mempool; after JitoLabs suspended its
public one in March 2024, sandwiching is understood to operate via *private*
validator-adjacent mempools (paper Sections 1 and 2.3). :class:`PrivateMempool`
models that channel: pending native transactions are visible to subscribed
searchers, who may *claim* a victim — pull it out of native flow and embed it
in their own bundle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jito.bundle import Bundle
from repro.solana.transaction import Transaction


@dataclass
class PendingTransaction:
    """A native transaction waiting for the next block."""

    transaction: Transaction
    submitted_at: float


class PrivateMempool:
    """Pending native transactions, observable by privileged searchers."""

    def __init__(self) -> None:
        self._pending: dict[str, PendingTransaction] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, tx: Transaction, when: float) -> None:
        """Queue a native transaction (idempotent per transaction id)."""
        self._pending.setdefault(
            tx.transaction_id, PendingTransaction(tx, when)
        )

    def peek_all(self) -> list[PendingTransaction]:
        """Searcher view: every pending transaction, oldest first."""
        return sorted(self._pending.values(), key=lambda p: p.submitted_at)

    def claim(self, tx_id: str) -> Transaction | None:
        """Atomically remove a transaction for inclusion in a bundle.

        Returns None if another searcher (or the block producer) got there
        first, so at most one sandwich can claim a given victim.
        """
        pending = self._pending.pop(tx_id, None)
        return pending.transaction if pending else None

    def drain(self) -> list[Transaction]:
        """Remove and return all pending transactions (block production)."""
        drained = [p.transaction for p in self.peek_all()]
        self._pending.clear()
        return drained


class Relayer:
    """Front door for submissions: native transactions and Jito bundles."""

    def __init__(self, mempool: PrivateMempool) -> None:
        self._mempool = mempool
        self._bundle_queue: list[tuple[Bundle, float]] = []
        self._bundles_submitted = 0

    @property
    def mempool(self) -> PrivateMempool:
        """The private mempool native submissions land in."""
        return self._mempool

    @property
    def bundles_submitted(self) -> int:
        """Total bundles ever submitted through this relayer."""
        return self._bundles_submitted

    def submit_transaction(self, tx: Transaction, when: float) -> None:
        """Submit a native (unbundled) transaction."""
        self._mempool.add(tx, when)

    def submit_bundle(self, bundle: Bundle, when: float) -> str:
        """Submit a bundle; returns its bundle id.

        Bundles cannot be nested — a bundle is an opaque unit here, which is
        precisely why defensively bundling one's own transaction prevents
        inclusion in an attacker's bundle (paper Section 3.3).
        """
        self._bundle_queue.append((bundle, when))
        self._bundles_submitted += 1
        return bundle.bundle_id

    def pending_bundle_count(self) -> int:
        """Bundles currently queued, waiting for a Jito leader."""
        return len(self._bundle_queue)

    def take_bundles(self) -> list[tuple[Bundle, float]]:
        """Hand queued bundles to the block engine (clears the queue)."""
        taken = self._bundle_queue
        self._bundle_queue = []
        return taken
