"""Epochal tip distribution: how Jito tips become MEV rewards.

The paper notes Jito "provided reward incentives to validators that ran
their client (called Jito tips)" and that daily tip revenue has only grown.
On mainnet, tips accumulate in the canonical tip accounts and are swept each
epoch by Jito's tip-distribution program: the slot leader's share goes to
the validator, which takes a commission and passes the remainder to its
stakers. This module implements that sweep so tip revenue has a destination
and validator MEV economics can be analyzed end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.solana.bank import Bank
from repro.solana.keys import Pubkey
from repro.solana.leader_schedule import Validator
from repro.jito.tips import tip_accounts

BPS_DENOMINATOR = 10_000


def staker_pool_address(validator: Validator) -> Pubkey:
    """The per-validator account holding the stakers' share of tips."""
    return Pubkey.from_seed(
        f"staker-pool:{validator.identity.to_base58()}"
    )


@dataclass(frozen=True)
class ValidatorPayout:
    """One validator's share of an epoch's tips."""

    identity: str
    total_lamports: int
    commission_lamports: int
    stakers_lamports: int


@dataclass
class EpochDistribution:
    """The result of sweeping the tip accounts once."""

    epoch: int
    swept_lamports: int
    payouts: list[ValidatorPayout] = field(default_factory=list)
    residual_lamports: int = 0

    @property
    def distributed_lamports(self) -> int:
        """Lamports that reached validators and stakers."""
        return sum(p.total_lamports for p in self.payouts)


class TipDistributor:
    """Sweeps the tip accounts each epoch, stake-weighted with commission.

    Attribution note: real distribution is per-slot-leader; this simulator
    distributes each epoch's pooled tips pro-rata by stake among the
    Jito-running validators, which is equivalent in expectation under
    stake-weighted leader selection and avoids per-slot bookkeeping.
    """

    def __init__(
        self,
        bank: Bank,
        validators: list[Validator],
        commission_bps: int = 800,
    ) -> None:
        if not 0 <= commission_bps <= BPS_DENOMINATOR:
            raise ConfigError(
                f"commission must be in [0, 10000] bps, got {commission_bps}"
            )
        jito_validators = [v for v in validators if v.runs_jito]
        if not jito_validators:
            raise ConfigError("no Jito-running validators to distribute to")
        self._bank = bank
        self._validators = jito_validators
        self._commission_bps = commission_bps
        self._total_stake = sum(v.stake_lamports for v in jito_validators)
        self._epochs_distributed = 0
        self.history: list[EpochDistribution] = []

    @property
    def commission_bps(self) -> int:
        """Validator commission on distributed tips."""
        return self._commission_bps

    def pending_lamports(self) -> int:
        """Tips currently sitting in the canonical tip accounts."""
        return sum(
            self._bank.lamport_balance(account) for account in tip_accounts()
        )

    def distribute_epoch(self) -> EpochDistribution:
        """Sweep the tip accounts and pay validators and stakers.

        Integer pro-rata shares round down; the residual dust stays in the
        first tip account rather than being minted or burned, so lamports
        are conserved exactly.
        """
        self._epochs_distributed += 1
        swept = 0
        first_account = tip_accounts()[0]
        for account in tip_accounts():
            balance = self._bank.lamport_balance(account)
            if balance <= 0:
                continue
            if account != first_account:
                self._bank.transfer_lamports(account, first_account, balance)
            swept += balance

        distribution = EpochDistribution(
            epoch=self._epochs_distributed, swept_lamports=swept
        )
        if swept == 0:
            self.history.append(distribution)
            return distribution

        paid_total = 0
        for validator in self._validators:
            share = swept * validator.stake_lamports // self._total_stake
            if share <= 0:
                continue
            commission = share * self._commission_bps // BPS_DENOMINATOR
            stakers = share - commission
            if commission > 0:
                self._bank.transfer_lamports(
                    first_account, validator.identity, commission
                )
            if stakers > 0:
                self._bank.transfer_lamports(
                    first_account, staker_pool_address(validator), stakers
                )
            distribution.payouts.append(
                ValidatorPayout(
                    identity=validator.identity.to_base58(),
                    total_lamports=share,
                    commission_lamports=commission,
                    stakers_lamports=stakers,
                )
            )
            paid_total += share
        distribution.residual_lamports = swept - paid_total
        self._bank.finalize_out_of_band()
        self.history.append(distribution)
        return distribution
